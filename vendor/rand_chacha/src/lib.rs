//! Minimal offline stand-in for `rand_chacha`: a genuine ChaCha12 keystream
//! generator behind the vendored `rand` traits. Deterministic for a given
//! seed, `Clone` + `Debug` so wrappers can derive both.

use rand::{RngCore, SeedableRng};

/// A ChaCha stream cipher based RNG with 12 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha12Rng {
    key: [u32; 8],
    counter: u64,
    buffer: [u8; 64],
    index: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

impl ChaCha12Rng {
    fn from_key(key: [u32; 8]) -> Self {
        ChaCha12Rng { key, counter: 0, buffer: [0; 64], index: 64 }
    }

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;

        let mut working = state;
        for _ in 0..6 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (word, initial) in working.iter_mut().zip(state.iter()) {
            *word = word.wrapping_add(*initial);
        }
        for (chunk, word) in self.buffer.chunks_exact_mut(4).zip(working.iter()) {
            chunk.copy_from_slice(&word.to_le_bytes());
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    fn take_bytes(&mut self, count: usize) -> [u8; 8] {
        debug_assert!(count <= 8);
        let mut out = [0u8; 8];
        for slot in out.iter_mut().take(count) {
            if self.index >= 64 {
                self.refill();
            }
            *slot = self.buffer[self.index];
            self.index += 1;
        }
        out
    }
}

fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl RngCore for ChaCha12Rng {
    fn next_u32(&mut self) -> u32 {
        u32::from_le_bytes(self.take_bytes(4)[..4].try_into().unwrap())
    }

    fn next_u64(&mut self) -> u64 {
        u64::from_le_bytes(self.take_bytes(8))
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for byte in dest.iter_mut() {
            if self.index >= 64 {
                self.refill();
            }
            *byte = self.buffer[self.index];
            self.index += 1;
        }
    }
}

impl SeedableRng for ChaCha12Rng {
    fn seed_from_u64(state: u64) -> Self {
        // Expand the 64-bit seed into a 256-bit key with SplitMix64, the same
        // scheme rand's `seed_from_u64` uses.
        let mut key = [0u32; 8];
        let mut sm = state;
        for pair in key.chunks_exact_mut(2) {
            let word = splitmix64(&mut sm);
            pair[0] = word as u32;
            pair[1] = (word >> 32) as u32;
        }
        ChaCha12Rng::from_key(key)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = ChaCha12Rng::seed_from_u64(42);
        let mut b = ChaCha12Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha12Rng::seed_from_u64(1);
        let mut b = ChaCha12Rng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fill_bytes_matches_stream() {
        let mut a = ChaCha12Rng::seed_from_u64(7);
        let mut b = ChaCha12Rng::seed_from_u64(7);
        let mut buf = [0u8; 16];
        a.fill_bytes(&mut buf);
        let expected_lo = b.next_u64().to_le_bytes();
        let expected_hi = b.next_u64().to_le_bytes();
        assert_eq!(&buf[..8], &expected_lo);
        assert_eq!(&buf[8..], &expected_hi);
    }
}
