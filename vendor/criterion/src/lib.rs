//! Minimal offline stand-in for `criterion`: benchmark groups, a `Bencher`
//! with `iter`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Two modes:
//! - normal (`cargo bench`): every benchmark is warmed up and timed over
//!   `sample_size` iterations; mean wall-clock time is printed per benchmark.
//! - test (`cargo bench -- --test`): every benchmark body runs exactly once
//!   so CI can smoke-check benches without paying for measurement.

use std::time::{Duration, Instant};

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {
    test_mode: bool,
}

impl Criterion {
    /// Build a driver configured from the process arguments (`--test`
    /// switches to one-shot smoke mode; every other flag is ignored).
    pub fn from_args() -> Self {
        let test_mode = std::env::args().any(|arg| arg == "--test");
        Criterion { test_mode }
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 100 }
    }

    /// Run a stand-alone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(self.test_mode, &id, 100, f);
        self
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples;
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_benchmark(self.criterion.test_mode, &id, self.sample_size, f);
        self
    }

    /// Finish the group (kept for API compatibility; prints nothing extra).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(test_mode: bool, id: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher { test_mode, sample_size, mean: Duration::ZERO, ran: false };
    f(&mut bencher);
    if !bencher.ran {
        println!("{id:<60} (no iter call)");
    } else if test_mode {
        println!("{id:<60} ok (test mode)");
    } else {
        println!("{id:<60} {:>12.3?}/iter", bencher.mean);
    }
}

/// Runs the measured routine; handed to every benchmark closure.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    mean: Duration,
    ran: bool,
}

impl Bencher {
    /// Measure `routine`. In test mode it runs exactly once.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.ran = true;
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Short warmup so first-touch effects don't dominate.
        for _ in 0..3.min(self.sample_size) {
            black_box(routine());
        }
        let iterations = self.sample_size.max(1) as u32;
        let start = Instant::now();
        for _ in 0..iterations {
            black_box(routine());
        }
        self.mean = start.elapsed() / iterations;
    }
}

/// Opaque value barrier (re-exported for compatibility).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Bundle benchmark functions into a single group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::from_args();
            $($group(&mut criterion);)+
        }
    };
}
