//! Minimal offline stand-in for the `bytes` crate: [`Bytes`] / [`BytesMut`]
//! plus the [`Buf`] / [`BufMut`] trait surface the HTTP/2 frame codec uses.
//!
//! `Bytes` shares its backing store via `Arc`, so `split_to` and `clone` are
//! cheap, exactly like the real crate (minus the vtable tricks).

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, sliceable, immutable byte buffer.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// A buffer viewing a static byte slice (copied; this stand-in does not
    /// special-case static storage).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Number of readable bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` when no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Split off and return the first `at` bytes, advancing `self` past them.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let front = Bytes { data: Arc::clone(&self.data), start: self.start, end: self.start + at };
        self.start += at;
        front
    }

    /// Copy the readable bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes { data: data.into(), start: 0, end }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

/// A growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `capacity` bytes preallocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { data: Vec::with_capacity(capacity) }
    }

    /// Number of written bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Resize to `new_len`, filling with `value`.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.data.resize(new_len, value);
    }

    /// Append a byte slice.
    pub fn extend_from_slice(&mut self, slice: &[u8]) {
        self.data.extend_from_slice(slice);
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read access to a byte buffer, big-endian integer reads included.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The readable bytes.
    fn chunk(&self) -> &[u8];

    /// Advance the read cursor by `count` bytes.
    fn advance(&mut self, count: usize);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let value = self.chunk()[0];
        self.advance(1);
        value
    }

    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let chunk = self.chunk();
        let value = u16::from_be_bytes([chunk[0], chunk[1]]);
        self.advance(2);
        value
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let chunk = self.chunk();
        let value = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        self.advance(4);
        value
    }

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let chunk = self.chunk();
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&chunk[..8]);
        self.advance(8);
        u64::from_be_bytes(raw)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, count: usize) {
        assert!(count <= self.len(), "advance out of bounds");
        self.start += count;
    }
}

/// Write access to a byte buffer, big-endian integer writes included.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, slice: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, value: u8) {
        self.put_slice(&[value]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, value: u16) {
        self.put_slice(&value.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, value: u32) {
        self.put_slice(&value.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, value: u64) {
        self.put_slice(&value.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, slice: &[u8]) {
        self.extend_from_slice(slice);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, slice: &[u8]) {
        self.extend_from_slice(slice);
    }
}
