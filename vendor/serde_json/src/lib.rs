//! Minimal offline stand-in for `serde_json`: renders and parses the
//! vendored `serde` value model as JSON text.
//!
//! Supports everything the HAR pipeline round-trips: objects, arrays,
//! strings (with escapes), integers, floats, booleans and nulls.

use serde::value::{Number, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An error from JSON serialization or deserialization.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl fmt::Display) -> Self {
        Error { message: message.to_string() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), None, 0);
    Ok(out)
}

/// Serialize `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize a `T` from JSON text.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let value = Parser::new(input).parse_document()?;
    T::deserialize_value(&value).map_err(Error::new)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(Number::UInt(u)) => out.push_str(&u.to_string()),
        Value::Number(Number::Int(i)) => out.push_str(&i.to_string()),
        Value::Number(Number::Float(f)) => write_float(out, *f),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (index, item) in items.iter().enumerate() {
                if index > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (index, (key, item)) in entries.iter().enumerate() {
                if index > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * depth) {
            out.push(' ');
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        let formatted = f.to_string();
        out.push_str(&formatted);
        // Keep floats recognisable as floats on re-parse.
        if !formatted.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser { bytes: input.as_bytes(), pos: 0 }
    }

    fn parse_document(&mut self) -> Result<Value, Error> {
        let value = self.parse_value()?;
        self.skip_whitespace();
        if self.pos != self.bytes.len() {
            return Err(Error::new(format!("trailing characters at byte {}", self.pos)));
        }
        Ok(value)
    }

    fn skip_whitespace(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_whitespace();
        self.bytes.get(self.pos).copied().ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        let found = self.peek()?;
        if found != byte {
            return Err(Error::new(format!(
                "expected `{}` at byte {}, found `{}`",
                byte as char, self.pos, found as char
            )));
        }
        self.pos += 1;
        Ok(())
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'{' => self.parse_object(),
            b'[' => self.parse_array(),
            b'"' => self.parse_string().map(Value::String),
            b't' => self.parse_keyword("true", Value::Bool(true)),
            b'f' => self.parse_keyword("false", Value::Bool(false)),
            b'n' => self.parse_keyword("null", Value::Null),
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => {
                Err(Error::new(format!("unexpected character `{}` at byte {}", other as char, self.pos)))
            }
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}, found `{}`",
                        self.pos, other as char
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}, found `{}`",
                        self.pos, other as char
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self.bytes.get(self.pos).ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let escape =
                        *self.bytes.get(self.pos).ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            if (0xD800..0xDC00).contains(&code) {
                                // Surrogate pair.
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let low = self.parse_hex4()?;
                                    let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    out.push(
                                        char::from_u32(combined)
                                            .ok_or_else(|| Error::new("invalid surrogate pair"))?,
                                    );
                                } else {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                            } else {
                                out.push(
                                    char::from_u32(code).ok_or_else(|| Error::new("invalid \\u escape"))?,
                                );
                            }
                        }
                        other => return Err(Error::new(format!("invalid escape `\\{}`", other as char))),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at the byte we
                    // just consumed.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let slice =
                        self.bytes.get(start..end).ok_or_else(|| Error::new("truncated UTF-8 sequence"))?;
                    let s = std::str::from_utf8(slice).map_err(Error::new)?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let slice =
            self.bytes.get(self.pos..self.pos + 4).ok_or_else(|| Error::new("truncated \\u escape"))?;
        let text = std::str::from_utf8(slice).map_err(Error::new)?;
        let code = u32::from_str_radix(text, 16).map_err(Error::new)?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.bytes.get(self.pos) == Some(&b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(Error::new)?;
        if is_float {
            text.parse::<f64>().map(|f| Value::Number(Number::Float(f))).map_err(Error::new)
        } else if text.starts_with('-') {
            text.parse::<i64>().map(|i| Value::Number(Number::Int(i))).map_err(Error::new)
        } else {
            text.parse::<u64>().map(|u| Value::Number(Number::UInt(u))).map_err(Error::new)
        }
    }
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}
