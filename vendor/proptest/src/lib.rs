//! Minimal offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the workspace's property tests
//! use: the [`Strategy`] trait with `prop_map` / `prop_flat_map`, range and
//! pattern-string strategies, `Just`, `prop_oneof!`, `proptest::option::of`,
//! `prop::collection::vec`, tuple and `Vec<S>` composition, and the
//! `proptest!` / `prop_compose!` / `prop_assert!` macros.
//!
//! Differences from the real crate: generation is driven by a deterministic
//! SplitMix64 [`TestRng`] seeded from the test name, there is **no
//! shrinking**, and each test runs a fixed number of cases
//! ([`DEFAULT_CASES`]).

use std::ops::{Range, RangeInclusive};

/// Number of generated cases per `proptest!` test.
pub const DEFAULT_CASES: usize = 64;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from a test name (stable across runs).
    pub fn for_test(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: hash ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        self.next_u64() % bound
    }

    fn below_u128(&mut self, bound: u128) -> u128 {
        assert!(bound > 0, "below(0)");
        let wide = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
        wide % bound
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Build a second strategy from each generated value.
    fn prop_flat_map<B: Strategy, F: Fn(Self::Value) -> B>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, B: Strategy, F: Fn(S::Value) -> B> Strategy for FlatMap<S, F> {
    type Value = B::Value;

    fn generate(&self, rng: &mut TestRng) -> B::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of its value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A uniform choice between boxed alternative strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Build from the given alternatives; must be non-empty.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one alternative");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let index = rng.below(self.arms.len() as u64) as usize;
        self.arms[index].generate(rng)
    }
}

/// Box a strategy for use in [`Union`] (used by `prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(strategy: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(strategy)
}

// ---------------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end as i128 - self.start as i128;
                (self.start as i128 + rng.below_u128(span as u128) as i128) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "empty range strategy");
                let span = high as i128 - low as i128 + 1;
                (low as i128 + rng.below_u128(span as u128) as i128) as $ty
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Pattern-string strategies: a simplified regex supporting literal
/// characters, `[a-z0-9/]`-style classes and `{m}` / `{m,n}` quantifiers.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

struct PatternAtom {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<PatternAtom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms: Vec<PatternAtom> = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        match chars[i] {
            '[' => {
                i += 1;
                let mut choices = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (low, high) = (chars[i], chars[i + 2]);
                        for code in low as u32..=high as u32 {
                            if let Some(c) = char::from_u32(code) {
                                choices.push(c);
                            }
                        }
                        i += 3;
                    } else {
                        choices.push(chars[i]);
                        i += 1;
                    }
                }
                i += 1; // closing ']'
                atoms.push(PatternAtom { choices, min: 1, max: 1 });
            }
            '{' => {
                i += 1;
                let mut min_text = String::new();
                while i < chars.len() && chars[i].is_ascii_digit() {
                    min_text.push(chars[i]);
                    i += 1;
                }
                let min: usize = min_text.parse().unwrap_or(1);
                let max = if i < chars.len() && chars[i] == ',' {
                    i += 1;
                    let mut max_text = String::new();
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        max_text.push(chars[i]);
                        i += 1;
                    }
                    max_text.parse().unwrap_or(min)
                } else {
                    min
                };
                i += 1; // closing '}'
                let atom = atoms.last_mut().expect("quantifier must follow an atom");
                atom.min = min;
                atom.max = max;
            }
            '\\' => {
                i += 1;
                if i < chars.len() {
                    atoms.push(PatternAtom { choices: vec![chars[i]], min: 1, max: 1 });
                    i += 1;
                }
            }
            literal => {
                atoms.push(PatternAtom { choices: vec![literal], min: 1, max: 1 });
                i += 1;
            }
        }
    }
    atoms
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for atom in parse_pattern(pattern) {
        let count = if atom.max > atom.min {
            atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize
        } else {
            atom.min
        };
        for _ in 0..count {
            if atom.choices.is_empty() {
                continue;
            }
            let index = rng.below(atom.choices.len() as u64) as usize;
            out.push(atom.choices[index]);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Composition: tuples and Vec<S>
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $index:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$index.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|strategy| strategy.generate(rng)).collect()
    }
}

// ---------------------------------------------------------------------------
// any / Arbitrary
// ---------------------------------------------------------------------------

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// The strategy type `any` returns.
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            type Strategy = RangeInclusive<$ty>;

            fn arbitrary() -> Self::Strategy {
                <$ty>::MIN..=<$ty>::MAX
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The canonical full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

// ---------------------------------------------------------------------------
// collection / option modules
// ---------------------------------------------------------------------------

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// A strategy for `Vec`s whose length is drawn from `size`.
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    /// `Vec` strategy with element strategy `element` and a length drawn from
    /// the `size` strategy (a range works).
    pub fn vec<S: Strategy, Z: Strategy<Value = usize>>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, Z: Strategy<Value = usize>> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::{Strategy, TestRng};

    /// A strategy yielding `None` about a quarter of the time, otherwise
    /// `Some` of the inner strategy's value.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Wrap `inner` in an `Option` strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod prelude {
    //! Everything the `proptest!` tests usually need.

    pub use crate as prop;
    pub use crate::{
        any, boxed, prop_assert, prop_assert_eq, prop_compose, prop_oneof, proptest, Arbitrary, Just,
        Strategy, TestRng, Union,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Define property tests: each `fn name(binding in strategy, ...) { body }`
/// becomes a `#[test]` running [`DEFAULT_CASES`] generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($field:ident in $strategy:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let strategy__ = ($($strategy,)+);
                let mut rng__ = $crate::TestRng::for_test(stringify!($name));
                for _ in 0..$crate::DEFAULT_CASES {
                    let ($($field,)+) = $crate::Strategy::generate(&strategy__, &mut rng__);
                    $body
                }
            }
        )+
    };
}

/// Define a function returning a composed strategy:
/// `fn name(args)(bindings in strategies) -> T { body }`.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($arg:ident: $argty:ty),* $(,)?)($($field:ident in $strategy:expr),+ $(,)?) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($arg: $argty),*) -> impl $crate::Strategy<Value = $ret> {
            $crate::Strategy::prop_map(($($strategy,)+), move |($($field,)+)| $body)
        }
    };
}

/// A uniform choice between alternative strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($arm)),+])
    };
}

/// Assert inside a property test (no shrinking; behaves like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property test (behaves like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}
