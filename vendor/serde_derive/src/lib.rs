//! Minimal offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against the
//! value-model traits in the vendored `serde` crate, without `syn`/`quote`:
//! the input item is parsed directly from the `proc_macro` token stream and
//! the generated impls are emitted as source strings.
//!
//! Supported shapes: structs with named fields, tuple structs, unit structs,
//! and enums with unit / newtype / tuple / struct variants. Supported
//! attributes: container `rename_all` (`lowercase`, `camelCase`,
//! `kebab-case`, `snake_case`) and `transparent`; field `rename` and
//! `skip_serializing_if`. That is the full set the workspace uses.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Default)]
struct Attrs {
    rename_all: Option<String>,
    transparent: bool,
    rename: Option<String>,
    skip_serializing_if: Option<String>,
}

struct Field {
    name: String,
    attrs: Attrs,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    attrs: Attrs,
    shape: VariantShape,
}

enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Container {
    name: String,
    attrs: Attrs,
    shape: Shape,
}

/// Derive `serde::Serialize` for the annotated type.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let container = parse_container(input);
    gen_serialize(&container).parse().expect("generated Serialize impl parses")
}

/// Derive `serde::Deserialize` for the annotated type.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let container = parse_container(input);
    gen_deserialize(&container).parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_container(input: TokenStream) -> Container {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let attrs = parse_attrs(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored) does not support generic types: `{name}`");
    }
    let shape = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            _ => Shape::UnitStruct,
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("expected enum body for `{name}`, found {other:?}"),
        },
        other => panic!("cannot derive serde traits for `{other}`"),
    };
    Container { name, attrs, shape }
}

fn parse_attrs(tokens: &[TokenTree], i: &mut usize) -> Attrs {
    let mut attrs = Attrs::default();
    while let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        let Some(TokenTree::Group(group)) = tokens.get(*i + 1) else {
            break;
        };
        *i += 2;
        let inner: Vec<TokenTree> = group.stream().into_iter().collect();
        let is_serde = matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde");
        if !is_serde {
            continue;
        }
        let Some(TokenTree::Group(list)) = inner.get(1) else {
            continue;
        };
        parse_serde_attr_list(list.stream(), &mut attrs);
    }
    attrs
}

fn parse_serde_attr_list(stream: TokenStream, attrs: &mut Attrs) {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    while i < tokens.len() {
        let key = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            _ => {
                i += 1;
                continue;
            }
        };
        i += 1;
        let mut value = None;
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            if let Some(TokenTree::Literal(lit)) = tokens.get(i) {
                value = Some(unquote(&lit.to_string()));
                i += 1;
            }
        }
        match (key.as_str(), value) {
            ("rename_all", Some(v)) => attrs.rename_all = Some(v),
            ("rename", Some(v)) => attrs.rename = Some(v),
            ("skip_serializing_if", Some(v)) => attrs.skip_serializing_if = Some(v),
            ("transparent", None) => attrs.transparent = true,
            (other, _) => panic!("unsupported serde attribute `{other}` in vendored serde_derive"),
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
}

fn unquote(literal: &str) -> String {
    literal.trim_matches('"').to_string()
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis) {
            *i += 1;
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let attrs = parse_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name, found {other}"),
        };
        i += 1;
        // Skip the `:` and the type (tracking `<...>` nesting, since angle
        // brackets are not token groups) up to the next top-level comma.
        let mut angle_depth: i32 = 0;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, attrs });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth: i32 = 0;
    for (index, token) in tokens.iter().enumerate() {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 && index + 1 < tokens.len() => {
                count += 1;
            }
            _ => {}
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let attrs = parse_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, found {other}"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        // Skip an optional discriminant and the trailing comma.
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, attrs, shape });
    }
    variants
}

// ---------------------------------------------------------------------------
// Renaming
// ---------------------------------------------------------------------------

fn rename_field(style: Option<&str>, name: &str) -> String {
    match style {
        Some("camelCase") => {
            let mut out = String::new();
            for (index, part) in name.split('_').enumerate() {
                if index == 0 {
                    out.push_str(part);
                } else {
                    let mut chars = part.chars();
                    if let Some(first) = chars.next() {
                        out.extend(first.to_uppercase());
                        out.push_str(chars.as_str());
                    }
                }
            }
            out
        }
        Some("kebab-case") => name.replace('_', "-"),
        Some("snake_case") => name.to_string(),
        Some("lowercase") => name.to_lowercase(),
        Some("SCREAMING_SNAKE_CASE") => name.to_uppercase(),
        Some(other) => panic!("unsupported rename_all style `{other}`"),
        None => name.to_string(),
    }
}

fn rename_variant(style: Option<&str>, name: &str) -> String {
    match style {
        Some("lowercase") => name.to_lowercase(),
        Some("camelCase") => {
            let mut chars = name.chars();
            match chars.next() {
                Some(first) => first.to_lowercase().collect::<String>() + chars.as_str(),
                None => String::new(),
            }
        }
        Some("kebab-case") => camel_to_separated(name, '-'),
        Some("snake_case") => camel_to_separated(name, '_'),
        Some("SCREAMING_SNAKE_CASE") => camel_to_separated(name, '_').to_uppercase(),
        Some(other) => panic!("unsupported rename_all style `{other}`"),
        None => name.to_string(),
    }
}

fn camel_to_separated(name: &str, separator: char) -> String {
    let mut out = String::new();
    for (index, ch) in name.chars().enumerate() {
        if ch.is_uppercase() {
            if index > 0 {
                out.push(separator);
            }
            out.extend(ch.to_lowercase());
        } else {
            out.push(ch);
        }
    }
    out
}

fn field_key(container: &Container, field: &Field) -> String {
    field
        .attrs
        .rename
        .clone()
        .unwrap_or_else(|| rename_field(container.attrs.rename_all.as_deref(), &field.name))
}

fn variant_key(container: &Container, variant: &Variant) -> String {
    variant
        .attrs
        .rename
        .clone()
        .unwrap_or_else(|| rename_variant(container.attrs.rename_all.as_deref(), &variant.name))
}

fn variant_field_key(variant: &Variant, field: &Field) -> String {
    field
        .attrs
        .rename
        .clone()
        .unwrap_or_else(|| rename_field(variant.attrs.rename_all.as_deref(), &field.name))
}

// ---------------------------------------------------------------------------
// Serialize codegen
// ---------------------------------------------------------------------------

fn gen_serialize(container: &Container) -> String {
    let name = &container.name;
    let body = match &container.shape {
        Shape::NamedStruct(fields) => {
            if container.attrs.transparent && fields.len() == 1 {
                format!("::serde::Serialize::serialize_value(&self.{})", fields[0].name)
            } else {
                let mut out =
                    String::from("let mut fields__: Vec<(String, ::serde::value::Value)> = Vec::new();\n");
                for field in fields {
                    let key = field_key(container, field);
                    let push = format!(
                        "fields__.push((\"{key}\".to_string(), ::serde::Serialize::serialize_value(&self.{})));",
                        field.name
                    );
                    match &field.attrs.skip_serializing_if {
                        Some(predicate) => {
                            out.push_str(&format!("if !{predicate}(&self.{}) {{ {push} }}\n", field.name));
                        }
                        None => {
                            out.push_str(&push);
                            out.push('\n');
                        }
                    }
                }
                out.push_str("::serde::value::Value::Object(fields__)");
                out
            }
        }
        Shape::TupleStruct(1) => "::serde::Serialize::serialize_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::serialize_value(&self.{i})")).collect();
            format!("::serde::value::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::value::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for variant in variants {
                let vname = &variant.name;
                let key = variant_key(container, variant);
                match &variant.shape {
                    VariantShape::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vname} => ::serde::value::Value::String(\"{key}\".to_string()),\n"
                        ));
                    }
                    VariantShape::Tuple(1) => {
                        arms.push_str(&format!(
                            "{name}::{vname}(f0__) => ::serde::value::Value::Object(vec![(\"{key}\".to_string(), ::serde::Serialize::serialize_value(f0__))]),\n"
                        ));
                    }
                    VariantShape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("f{i}__")).collect();
                        let items: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::value::Value::Object(vec![(\"{key}\".to_string(), ::serde::value::Value::Array(vec![{}]))]),\n",
                            binders.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let binders: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{}\".to_string(), ::serde::Serialize::serialize_value({}))",
                                    variant_field_key(variant, f),
                                    f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => ::serde::value::Value::Object(vec![(\"{key}\".to_string(), ::serde::value::Value::Object(vec![{}]))]),\n",
                            binders.join(", "),
                            items.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize_value(&self) -> ::serde::value::Value {{\n{body}\n}}\n\
         }}"
    )
}

// ---------------------------------------------------------------------------
// Deserialize codegen
// ---------------------------------------------------------------------------

fn gen_deserialize(container: &Container) -> String {
    let name = &container.name;
    let body = match &container.shape {
        Shape::NamedStruct(fields) => {
            if container.attrs.transparent && fields.len() == 1 {
                format!(
                    "Ok({name} {{ {}: ::serde::Deserialize::deserialize_value(value__)? }})",
                    fields[0].name
                )
            } else {
                let mut out = format!(
                    "let obj__ = value__.as_object().ok_or_else(|| ::serde::de::Error::custom(\"expected object for `{name}`\"))?;\n\
                     Ok({name} {{\n"
                );
                for field in fields {
                    let key = field_key(container, field);
                    out.push_str(&format!(
                        "{}: ::serde::Deserialize::deserialize_value(::serde::value::object_get(obj__, \"{key}\")).map_err(|e__| e__.in_field(\"{name}.{}\"))?,\n",
                        field.name, field.name
                    ));
                }
                out.push_str("})");
                out
            }
        }
        Shape::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::deserialize_value(value__)?))")
        }
        Shape::TupleStruct(n) => {
            let mut out = format!(
                "let items__ = value__.as_array().ok_or_else(|| ::serde::de::Error::custom(\"expected array for `{name}`\"))?;\n\
                 Ok({name}(\n"
            );
            for i in 0..*n {
                out.push_str(&format!(
                    "::serde::Deserialize::deserialize_value(items__.get({i}).ok_or_else(|| ::serde::de::Error::custom(\"missing tuple field {i} for `{name}`\"))?)?,\n"
                ));
            }
            out.push_str("))");
            out
        }
        Shape::UnitStruct => format!("let _ = value__; Ok({name})"),
        Shape::Enum(variants) => {
            let unit: Vec<&Variant> =
                variants.iter().filter(|v| matches!(v.shape, VariantShape::Unit)).collect();
            let data: Vec<&Variant> =
                variants.iter().filter(|v| !matches!(v.shape, VariantShape::Unit)).collect();
            let mut arms = String::new();
            if !unit.is_empty() {
                let mut unit_arms = String::new();
                for variant in &unit {
                    unit_arms.push_str(&format!(
                        "\"{}\" => Ok({name}::{}),\n",
                        variant_key(container, variant),
                        variant.name
                    ));
                }
                arms.push_str(&format!(
                    "::serde::value::Value::String(s__) => match s__.as_str() {{\n{unit_arms}other__ => Err(::serde::de::Error::custom(format!(\"unknown variant `{{other__}}` for `{name}`\"))),\n}},\n"
                ));
            }
            if !data.is_empty() {
                let mut data_arms = String::new();
                for variant in &data {
                    let vname = &variant.name;
                    let key = variant_key(container, variant);
                    let build = match &variant.shape {
                        VariantShape::Tuple(1) => {
                            format!("Ok({name}::{vname}(::serde::Deserialize::deserialize_value(v__)?))")
                        }
                        VariantShape::Tuple(n) => {
                            let mut build = format!(
                                "let items__ = v__.as_array().ok_or_else(|| ::serde::de::Error::custom(\"expected array for `{name}::{vname}`\"))?;\n\
                                 Ok({name}::{vname}(\n"
                            );
                            for i in 0..*n {
                                build.push_str(&format!(
                                    "::serde::Deserialize::deserialize_value(items__.get({i}).ok_or_else(|| ::serde::de::Error::custom(\"missing tuple field {i} for `{name}::{vname}`\"))?)?,\n"
                                ));
                            }
                            build.push_str("))");
                            build
                        }
                        VariantShape::Named(fields) => {
                            let mut build = format!(
                                "let obj__ = v__.as_object().ok_or_else(|| ::serde::de::Error::custom(\"expected object for `{name}::{vname}`\"))?;\n\
                                 Ok({name}::{vname} {{\n"
                            );
                            for field in fields {
                                build.push_str(&format!(
                                    "{}: ::serde::Deserialize::deserialize_value(::serde::value::object_get(obj__, \"{}\")).map_err(|e__| e__.in_field(\"{name}::{vname}.{}\"))?,\n",
                                    field.name,
                                    variant_field_key(variant, field),
                                    field.name
                                ));
                            }
                            build.push_str("})");
                            build
                        }
                        VariantShape::Unit => unreachable!("unit variants handled above"),
                    };
                    data_arms.push_str(&format!("\"{key}\" => {{\n{build}\n}}\n"));
                }
                arms.push_str(&format!(
                    "::serde::value::Value::Object(entries__) if entries__.len() == 1 => {{\n\
                         let (k__, v__) = &entries__[0];\n\
                         match k__.as_str() {{\n{data_arms}other__ => Err(::serde::de::Error::custom(format!(\"unknown variant `{{other__}}` for `{name}`\"))),\n}}\n\
                     }},\n"
                ));
            }
            format!(
                "match value__ {{\n{arms}_ => Err(::serde::de::Error::custom(\"unexpected value for enum `{name}`\")),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn deserialize_value(value__: &::serde::value::Value) -> Result<Self, ::serde::de::Error> {{\n{body}\n}}\n\
         }}"
    )
}
