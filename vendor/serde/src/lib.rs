//! Minimal offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small serde surface the reproduction actually uses: the
//! [`Serialize`] / [`Deserialize`] traits (defined over an owned [`value::Value`]
//! tree rather than serde's visitor machinery), implementations for the std
//! types that appear in derived structs, and a re-export of the hand-rolled
//! derive macros from `serde_derive`.
//!
//! `serde_json` (also vendored) renders and parses `value::Value`, so derived
//! types round-trip through JSON exactly like the real thing for the shapes
//! this workspace uses (`rename_all`, `rename`, `skip_serializing_if`,
//! `transparent`).

pub use serde_derive::{Deserialize, Serialize};

pub mod value {
    //! The owned value tree all (de)serialization goes through.

    /// A JSON-like number: unsigned, signed or floating point.
    #[derive(Clone, Copy, Debug, PartialEq)]
    pub enum Number {
        /// A non-negative integer.
        UInt(u64),
        /// A negative integer.
        Int(i64),
        /// A floating-point number.
        Float(f64),
    }

    impl Number {
        /// The value as `u64`, if representable.
        pub fn as_u64(&self) -> Option<u64> {
            match *self {
                Number::UInt(u) => Some(u),
                Number::Int(i) => u64::try_from(i).ok(),
                Number::Float(_) => None,
            }
        }

        /// The value as `i64`, if representable.
        pub fn as_i64(&self) -> Option<i64> {
            match *self {
                Number::UInt(u) => i64::try_from(u).ok(),
                Number::Int(i) => Some(i),
                Number::Float(_) => None,
            }
        }

        /// The value as `f64` (always representable, possibly lossily).
        pub fn as_f64(&self) -> f64 {
            match *self {
                Number::UInt(u) => u as f64,
                Number::Int(i) => i as f64,
                Number::Float(f) => f,
            }
        }
    }

    /// An owned, order-preserving value tree.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// A boolean.
        Bool(bool),
        /// A number.
        Number(Number),
        /// A string.
        String(String),
        /// An array.
        Array(Vec<Value>),
        /// An object; insertion order is preserved.
        Object(Vec<(String, Value)>),
    }

    impl Value {
        /// The entries of an object, if this is one.
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Object(entries) => Some(entries),
                _ => None,
            }
        }

        /// The elements of an array, if this is one.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(items) => Some(items),
                _ => None,
            }
        }

        /// The string, if this is one.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::String(s) => Some(s),
                _ => None,
            }
        }
    }

    /// Look up `key` in an object's entries, yielding `Null` when absent
    /// (missing optional fields deserialize as `None`).
    pub fn object_get<'v>(entries: &'v [(String, Value)], key: &str) -> &'v Value {
        entries.iter().find(|(k, _)| k == key).map(|(_, v)| v).unwrap_or(&Value::Null)
    }
}

pub mod de {
    //! Deserialization error type.

    use std::fmt;

    /// An error produced while deserializing a [`crate::value::Value`].
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct Error {
        message: String,
    }

    impl Error {
        /// Build an error from any displayable message.
        pub fn custom(message: impl fmt::Display) -> Self {
            Error { message: message.to_string() }
        }

        /// Wrap the error with the field it occurred in.
        pub fn in_field(self, field: &str) -> Self {
            Error { message: format!("{}: {}", field, self.message) }
        }
    }

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for Error {}
}

use value::{Number, Value};

/// Serialize `self` into the owned [`Value`] tree.
pub trait Serialize {
    /// The value-tree representation of `self`.
    fn serialize_value(&self) -> Value;
}

/// Deserialize `Self` from an owned [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a value tree.
    fn deserialize_value(value: &Value) -> Result<Self, de::Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

macro_rules! impl_uint {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize_value(&self) -> Value {
                Value::Number(Number::UInt(*self as u64))
            }
        }
        impl Deserialize for $ty {
            fn deserialize_value(value: &Value) -> Result<Self, de::Error> {
                match value {
                    Value::Number(n) => n
                        .as_u64()
                        .and_then(|u| <$ty>::try_from(u).ok())
                        .ok_or_else(|| de::Error::custom(concat!("number out of range for ", stringify!($ty)))),
                    _ => Err(de::Error::custom(concat!("expected ", stringify!($ty)))),
                }
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize_value(&self) -> Value {
                if *self < 0 {
                    Value::Number(Number::Int(*self as i64))
                } else {
                    Value::Number(Number::UInt(*self as u64))
                }
            }
        }
        impl Deserialize for $ty {
            fn deserialize_value(value: &Value) -> Result<Self, de::Error> {
                match value {
                    Value::Number(n) => n
                        .as_i64()
                        .and_then(|i| <$ty>::try_from(i).ok())
                        .ok_or_else(|| de::Error::custom(concat!("number out of range for ", stringify!($ty)))),
                    _ => Err(de::Error::custom(concat!("expected ", stringify!($ty)))),
                }
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize_value(&self) -> Value {
                Value::Number(Number::Float(*self as f64))
            }
        }
        impl Deserialize for $ty {
            fn deserialize_value(value: &Value) -> Result<Self, de::Error> {
                match value {
                    Value::Number(n) => Ok(n.as_f64() as $ty),
                    _ => Err(de::Error::custom(concat!("expected ", stringify!($ty)))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(de::Error::custom("expected bool")),
        }
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize_value(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(de::Error::custom("expected single-character string")),
        }
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            _ => Err(de::Error::custom("expected string")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(inner) => inner.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            _ => Err(de::Error::custom("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $index:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$index.serialize_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_value(value: &Value) -> Result<Self, de::Error> {
                let items = value.as_array().ok_or_else(|| de::Error::custom("expected tuple array"))?;
                Ok(($($name::deserialize_value(
                    items.get($index).ok_or_else(|| de::Error::custom("tuple too short"))?,
                )?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        Value::Array(
            self.iter().map(|(k, v)| Value::Array(vec![k.serialize_value(), v.serialize_value()])).collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn deserialize_value(value: &Value) -> Result<Self, de::Error> {
        let items = value.as_array().ok_or_else(|| de::Error::custom("expected map array"))?;
        items
            .iter()
            .map(|pair| {
                let kv = pair.as_array().ok_or_else(|| de::Error::custom("expected map entry pair"))?;
                match kv {
                    [k, v] => Ok((K::deserialize_value(k)?, V::deserialize_value(v)?)),
                    _ => Err(de::Error::custom("expected two-element map entry")),
                }
            })
            .collect()
    }
}

impl<K: Serialize, V: Serialize, S: std::hash::BuildHasher> Serialize for std::collections::HashMap<K, V, S> {
    fn serialize_value(&self) -> Value {
        Value::Array(
            self.iter().map(|(k, v)| Value::Array(vec![k.serialize_value(), v.serialize_value()])).collect(),
        )
    }
}

impl<K, V, S> Deserialize for std::collections::HashMap<K, V, S>
where
    K: Deserialize + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn deserialize_value(value: &Value) -> Result<Self, de::Error> {
        let items = value.as_array().ok_or_else(|| de::Error::custom("expected map array"))?;
        items
            .iter()
            .map(|pair| {
                let kv = pair.as_array().ok_or_else(|| de::Error::custom("expected map entry pair"))?;
                match kv {
                    [k, v] => Ok((K::deserialize_value(k)?, V::deserialize_value(v)?)),
                    _ => Err(de::Error::custom("expected two-element map entry")),
                }
            })
            .collect()
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn deserialize_value(value: &Value) -> Result<Self, de::Error> {
        let items = value.as_array().ok_or_else(|| de::Error::custom("expected array"))?;
        items.iter().map(T::deserialize_value).collect()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(value: &Value) -> Result<Self, de::Error> {
        T::deserialize_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn deserialize_value(value: &Value) -> Result<Self, de::Error> {
        let items = value.as_array().ok_or_else(|| de::Error::custom("expected array"))?;
        items.iter().map(T::deserialize_value).collect()
    }
}

impl Serialize for std::sync::Arc<str> {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for std::sync::Arc<str> {
    fn deserialize_value(value: &Value) -> Result<Self, de::Error> {
        String::deserialize_value(value).map(std::sync::Arc::from)
    }
}

impl<T: Serialize> Serialize for std::sync::Arc<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn deserialize_value(value: &Value) -> Result<Self, de::Error> {
        T::deserialize_value(value).map(std::sync::Arc::new)
    }
}

impl<T: Serialize> Serialize for std::rc::Rc<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for std::rc::Rc<T> {
    fn deserialize_value(value: &Value) -> Result<Self, de::Error> {
        T::deserialize_value(value).map(std::rc::Rc::new)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize_value(value: &Value) -> Result<Self, de::Error> {
        let items = value.as_array().ok_or_else(|| de::Error::custom("expected array"))?;
        let parsed: Vec<T> = items.iter().map(T::deserialize_value).collect::<Result<_, _>>()?;
        parsed.try_into().map_err(|_| de::Error::custom("array length mismatch"))
    }
}
