//! Minimal offline stand-in for `rand` 0.8: the trait surface the
//! simulation's [`SimRng`](../netsim_types) wrapper needs — [`RngCore`],
//! [`SeedableRng`], the blanket [`Rng`] extension with `gen` / `gen_range`,
//! uniform range sampling and slice helpers.

use std::fmt;

/// Error type for fallible RNG operations (never produced by this stand-in's
/// deterministic generators, but required by the `RngCore` signature).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);

    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be deterministically seeded.
pub trait SeedableRng: Sized {
    /// Derive a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Convenience extension over [`RngCore`], blanket-implemented.
pub trait Rng: RngCore {
    /// A value sampled from the standard distribution of `T`.
    fn gen<T: distributions::Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform value in `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::uniform::SampleUniform,
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as distributions::Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod distributions {
    //! Distributions: the standard distribution and uniform range sampling.

    use super::RngCore;

    /// Types sampleable from the "standard" distribution (`rng.gen()`).
    pub trait Standard: Sized {
        /// Sample one value.
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl Standard for f64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            // 53 random mantissa bits, uniform in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Standard for f32 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Standard for bool {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32() & 1 == 1
        }
    }

    impl Standard for u32 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32()
        }
    }

    impl Standard for u64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64()
        }
    }

    impl Standard for u8 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32() as u8
        }
    }

    pub mod uniform {
        //! Uniform sampling over ranges.

        use super::super::RngCore;
        use std::ops::{Range, RangeInclusive};

        /// Types uniformly sampleable between two bounds.
        pub trait SampleUniform: Sized + Copy + PartialOrd {
            /// Uniform sample from `[low, high)`; panics if empty.
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;

            /// Uniform sample from `[low, high]`; panics if empty.
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
        }

        macro_rules! impl_sample_uniform_int {
            ($($ty:ty),*) => {$(
                impl SampleUniform for $ty {
                    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                        assert!(low < high, "cannot sample from empty range");
                        let span = high as i128 - low as i128;
                        let offset = (rng.next_u64() as i128).rem_euclid(span);
                        (low as i128 + offset) as $ty
                    }

                    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                        assert!(low <= high, "cannot sample from empty range");
                        let span = high as i128 - low as i128 + 1;
                        let offset = (rng.next_u64() as i128).rem_euclid(span);
                        (low as i128 + offset) as $ty
                    }
                }
            )*};
        }

        impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        impl SampleUniform for f64 {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample from empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                low + unit * (high - low)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "cannot sample from empty range");
                if low == high {
                    return low;
                }
                // For continuous values the half-open/inclusive distinction
                // is immaterial.
                Self::sample_half_open(rng, low, high)
            }
        }

        /// Range types usable with `Rng::gen_range`.
        pub trait SampleRange<T> {
            /// Sample one value from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        impl<T: SampleUniform> SampleRange<T> for Range<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                T::sample_half_open(rng, self.start, self.end)
            }
        }

        impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                let (low, high) = self.into_inner();
                T::sample_inclusive(rng, low, high)
            }
        }
    }
}

pub mod seq {
    //! Random slice operations.

    use super::{Rng, RngCore};

    /// Random element choice and in-place shuffling for slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// A uniformly random element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

pub mod prelude {
    //! The most common imports.

    pub use super::distributions::uniform::{SampleRange, SampleUniform};
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}
