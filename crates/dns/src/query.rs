//! Query context: who asks, from where, and when.
//!
//! The paper's central DNS observation is that the *same* question can yield
//! different answers depending on which recursive resolver asks (their caches
//! and load-balancer assignments differ) and when. The [`QueryContext`]
//! carries exactly those dimensions to the authoritative side so that
//! [`crate::LoadBalancePolicy`] implementations can condition on them.

use netsim_types::Instant;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a recursive resolver (one of the 14 probe resolvers, the
/// measurement host's own resolver, or an arbitrary client resolver).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ResolverId(pub u32);

impl fmt::Display for ResolverId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "resolver-{}", self.0)
    }
}

impl fmt::Debug for ResolverId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// A coarse geographic / topological vantage point. Authoritative
/// load balancers that steer by client location condition on this value; it
/// also distinguishes the HTTP-Archive crawler (US) from the authors' German
/// university vantage point, which the paper notes leads to e.g.
/// `www.google.de` redirects.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub enum Vantage {
    /// North-America vantage (the HTTP Archive crawler).
    NorthAmerica,
    /// European vantage (the authors' measurement host at RWTH Aachen).
    Europe,
    /// Asia-Pacific vantage (several of the probe resolvers).
    AsiaPacific,
    /// South-America vantage.
    SouthAmerica,
}

impl Vantage {
    /// A stable small integer for hashing into load-balancer pools.
    pub const fn index(self) -> u32 {
        match self {
            Vantage::NorthAmerica => 0,
            Vantage::Europe => 1,
            Vantage::AsiaPacific => 2,
            Vantage::SouthAmerica => 3,
        }
    }

    /// All vantage points.
    pub const fn all() -> [Vantage; 4] {
        [Vantage::NorthAmerica, Vantage::Europe, Vantage::AsiaPacific, Vantage::SouthAmerica]
    }
}

impl fmt::Display for Vantage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Vantage::NorthAmerica => "north-america",
            Vantage::Europe => "europe",
            Vantage::AsiaPacific => "asia-pacific",
            Vantage::SouthAmerica => "south-america",
        };
        f.write_str(name)
    }
}

/// The context in which a DNS query reaches an authoritative server.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryContext {
    /// The recursive resolver forwarding the query.
    pub resolver: ResolverId,
    /// Where the resolver (or, with ECS, the client) is located.
    pub vantage: Vantage,
    /// Simulated time of the query.
    pub now: Instant,
    /// Whether the resolver forwards an EDNS Client Subnet option. The probe
    /// explicitly selects resolvers *without* ECS support; when present,
    /// vantage-steering policies see the client's vantage rather than the
    /// resolver's.
    pub ecs: bool,
}

impl QueryContext {
    /// A query context at `now` from `resolver` located at `vantage`,
    /// without ECS.
    pub fn new(resolver: ResolverId, vantage: Vantage, now: Instant) -> Self {
        QueryContext { resolver, vantage, now, ecs: false }
    }

    /// The same context with ECS enabled.
    pub fn with_ecs(mut self) -> Self {
        self.ecs = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vantage_indices_are_distinct() {
        let mut seen = std::collections::BTreeSet::new();
        for v in Vantage::all() {
            assert!(seen.insert(v.index()));
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn context_builder() {
        let ctx = QueryContext::new(ResolverId(3), Vantage::Europe, Instant::from_millis(500));
        assert!(!ctx.ecs);
        assert!(ctx.with_ecs().ecs);
        assert_eq!(ctx.resolver.to_string(), "resolver-3");
        assert_eq!(Vantage::Europe.to_string(), "europe");
    }
}
