//! # netsim-dns
//!
//! A DNS substrate for the `connreuse` simulation.
//!
//! The paper identifies **unsynchronized DNS-based load balancing** as the
//! leading cause (`IP`) of redundant HTTP/2 connections: two domains served by
//! the same provider (e.g. `www.googletagmanager.com` and
//! `www.google-analytics.com`) are covered by the same certificate, yet
//! resolve to *slightly different* addresses in the same /24 — so RFC 7540
//! Connection Reuse never fires. Appendix A.4 then probes 14 public resolvers
//! every six minutes for days to show that whether two domains' answers
//! overlap depends on time and vantage point.
//!
//! This crate models exactly the moving parts behind that phenomenon:
//!
//! * [`record`] — resource records (A, CNAME) and answer sets,
//! * [`zone`] — authoritative zone data binding a domain to either static
//!   records or a [`loadbalance::LoadBalancePolicy`],
//! * [`loadbalance`] — answer-selection policies: static, rotating pools,
//!   per-resolver (unsynchronized) pools, vantage-dependent and synchronized
//!   anycast-style policies,
//! * [`authority`] — the authoritative side: a registry of zones queried by
//!   resolvers,
//! * [`resolver`] — recursive resolvers with TTL caches, CNAME chasing and an
//!   optional EDNS Client Subnet flag,
//! * [`query`] — the query context (who asks, from where, when).

// The zero-allocation visit fast path made these hot paths clone-free;
// keep them that way.
#![deny(clippy::redundant_clone)]
#![deny(clippy::clone_on_copy)]

pub mod authority;
pub mod loadbalance;
pub mod query;
pub mod record;
pub mod resolver;
pub mod zone;

pub use authority::Authority;
pub use loadbalance::LoadBalancePolicy;
pub use query::{QueryContext, ResolverId, Vantage};
pub use record::{Answer, RecordData, ResourceRecord};
pub use resolver::{RecursiveResolver, ResolutionError, ResolverConfig};
pub use zone::{Zone, ZoneEntry};
