//! Answer-selection (load-balancing) policies for authoritative zones.
//!
//! Section 5.3.1 of the paper attributes most `IP`-cause redundancy to
//! *unsynchronized* DNS load balancing: each domain of a provider is balanced
//! independently, so `www.googletagmanager.com` and `www.google-analytics.com`
//! land on different members of the same address pool even though either host
//! could serve both. The policies below reproduce that spectrum, from fully
//! static answers to per-resolver, per-domain, time-varying selections — and a
//! `SynchronizedPool` policy representing the fix the paper suggests (same
//! CNAME / anycast address for all of a provider's domains).
//!
//! All selections are **deterministic** functions of the pool, the domain and
//! the [`QueryContext`], so simulation runs are reproducible.

use crate::query::QueryContext;
use netsim_types::{fnv1a, DomainName, Duration, IpAddr};
use serde::{Deserialize, Serialize};

/// How an authoritative server picks the A records it returns for a domain.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum LoadBalancePolicy {
    /// Always return the same address list. Small single-host sites.
    Static {
        /// The fixed answer.
        addresses: Vec<IpAddr>,
    },
    /// Return `answer_size` consecutive pool members starting at an offset
    /// that rotates with time (one step per `rotation_period`), identically
    /// for every resolver. Classic round-robin rotation at the authority.
    RotatingPool {
        /// Candidate addresses.
        pool: Vec<IpAddr>,
        /// Number of addresses per answer.
        answer_size: usize,
        /// How often the rotation offset advances.
        rotation_period: Duration,
    },
    /// Each (resolver, domain, time-bucket) triple is hashed to an offset into
    /// the pool — answers differ between resolvers and between domains even
    /// at the same instant. This is the *unsynchronized* behaviour behind the
    /// paper's Google-Analytics/Tag-Manager and Facebook findings.
    PerResolverPool {
        /// Candidate addresses.
        pool: Vec<IpAddr>,
        /// Number of addresses per answer.
        answer_size: usize,
        /// Assignment stability: how long one resolver keeps getting the same
        /// offset before being re-hashed.
        epoch: Duration,
    },
    /// Like [`LoadBalancePolicy::PerResolverPool`] but the hash ignores the
    /// domain, so every domain of the provider served by this policy resolves
    /// to the *same* pool members for a given resolver and epoch — the
    /// "synchronized"/anycast-style deployment the paper recommends.
    SynchronizedPool {
        /// Candidate addresses.
        pool: Vec<IpAddr>,
        /// Number of addresses per answer.
        answer_size: usize,
        /// Assignment stability window.
        epoch: Duration,
    },
    /// The answer depends only on the client's vantage point (geo-DNS):
    /// each vantage gets a fixed slice of the pool.
    VantageSteered {
        /// Candidate addresses; sliced per vantage.
        pool: Vec<IpAddr>,
        /// Number of addresses per answer.
        answer_size: usize,
    },
}

impl LoadBalancePolicy {
    /// A static single-address policy.
    pub fn single(address: IpAddr) -> Self {
        LoadBalancePolicy::Static { addresses: vec![address] }
    }

    /// The full candidate pool of the policy.
    pub fn pool(&self) -> &[IpAddr] {
        match self {
            LoadBalancePolicy::Static { addresses } => addresses,
            LoadBalancePolicy::RotatingPool { pool, .. }
            | LoadBalancePolicy::PerResolverPool { pool, .. }
            | LoadBalancePolicy::SynchronizedPool { pool, .. }
            | LoadBalancePolicy::VantageSteered { pool, .. } => pool,
        }
    }

    /// Select the answer addresses for `domain` under context `ctx`.
    ///
    /// The returned list is never longer than the pool and never empty unless
    /// the pool itself is empty.
    pub fn select(&self, domain: &DomainName, ctx: &QueryContext) -> Vec<IpAddr> {
        let mut addresses = Vec::new();
        self.select_each(domain, ctx, |ip| addresses.push(ip));
        addresses
    }

    /// Allocation-free form of [`LoadBalancePolicy::select`]: call `emit`
    /// once per selected address, in answer order.
    pub fn select_each<F: FnMut(IpAddr)>(&self, domain: &DomainName, ctx: &QueryContext, mut emit: F) {
        match self {
            LoadBalancePolicy::Static { addresses } => {
                for ip in addresses {
                    emit(*ip);
                }
            }
            LoadBalancePolicy::RotatingPool { pool, answer_size, rotation_period } => {
                let bucket = time_bucket(ctx, *rotation_period);
                emit_wrapped(pool, bucket as usize, *answer_size, &mut emit);
            }
            LoadBalancePolicy::PerResolverPool { pool, answer_size, epoch } => {
                let bucket = time_bucket(ctx, *epoch);
                let h = mix(fnv1a(domain.as_str().as_bytes()) ^ ((ctx.resolver.0 as u64) << 32) ^ bucket);
                emit_wrapped(pool, h as usize, *answer_size, &mut emit);
            }
            LoadBalancePolicy::SynchronizedPool { pool, answer_size, epoch } => {
                let bucket = time_bucket(ctx, *epoch);
                let h = mix(((ctx.resolver.0 as u64) << 32) ^ bucket);
                emit_wrapped(pool, h as usize, *answer_size, &mut emit);
            }
            LoadBalancePolicy::VantageSteered { pool, answer_size } => {
                if pool.is_empty() {
                    return;
                }
                let slice = pool.len().div_ceil(4).max(1);
                let start = (ctx.vantage.index() as usize * slice) % pool.len();
                emit_wrapped(pool, start, *answer_size, &mut emit);
            }
        }
    }

    /// The synchronized-DNS mitigation applied to this policy: an
    /// unsynchronized [`LoadBalancePolicy::PerResolverPool`] becomes a
    /// [`LoadBalancePolicy::SynchronizedPool`] over the same pool (the
    /// per-domain hash is dropped, so co-hosted domains land on the same
    /// member). Every other policy is already domain-agnostic and is
    /// returned unchanged.
    #[must_use]
    pub fn synchronized(self) -> LoadBalancePolicy {
        match self {
            LoadBalancePolicy::PerResolverPool { pool, answer_size, epoch } => {
                LoadBalancePolicy::SynchronizedPool { pool, answer_size, epoch }
            }
            other => other,
        }
    }
}

/// The rotation / epoch bucket for a query time.
fn time_bucket(ctx: &QueryContext, period: Duration) -> u64 {
    let period = period.as_millis().max(1);
    ctx.now.as_millis() / period
}

/// Emit `count` pool members starting at `offset`, wrapping around.
fn emit_wrapped<F: FnMut(IpAddr)>(pool: &[IpAddr], offset: usize, count: usize, emit: &mut F) {
    if pool.is_empty() {
        return;
    }
    let count = count.clamp(1, pool.len());
    for i in 0..count {
        emit(pool[(offset + i) % pool.len()]);
    }
}

fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{ResolverId, Vantage};
    use netsim_types::Instant;

    fn d(s: &str) -> DomainName {
        DomainName::literal(s)
    }

    fn pool(n: u8) -> Vec<IpAddr> {
        (0..n).map(|i| IpAddr::new(142, 250, 74, i)).collect()
    }

    fn ctx(resolver: u32, millis: u64) -> QueryContext {
        QueryContext::new(ResolverId(resolver), Vantage::Europe, Instant::from_millis(millis))
    }

    #[test]
    fn static_policy_is_constant() {
        let p = LoadBalancePolicy::single(IpAddr::new(192, 0, 2, 1));
        assert_eq!(p.select(&d("x.example"), &ctx(0, 0)), vec![IpAddr::new(192, 0, 2, 1)]);
        assert_eq!(p.select(&d("y.example"), &ctx(5, 999_999)), vec![IpAddr::new(192, 0, 2, 1)]);
    }

    #[test]
    fn synchronizing_drops_the_per_domain_hash_only() {
        let epoch = Duration::from_mins(10);
        let unsync = LoadBalancePolicy::PerResolverPool { pool: pool(8), answer_size: 1, epoch };
        let synced = unsync.synchronized();
        assert_eq!(synced, LoadBalancePolicy::SynchronizedPool { pool: pool(8), answer_size: 1, epoch });
        // Synchronized answers agree across domains for the same context.
        let c = ctx(3, 1_000);
        assert_eq!(synced.select(&d("a.example"), &c), synced.select(&d("b.example"), &c));
        // Non-pool policies are unchanged.
        let stat = LoadBalancePolicy::single(IpAddr::new(192, 0, 2, 7));
        assert_eq!(stat.clone().synchronized(), stat);
    }

    #[test]
    fn rotating_pool_changes_with_time_not_resolver() {
        let p = LoadBalancePolicy::RotatingPool {
            pool: pool(4),
            answer_size: 1,
            rotation_period: Duration::from_secs(60),
        };
        let a0 = p.select(&d("x.example"), &ctx(0, 0));
        let a1 = p.select(&d("x.example"), &ctx(7, 0));
        assert_eq!(a0, a1, "same time, different resolver -> same answer");
        let later = p.select(&d("x.example"), &ctx(0, 60_001));
        assert_ne!(a0, later, "next rotation period -> next pool member");
    }

    #[test]
    fn per_resolver_pool_differs_across_domains_and_resolvers() {
        let p = LoadBalancePolicy::PerResolverPool {
            pool: pool(16),
            answer_size: 1,
            epoch: Duration::from_mins(30),
        };
        let ga = p.select(&d("www.google-analytics.com"), &ctx(1, 0));
        let gtm = p.select(&d("www.googletagmanager.com"), &ctx(1, 0));
        assert_ne!(ga, gtm, "independent per-domain balancing");
        let ga_other_resolver = p.select(&d("www.google-analytics.com"), &ctx(2, 0));
        assert_ne!(ga, ga_other_resolver, "independent per-resolver balancing");
        // deterministic within the epoch
        assert_eq!(ga, p.select(&d("www.google-analytics.com"), &ctx(1, 100)));
    }

    #[test]
    fn synchronized_pool_is_domain_agnostic() {
        let p = LoadBalancePolicy::SynchronizedPool {
            pool: pool(16),
            answer_size: 1,
            epoch: Duration::from_mins(30),
        };
        let a = p.select(&d("www.google-analytics.com"), &ctx(1, 0));
        let b = p.select(&d("www.googletagmanager.com"), &ctx(1, 0));
        assert_eq!(a, b, "synchronized: all domains land on the same address");
    }

    #[test]
    fn vantage_steering_partitions_the_pool() {
        let p = LoadBalancePolicy::VantageSteered { pool: pool(8), answer_size: 1 };
        let eu =
            p.select(&d("x.example"), &QueryContext::new(ResolverId(0), Vantage::Europe, Instant::EPOCH));
        let na = p.select(
            &d("x.example"),
            &QueryContext::new(ResolverId(0), Vantage::NorthAmerica, Instant::EPOCH),
        );
        assert_ne!(eu, na);
    }

    #[test]
    fn answer_size_is_clamped_and_empty_pool_is_empty() {
        let p = LoadBalancePolicy::RotatingPool {
            pool: pool(3),
            answer_size: 10,
            rotation_period: Duration::from_secs(60),
        };
        assert_eq!(p.select(&d("x.example"), &ctx(0, 0)).len(), 3);
        let empty = LoadBalancePolicy::RotatingPool {
            pool: vec![],
            answer_size: 2,
            rotation_period: Duration::from_secs(60),
        };
        assert!(empty.select(&d("x.example"), &ctx(0, 0)).is_empty());
        let zero = LoadBalancePolicy::PerResolverPool {
            pool: pool(3),
            answer_size: 0,
            epoch: Duration::from_secs(60),
        };
        assert_eq!(zero.select(&d("x.example"), &ctx(0, 0)).len(), 1);
    }

    #[test]
    fn answers_come_from_the_pool() {
        let p = LoadBalancePolicy::PerResolverPool {
            pool: pool(16),
            answer_size: 2,
            epoch: Duration::from_mins(5),
        };
        for r in 0..20 {
            for addr in p.select(&d("cdn.example"), &ctx(r, 1234)) {
                assert!(p.pool().contains(&addr));
            }
        }
    }
}
