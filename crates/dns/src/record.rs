//! Resource records and answers.

use netsim_types::{DomainName, Duration, Instant, IpAddr};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The payload of a resource record. Only the types the measurement pipeline
/// needs are modelled: address records and aliases.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RecordData {
    /// An IPv4 address record.
    A(IpAddr),
    /// A canonical-name alias to another domain.
    Cname(DomainName),
}

impl RecordData {
    /// The address if this is an `A` record.
    pub fn as_a(&self) -> Option<IpAddr> {
        match self {
            RecordData::A(ip) => Some(*ip),
            RecordData::Cname(_) => None,
        }
    }

    /// The alias target if this is a `CNAME` record.
    pub fn as_cname(&self) -> Option<&DomainName> {
        match self {
            RecordData::A(_) => None,
            RecordData::Cname(target) => Some(target),
        }
    }
}

impl fmt::Debug for RecordData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordData::A(ip) => write!(f, "A {ip}"),
            RecordData::Cname(target) => write!(f, "CNAME {target}"),
        }
    }
}

/// One resource record: owner name, TTL and payload.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceRecord {
    /// Owner name the record answers for.
    pub name: DomainName,
    /// Time-to-live controlling resolver caching.
    pub ttl: Duration,
    /// Record payload.
    pub data: RecordData,
}

impl ResourceRecord {
    /// An address record.
    pub fn a(name: DomainName, ip: IpAddr, ttl: Duration) -> Self {
        ResourceRecord { name, ttl, data: RecordData::A(ip) }
    }

    /// An alias record.
    pub fn cname(name: DomainName, target: DomainName, ttl: Duration) -> Self {
        ResourceRecord { name, ttl, data: RecordData::Cname(target) }
    }
}

impl fmt::Debug for ResourceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {:?}", self.name, self.ttl, self.data)
    }
}

/// The answer a resolver hands back to a client for an address query:
/// the resolved addresses (post CNAME chasing), the full CNAME chain that was
/// followed, and the expiry instant derived from the minimum TTL on the path.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Answer {
    /// The name originally queried.
    pub query_name: DomainName,
    /// The canonical name the query resolved to (equals `query_name` when no
    /// CNAME was involved).
    pub canonical_name: DomainName,
    /// CNAME chain from the query name to the canonical name (exclusive of
    /// the query name, inclusive of the canonical name), empty when direct.
    pub cname_chain: Vec<DomainName>,
    /// The addresses, in the order the authority returned them. Browsers
    /// typically connect to the first address.
    pub addresses: Vec<IpAddr>,
    /// When a cached copy of this answer must be discarded.
    pub expires_at: Instant,
}

impl Answer {
    /// The address a client will connect to (the first one), if any.
    pub fn primary_address(&self) -> Option<IpAddr> {
        self.addresses.first().copied()
    }

    /// `true` if `self` and `other` share at least one address — the overlap
    /// criterion of the Appendix A.4 probe.
    pub fn overlaps(&self, other: &Answer) -> bool {
        self.addresses.iter().any(|a| other.addresses.contains(a))
    }

    /// `true` if the answer is still valid at `now`.
    pub fn fresh_at(&self, now: Instant) -> bool {
        now < self.expires_at
    }
}

impl fmt::Debug for Answer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Answer({} -> {} {:?} exp {})",
            self.query_name, self.canonical_name, self.addresses, self.expires_at
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> DomainName {
        DomainName::literal(s)
    }

    #[test]
    fn record_constructors_and_accessors() {
        let a = ResourceRecord::a(d("example.com"), IpAddr::new(192, 0, 2, 1), Duration::from_secs(300));
        assert_eq!(a.data.as_a(), Some(IpAddr::new(192, 0, 2, 1)));
        assert_eq!(a.data.as_cname(), None);
        let c = ResourceRecord::cname(d("www.example.com"), d("example.com"), Duration::from_secs(60));
        assert_eq!(c.data.as_cname(), Some(&d("example.com")));
        assert_eq!(c.data.as_a(), None);
    }

    #[test]
    fn answer_overlap_and_freshness() {
        let base = Answer {
            query_name: d("a.example.com"),
            canonical_name: d("a.example.com"),
            cname_chain: vec![],
            addresses: vec![IpAddr::new(10, 0, 0, 1), IpAddr::new(10, 0, 0, 2)],
            expires_at: Instant::from_millis(10_000),
        };
        let overlapping = Answer { addresses: vec![IpAddr::new(10, 0, 0, 2)], ..base.clone() };
        let disjoint = Answer { addresses: vec![IpAddr::new(10, 0, 0, 9)], ..base.clone() };
        assert!(base.overlaps(&overlapping));
        assert!(!base.overlaps(&disjoint));
        assert_eq!(base.primary_address(), Some(IpAddr::new(10, 0, 0, 1)));
        assert!(base.fresh_at(Instant::from_millis(9_999)));
        assert!(!base.fresh_at(Instant::from_millis(10_000)));
    }
}
