//! The authoritative side of the simulated DNS.
//!
//! [`Authority`] aggregates all zones of a simulation run. Recursive resolvers
//! send it name queries together with a [`QueryContext`]; it finds the zone
//! responsible for the name and returns the matching records. Zone cuts and
//! delegation latency are not modelled — the analysis only depends on *which
//! addresses* come back, not on how many referrals it took to find them.

use crate::query::QueryContext;
use crate::record::ResourceRecord;
use crate::zone::{Zone, ZoneEntry};
use netsim_types::DomainName;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The collection of all authoritative zones.
///
/// An authority can be *layered* on top of a shared, immutable base
/// ([`Authority::with_base`]): the two layers must hold **disjoint** name
/// sets (asserted in debug builds on insertion), and queries probe the base
/// first — it is small and densely hit — before walking the local zones.
/// The population generator uses this to issue the third-party service
/// zones once per (catalog, mitigation-set) and share them across every
/// chunk of a large population instead of reinstalling them per chunk.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Authority {
    /// Zones indexed by their apex. Lookup walks from the most specific
    /// enclosing apex outwards.
    zones: BTreeMap<DomainName, Zone>,
    /// Shared read-only zones consulted when the local layer has no data.
    base: Option<std::sync::Arc<Authority>>,
}

impl Authority {
    /// An authority with no zones.
    pub fn new() -> Self {
        Authority::default()
    }

    /// An empty authority layered over a shared base. The layers' name sets
    /// must stay disjoint: the base answers first, so a local entry for a
    /// base-known name would be shadowed (debug-asserted in
    /// [`Authority::insert_entry`]).
    pub fn with_base(base: std::sync::Arc<Authority>) -> Self {
        Authority { zones: BTreeMap::new(), base: Some(base) }
    }

    /// Add (or replace) a zone rooted at `apex`.
    pub fn add_zone(&mut self, apex: DomainName, zone: Zone) -> &mut Self {
        self.zones.insert(apex, zone);
        self
    }

    /// Convenience: ensure a zone exists for `apex` and return a mutable
    /// reference to it.
    pub fn zone_mut(&mut self, apex: DomainName) -> &mut Zone {
        self.zones.entry(apex).or_insert_with(|| Zone::rooted(apex))
    }

    /// Insert a single entry, creating the zone for the name's registrable
    /// domain if needed. This is the common path for the population generator.
    pub fn insert_entry(&mut self, name: DomainName, entry: ZoneEntry) {
        debug_assert!(
            self.base.as_ref().is_none_or(|base| !base.knows(&name)),
            "layered authority inserted {name}, which the shared base already answers"
        );
        let apex = name.registrable();
        self.zone_mut(apex).insert(name, entry);
    }

    /// Number of zones.
    pub fn zone_count(&self) -> usize {
        self.zones.len()
    }

    /// Total number of owner names across all zones.
    pub fn name_count(&self) -> usize {
        self.zones.values().map(Zone::len).sum()
    }

    /// The zone responsible for `name`: the zone whose apex is the longest
    /// suffix of `name`.
    pub fn zone_for(&self, name: &DomainName) -> Option<&Zone> {
        let mut candidate = Some(*name);
        while let Some(current) = candidate {
            if let Some(zone) = self.zones.get(&current) {
                if zone.entry(name).is_some() || &current == name {
                    return Some(zone);
                }
                // The apex matches but holds no entry for the name; keep the
                // zone anyway — it is still the authoritative one.
                return Some(zone);
            }
            candidate = current.parent();
        }
        None
    }

    /// Answer a query: the records for `name` under `ctx`, or an empty vector
    /// for names nobody is authoritative for (NXDOMAIN).
    pub fn query(&self, name: &DomainName, ctx: &QueryContext) -> Vec<ResourceRecord> {
        let mut records = Vec::new();
        self.query_into(name, ctx, &mut records);
        records
    }

    /// Like [`Authority::query`], but appends the records to `out` instead of
    /// allocating a fresh vector — the resolver hot path reuses one buffer
    /// across lookups.
    pub fn query_into(&self, name: &DomainName, ctx: &QueryContext, out: &mut Vec<ResourceRecord>) {
        // Layered authorities keep the (small, densely hit) shared service
        // zones in the base and the per-site zones locally; apexes are
        // disjoint, so probe the cheap base first. Monolithic authorities
        // skip straight to their own zones.
        let before = out.len();
        if let Some(base) = &self.base {
            base.query_into(name, ctx, out);
            if out.len() > before {
                return;
            }
        }
        if let Some(zone) = self.zone_for(name) {
            zone.records_into(name, ctx, out);
        }
    }

    /// `true` if some zone has an entry for `name`.
    pub fn knows(&self, name: &DomainName) -> bool {
        self.zone_for(name).map(|z| z.entry(name).is_some()).unwrap_or(false)
            || self.base.as_ref().is_some_and(|base| base.knows(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loadbalance::LoadBalancePolicy;
    use crate::query::{ResolverId, Vantage};
    use netsim_types::{Instant, IpAddr};

    fn d(s: &str) -> DomainName {
        DomainName::literal(s)
    }

    fn ctx() -> QueryContext {
        QueryContext::new(ResolverId(0), Vantage::Europe, Instant::EPOCH)
    }

    fn authority() -> Authority {
        let mut auth = Authority::new();
        auth.insert_entry(d("example.com"), ZoneEntry::single(IpAddr::new(192, 0, 2, 1)));
        auth.insert_entry(d("www.example.com"), ZoneEntry::alias(d("example.com")));
        auth.insert_entry(
            d("cdn.provider.net"),
            ZoneEntry::balanced(LoadBalancePolicy::single(IpAddr::new(198, 51, 100, 7))),
        );
        auth
    }

    #[test]
    fn zones_are_created_per_registrable_domain() {
        let auth = authority();
        assert_eq!(auth.zone_count(), 2);
        assert_eq!(auth.name_count(), 3);
        assert!(auth.knows(&d("www.example.com")));
        assert!(!auth.knows(&d("mail.example.com")));
        assert!(!auth.knows(&d("unknown.org")));
    }

    #[test]
    fn query_returns_records_or_nxdomain() {
        let auth = authority();
        let records = auth.query(&d("example.com"), &ctx());
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].data.as_a(), Some(IpAddr::new(192, 0, 2, 1)));
        let alias = auth.query(&d("www.example.com"), &ctx());
        assert_eq!(alias[0].data.as_cname(), Some(&d("example.com")));
        assert!(auth.query(&d("nothing.example.org"), &ctx()).is_empty());
        // Name under a known zone but without an entry: empty answer.
        assert!(auth.query(&d("mail.example.com"), &ctx()).is_empty());
    }

    #[test]
    fn zone_for_walks_up_the_tree() {
        let auth = authority();
        assert!(auth.zone_for(&d("a.b.c.example.com")).is_some());
        assert!(auth.zone_for(&d("example.org")).is_none());
    }
}
