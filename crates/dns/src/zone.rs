//! Authoritative zone data.
//!
//! A [`Zone`] maps owner names to either a CNAME alias or an address-selection
//! policy. Real deployments mix both: `connect.facebook.net` might be a CNAME
//! into a CDN zone whose apex is load balanced; small sites have a single
//! static A record.

use crate::loadbalance::LoadBalancePolicy;
use crate::query::QueryContext;
use crate::record::{RecordData, ResourceRecord};
use netsim_types::{DomainName, Duration, IpAddr};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Default TTL handed out when an entry does not override it (5 minutes, a
/// common value for load-balanced names).
pub const DEFAULT_TTL: Duration = Duration::from_secs(300);

/// What a zone knows about one owner name.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ZoneEntry {
    /// The name is an alias for another name (possibly in another zone).
    Alias {
        /// CNAME target.
        target: DomainName,
        /// TTL of the CNAME record.
        ttl: Duration,
    },
    /// The name resolves to addresses chosen by a load-balancing policy.
    Addresses {
        /// Address-selection policy.
        policy: LoadBalancePolicy,
        /// TTL of the A records.
        ttl: Duration,
    },
}

impl ZoneEntry {
    /// A static single-address entry with the default TTL.
    pub fn single(address: IpAddr) -> Self {
        ZoneEntry::Addresses { policy: LoadBalancePolicy::single(address), ttl: DEFAULT_TTL }
    }

    /// An address entry with an explicit policy and the default TTL.
    pub fn balanced(policy: LoadBalancePolicy) -> Self {
        ZoneEntry::Addresses { policy, ttl: DEFAULT_TTL }
    }

    /// A CNAME entry with the default TTL.
    pub fn alias(target: DomainName) -> Self {
        ZoneEntry::Alias { target, ttl: DEFAULT_TTL }
    }

    /// The record TTL of the entry.
    pub fn ttl(&self) -> Duration {
        match self {
            ZoneEntry::Alias { ttl, .. } | ZoneEntry::Addresses { ttl, .. } => *ttl,
        }
    }
}

/// An authoritative zone: a named collection of entries.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Zone {
    /// The zone apex (informational; lookups are by full owner name).
    pub apex: Option<DomainName>,
    entries: BTreeMap<DomainName, ZoneEntry>,
}

impl Zone {
    /// An empty zone without an apex.
    pub fn new() -> Self {
        Zone::default()
    }

    /// An empty zone rooted at `apex`.
    pub fn rooted(apex: DomainName) -> Self {
        Zone { apex: Some(apex), entries: BTreeMap::new() }
    }

    /// Insert or replace the entry for `name`.
    pub fn insert(&mut self, name: DomainName, entry: ZoneEntry) -> &mut Self {
        self.entries.insert(name, entry);
        self
    }

    /// Look up the entry for `name`.
    pub fn entry(&self, name: &DomainName) -> Option<&ZoneEntry> {
        self.entries.get(name)
    }

    /// Number of owner names in the zone.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the zone holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All owner names in the zone.
    pub fn names(&self) -> impl Iterator<Item = &DomainName> {
        self.entries.keys()
    }

    /// Materialise the resource records the zone would return for `name`
    /// under `ctx`: either one CNAME record or one A record per selected
    /// address. Empty if the name is not in the zone.
    pub fn records_for(&self, name: &DomainName, ctx: &QueryContext) -> Vec<ResourceRecord> {
        let mut records = Vec::new();
        self.records_into(name, ctx, &mut records);
        records
    }

    /// Like [`Zone::records_for`], but appends to `out` instead of
    /// allocating — the resolver hot path reuses one records buffer.
    pub fn records_into(&self, name: &DomainName, ctx: &QueryContext, out: &mut Vec<ResourceRecord>) {
        match self.entries.get(name) {
            None => {}
            Some(ZoneEntry::Alias { target, ttl }) => {
                out.push(ResourceRecord { name: *name, ttl: *ttl, data: RecordData::Cname(*target) });
            }
            Some(ZoneEntry::Addresses { policy, ttl }) => {
                policy.select_each(name, ctx, |ip| out.push(ResourceRecord::a(*name, ip, *ttl)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{ResolverId, Vantage};
    use netsim_types::Instant;

    fn d(s: &str) -> DomainName {
        DomainName::literal(s)
    }

    fn ctx() -> QueryContext {
        QueryContext::new(ResolverId(0), Vantage::Europe, Instant::EPOCH)
    }

    #[test]
    fn insert_and_lookup() {
        let mut zone = Zone::rooted(d("example.com"));
        zone.insert(d("example.com"), ZoneEntry::single(IpAddr::new(192, 0, 2, 1)))
            .insert(d("www.example.com"), ZoneEntry::alias(d("example.com")));
        assert_eq!(zone.len(), 2);
        assert!(!zone.is_empty());
        assert!(zone.entry(&d("example.com")).is_some());
        assert!(zone.entry(&d("missing.example.com")).is_none());
        assert_eq!(zone.names().count(), 2);
    }

    #[test]
    fn records_for_alias_and_addresses() {
        let mut zone = Zone::new();
        zone.insert(d("www.example.com"), ZoneEntry::alias(d("example.com")));
        zone.insert(d("example.com"), ZoneEntry::single(IpAddr::new(192, 0, 2, 1)));
        let alias_records = zone.records_for(&d("www.example.com"), &ctx());
        assert_eq!(alias_records.len(), 1);
        assert_eq!(alias_records[0].data.as_cname(), Some(&d("example.com")));
        let a_records = zone.records_for(&d("example.com"), &ctx());
        assert_eq!(a_records.len(), 1);
        assert_eq!(a_records[0].data.as_a(), Some(IpAddr::new(192, 0, 2, 1)));
        assert!(zone.records_for(&d("nx.example.com"), &ctx()).is_empty());
    }

    #[test]
    fn multi_address_answers() {
        let mut zone = Zone::new();
        let pool: Vec<IpAddr> = (0..4).map(|i| IpAddr::new(10, 0, 0, i)).collect();
        zone.insert(
            d("cdn.example.com"),
            ZoneEntry::balanced(LoadBalancePolicy::RotatingPool {
                pool,
                answer_size: 2,
                rotation_period: Duration::from_secs(60),
            }),
        );
        let records = zone.records_for(&d("cdn.example.com"), &ctx());
        assert_eq!(records.len(), 2);
        assert!(records.iter().all(|r| r.data.as_a().is_some()));
        assert_eq!(records[0].ttl, DEFAULT_TTL);
    }

    #[test]
    fn entry_ttl_accessor() {
        assert_eq!(ZoneEntry::single(IpAddr::new(1, 2, 3, 4)).ttl(), DEFAULT_TTL);
        let alias = ZoneEntry::Alias { target: d("x.example"), ttl: Duration::from_secs(60) };
        assert_eq!(alias.ttl(), Duration::from_secs(60));
    }
}
