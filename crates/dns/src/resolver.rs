//! Recursive resolvers with TTL caches and CNAME chasing.
//!
//! The browser in the measurement setup uses "our own recursive resolver";
//! the Appendix A.4 probe uses 14 public resolvers spread around the world.
//! Two properties of recursive resolvers matter for the paper's findings:
//!
//! 1. **Caches desynchronise answers.** Two domains pointing at the same
//!    load-balanced pool can be cached at different times, so even a single
//!    resolver can hold non-overlapping answers for them.
//! 2. **Resolver identity is part of the load-balancing key.** Authorities
//!    that hash by resolver hand different pool members to different
//!    resolvers, so the vantage point changes what the browser connects to.

use crate::authority::Authority;
use crate::query::{QueryContext, ResolverId, Vantage};
use crate::record::{Answer, RecordData, ResourceRecord};
use netsim_types::{DomainName, Duration, FnvHashMap, Instant};
use serde::{Deserialize, Serialize};

/// Maximum CNAME chain length before the resolver gives up (loop protection).
const MAX_CNAME_DEPTH: usize = 8;

/// Configuration of one recursive resolver.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ResolverConfig {
    /// Stable identity, part of the authoritative load-balancing key.
    pub id: ResolverId,
    /// Where the resolver sits.
    pub vantage: Vantage,
    /// Whether it forwards EDNS Client Subnet (the probe resolvers were
    /// chosen not to).
    pub ecs: bool,
    /// Human-readable operator label (Table 11).
    pub label: String,
    /// Cap applied on top of record TTLs (some resolvers clamp TTLs).
    pub max_ttl: Duration,
}

impl ResolverConfig {
    /// A resolver with sensible defaults at the given vantage.
    pub fn new(id: ResolverId, vantage: Vantage, label: &str) -> Self {
        ResolverConfig { id, vantage, ecs: false, label: label.to_string(), max_ttl: Duration::from_hours(1) }
    }
}

/// Errors a resolution can produce.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResolutionError {
    /// No authoritative data exists for the name.
    NxDomain(DomainName),
    /// The name only resolved to a CNAME chain that never reached addresses.
    NoAddress(DomainName),
    /// The CNAME chain exceeded the resolver's depth limit (8 hops).
    CnameLoop(DomainName),
}

impl std::fmt::Display for ResolutionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResolutionError::NxDomain(d) => write!(f, "NXDOMAIN for {d}"),
            ResolutionError::NoAddress(d) => write!(f, "no address records for {d}"),
            ResolutionError::CnameLoop(d) => write!(f, "CNAME chain too long resolving {d}"),
        }
    }
}

impl std::error::Error for ResolutionError {}

/// One cached answer.
#[derive(Clone, Debug)]
struct CacheLine {
    answer: Answer,
}

/// A caching recursive resolver.
///
/// The cache is allocation-recycling: flushing it (which the browser does
/// between every page visit) returns the cached answers' buffers to an
/// internal pool instead of freeing them, so a resolver that is reused across
/// thousands of visits performs **zero steady-state heap allocations** — the
/// property the visit fast path (`netsim_browser::VisitScratch`) depends on.
/// [`RecursiveResolver::resolve`] accordingly hands out a *borrow* of the
/// cached answer rather than a clone.
#[derive(Clone, Debug)]
pub struct RecursiveResolver {
    config: ResolverConfig,
    cache: FnvHashMap<DomainName, CacheLine>,
    /// Recycled `(addresses, cname_chain)` buffers from flushed cache lines.
    pool: Vec<(Vec<netsim_types::IpAddr>, Vec<DomainName>)>,
    /// Scratch buffer for authority queries (reused across lookups).
    records: Vec<ResourceRecord>,
    /// Scratch buffer of names collected by [`RecursiveResolver::expire_stale`]
    /// (reused across sweeps).
    expired: Vec<DomainName>,
    /// Cumulative statistics, exposed for tests and reports.
    stats: ResolverStats,
}

/// Counters describing a resolver's activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResolverStats {
    /// Queries answered from cache.
    pub cache_hits: u64,
    /// Queries that required contacting the authority.
    pub cache_misses: u64,
    /// Individual authority queries performed by recursive walks (every
    /// CNAME hop counts one — the latency unit the cost model charges).
    pub authority_queries: u64,
    /// Resolutions that ended in an error.
    pub failures: u64,
}

impl RecursiveResolver {
    /// Create a resolver from its configuration.
    pub fn new(config: ResolverConfig) -> Self {
        RecursiveResolver {
            config,
            cache: FnvHashMap::default(),
            pool: Vec::new(),
            records: Vec::new(),
            expired: Vec::new(),
            stats: ResolverStats::default(),
        }
    }

    /// The resolver's configuration.
    pub fn config(&self) -> &ResolverConfig {
        &self.config
    }

    /// Activity counters.
    pub fn stats(&self) -> ResolverStats {
        self.stats
    }

    /// Number of cached names.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Record a resolution failure injected by a fault model (a simulated
    /// SERVFAIL / lost query drawn *outside* the resolver, before any
    /// authority walk runs). Counts as a cache miss that failed, so
    /// [`RecursiveResolver::stats`] stays the single source of truth for the
    /// visit fast path's DNS accounting: nothing is cached and no authority
    /// queries are charged — the failure happened on the way there.
    pub fn note_injected_failure(&mut self) {
        self.stats.cache_misses += 1;
        self.stats.failures += 1;
    }

    /// Drop every cached answer (the measurement methodology resets caches
    /// between site visits). The answers' buffers are recycled into an
    /// internal pool so subsequent resolutions reuse them.
    pub fn flush_cache(&mut self) {
        for (_, line) in self.cache.drain() {
            let Answer { mut addresses, mut cname_chain, .. } = line.answer;
            addresses.clear();
            cname_chain.clear();
            self.pool.push((addresses, cname_chain));
        }
    }

    /// Drop only the cached answers whose TTL has passed at `now`, recycling
    /// their buffers. This is the *session* cache discipline: a multi-page
    /// user session carries its DNS cache across navigations (unlike the
    /// measurement methodology's per-visit flush) and sweeps expired lines at
    /// page boundaries. [`RecursiveResolver::resolve`] re-checks freshness on
    /// every lookup anyway, so the sweep only bounds cache growth and keeps
    /// [`RecursiveResolver::cache_len`] an honest live-entry count.
    pub fn expire_stale(&mut self, now: Instant) {
        self.expired.clear();
        for (name, line) in self.cache.iter() {
            if !line.answer.fresh_at(now) {
                self.expired.push(*name);
            }
        }
        for index in 0..self.expired.len() {
            if let Some(line) = self.cache.remove(&self.expired[index]) {
                let Answer { mut addresses, mut cname_chain, .. } = line.answer;
                addresses.clear();
                cname_chain.clear();
                self.pool.push((addresses, cname_chain));
            }
        }
    }

    /// Resolve `name` to addresses at simulated time `now`, consulting the
    /// cache first and chasing CNAMEs through `authority` otherwise.
    ///
    /// Returns a borrow of the cached answer; clone it only if it must
    /// outlive the next call on this resolver.
    pub fn resolve(
        &mut self,
        authority: &Authority,
        name: &DomainName,
        now: Instant,
    ) -> Result<&Answer, ResolutionError> {
        if self.cache.get(name).is_some_and(|line| line.answer.fresh_at(now)) {
            self.stats.cache_hits += 1;
            return Ok(&self.cache.get(name).expect("entry just checked").answer);
        }
        self.stats.cache_misses += 1;
        let ctx = QueryContext {
            resolver: self.config.id,
            vantage: self.config.vantage,
            now,
            ecs: self.config.ecs,
        };
        match self.resolve_uncached(authority, name, &ctx) {
            Ok(answer) => {
                // Replacing a stale line recycles its buffers first.
                if let Some(stale) = self.cache.remove(name) {
                    let Answer { mut addresses, mut cname_chain, .. } = stale.answer;
                    addresses.clear();
                    cname_chain.clear();
                    self.pool.push((addresses, cname_chain));
                }
                let line = self.cache.entry(*name).or_insert(CacheLine { answer });
                Ok(&line.answer)
            }
            Err(err) => {
                self.stats.failures += 1;
                Err(err)
            }
        }
    }

    fn resolve_uncached(
        &mut self,
        authority: &Authority,
        name: &DomainName,
        ctx: &QueryContext,
    ) -> Result<Answer, ResolutionError> {
        let (mut addresses, mut chain) = self.pool.pop().unwrap_or_default();
        let mut records = std::mem::take(&mut self.records);
        let result = Self::chase(
            authority,
            name,
            ctx,
            self.config.max_ttl,
            &mut addresses,
            &mut chain,
            &mut records,
            &mut self.stats.authority_queries,
        );
        records.clear();
        self.records = records;
        match result {
            Ok((canonical_name, expires_at)) => {
                Ok(Answer { query_name: *name, canonical_name, cname_chain: chain, addresses, expires_at })
            }
            Err(err) => {
                addresses.clear();
                chain.clear();
                self.pool.push((addresses, chain));
                Err(err)
            }
        }
    }

    /// Chase CNAMEs from `name`, filling `addresses`/`chain` in place.
    /// Returns the canonical name and expiry on success.
    #[allow(clippy::too_many_arguments)]
    fn chase(
        authority: &Authority,
        name: &DomainName,
        ctx: &QueryContext,
        max_ttl: Duration,
        addresses: &mut Vec<netsim_types::IpAddr>,
        chain: &mut Vec<DomainName>,
        records: &mut Vec<ResourceRecord>,
        queries: &mut u64,
    ) -> Result<(DomainName, Instant), ResolutionError> {
        let mut current = *name;
        let mut min_ttl = max_ttl;
        for _ in 0..MAX_CNAME_DEPTH {
            records.clear();
            *queries += 1;
            authority.query_into(&current, ctx, records);
            if records.is_empty() {
                return if chain.is_empty() {
                    Err(ResolutionError::NxDomain(*name))
                } else {
                    Err(ResolutionError::NoAddress(*name))
                };
            }
            // Either a CNAME (single record) or a set of A records.
            if let Some(target) = records[0].data.as_cname() {
                min_ttl = min_duration(min_ttl, records[0].ttl);
                chain.push(*target);
                current = *target;
                continue;
            }
            for record in records.iter() {
                match &record.data {
                    RecordData::A(ip) => {
                        min_ttl = min_duration(min_ttl, record.ttl);
                        addresses.push(*ip);
                    }
                    RecordData::Cname(_) => {}
                }
            }
            if addresses.is_empty() {
                return Err(ResolutionError::NoAddress(*name));
            }
            let effective_ttl = min_duration(min_ttl, max_ttl);
            return Ok((current, ctx.now + effective_ttl));
        }
        Err(ResolutionError::CnameLoop(*name))
    }
}

fn min_duration(a: Duration, b: Duration) -> Duration {
    if a <= b {
        a
    } else {
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loadbalance::LoadBalancePolicy;
    use crate::zone::ZoneEntry;
    use netsim_types::IpAddr;

    fn d(s: &str) -> DomainName {
        DomainName::literal(s)
    }

    fn resolver() -> RecursiveResolver {
        RecursiveResolver::new(ResolverConfig::new(ResolverId(1), Vantage::Europe, "internal"))
    }

    fn authority() -> Authority {
        let mut auth = Authority::new();
        auth.insert_entry(d("example.com"), ZoneEntry::single(IpAddr::new(192, 0, 2, 1)));
        auth.insert_entry(d("www.example.com"), ZoneEntry::alias(d("example.com")));
        auth.insert_entry(d("a.example.com"), ZoneEntry::alias(d("b.example.com")));
        auth.insert_entry(d("b.example.com"), ZoneEntry::alias(d("a.example.com")));
        auth.insert_entry(
            d("lb.example.com"),
            ZoneEntry::Addresses {
                policy: LoadBalancePolicy::RotatingPool {
                    pool: (0..4).map(|i| IpAddr::new(10, 0, 0, i)).collect(),
                    answer_size: 1,
                    rotation_period: Duration::from_secs(60),
                },
                ttl: Duration::from_secs(30),
            },
        );
        auth
    }

    #[test]
    fn resolves_direct_and_via_cname() {
        let auth = authority();
        let mut r = resolver();
        let direct = r.resolve(&auth, &d("example.com"), Instant::EPOCH).unwrap();
        assert_eq!(direct.primary_address(), Some(IpAddr::new(192, 0, 2, 1)));
        assert!(direct.cname_chain.is_empty());
        let via = r.resolve(&auth, &d("www.example.com"), Instant::EPOCH).unwrap();
        assert_eq!(via.canonical_name, d("example.com"));
        assert_eq!(via.cname_chain, vec![d("example.com")]);
        assert_eq!(via.primary_address(), Some(IpAddr::new(192, 0, 2, 1)));
    }

    #[test]
    fn errors_for_unknown_and_loops() {
        let auth = authority();
        let mut r = resolver();
        assert_eq!(
            r.resolve(&auth, &d("nx.invalid"), Instant::EPOCH),
            Err(ResolutionError::NxDomain(d("nx.invalid")))
        );
        assert_eq!(
            r.resolve(&auth, &d("a.example.com"), Instant::EPOCH),
            Err(ResolutionError::CnameLoop(d("a.example.com")))
        );
        assert_eq!(r.stats().failures, 2);
    }

    #[test]
    fn injected_failures_count_as_failed_misses_without_authority_traffic() {
        let mut r = resolver();
        r.note_injected_failure();
        r.note_injected_failure();
        let stats = r.stats();
        assert_eq!(stats.failures, 2);
        assert_eq!(stats.cache_misses, 2);
        assert_eq!(stats.authority_queries, 0);
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(r.cache_len(), 0);
    }

    #[test]
    fn cache_hit_until_ttl_expires() {
        let auth = authority();
        let mut r = resolver();
        let t0 = Instant::EPOCH;
        let first = r.resolve(&auth, &d("lb.example.com"), t0).unwrap().clone();
        // Within the 30 s TTL: cached, identical answer even though the
        // rotation period has advanced.
        let t1 = t0 + Duration::from_secs(25) + Duration::from_secs(45);
        let _ = t1;
        let cached = r.resolve(&auth, &d("lb.example.com"), t0 + Duration::from_secs(20)).unwrap().clone();
        assert_eq!(first.addresses, cached.addresses);
        assert_eq!(r.stats().cache_hits, 1);
        assert_eq!(r.stats().cache_misses, 1);
        // After expiry the authority is asked again and rotation has moved on.
        let refreshed = r.resolve(&auth, &d("lb.example.com"), t0 + Duration::from_secs(120)).unwrap();
        assert_ne!(first.addresses, refreshed.addresses);
        assert_eq!(r.stats().cache_misses, 2);
    }

    #[test]
    fn authority_queries_count_every_cname_hop() {
        let auth = authority();
        let mut r = resolver();
        // Direct name: one authority query.
        r.resolve(&auth, &d("example.com"), Instant::EPOCH).unwrap();
        assert_eq!(r.stats().authority_queries, 1);
        // One CNAME hop: alias + target = two queries.
        r.resolve(&auth, &d("www.example.com"), Instant::EPOCH).unwrap();
        assert_eq!(r.stats().authority_queries, 3);
        // A cache hit performs no authority query at all.
        r.resolve(&auth, &d("example.com"), Instant::EPOCH).unwrap();
        assert_eq!(r.stats().authority_queries, 3);
        assert_eq!(r.stats().cache_hits, 1);
        // A CNAME loop burns the full depth budget before giving up.
        let _ = r.resolve(&auth, &d("a.example.com"), Instant::EPOCH);
        assert_eq!(r.stats().authority_queries, 3 + 8);
    }

    #[test]
    fn flush_cache_forces_requery() {
        let auth = authority();
        let mut r = resolver();
        r.resolve(&auth, &d("example.com"), Instant::EPOCH).unwrap();
        assert_eq!(r.cache_len(), 1);
        r.flush_cache();
        assert_eq!(r.cache_len(), 0);
        r.resolve(&auth, &d("example.com"), Instant::EPOCH).unwrap();
        assert_eq!(r.stats().cache_misses, 2);
    }

    #[test]
    fn expire_stale_drops_only_expired_lines_and_recycles_buffers() {
        let auth = authority();
        let mut r = resolver();
        let t0 = Instant::EPOCH;
        // Two lines: lb has a 30 s TTL, example.com the 1 h resolver clamp.
        let stale_ptr = r.resolve(&auth, &d("lb.example.com"), t0).unwrap().addresses.as_ptr();
        r.resolve(&auth, &d("example.com"), t0).unwrap();
        assert_eq!(r.cache_len(), 2);
        // At t0+45 s only the lb line has expired.
        r.expire_stale(t0 + Duration::from_secs(45));
        assert_eq!(r.cache_len(), 1);
        // The fresh line still serves from cache...
        r.resolve(&auth, &d("example.com"), t0 + Duration::from_secs(45)).unwrap();
        assert_eq!(r.stats().cache_hits, 1);
        // ...and re-resolving the expired name reuses the recycled buffer.
        let reused_ptr =
            r.resolve(&auth, &d("lb.example.com"), t0 + Duration::from_secs(45)).unwrap().addresses.as_ptr();
        assert_eq!(stale_ptr, reused_ptr, "expire_stale must recycle buffers into the pool");
        // A sweep with nothing expired is a no-op.
        r.expire_stale(t0 + Duration::from_secs(46));
        assert_eq!(r.cache_len(), 2);
    }

    #[test]
    fn cache_hits_borrow_the_same_answer_without_cloning() {
        let auth = authority();
        let mut r = resolver();
        let t0 = Instant::EPOCH;
        let first_ptr = r.resolve(&auth, &d("lb.example.com"), t0).unwrap().addresses.as_ptr();
        // A fresh cache hit must hand back the very same buffer — no clone.
        let hit_ptr = r.resolve(&auth, &d("lb.example.com"), t0).unwrap().addresses.as_ptr();
        assert_eq!(first_ptr, hit_ptr, "cache hit must borrow, not clone, the cached answer");
        assert_eq!(r.stats().cache_hits, 1);
    }

    #[test]
    fn flush_recycles_answer_buffers_into_the_pool() {
        let auth = authority();
        let mut r = resolver();
        // Warm the cache, flush it, resolve again: the second resolution must
        // reuse the pooled buffer instead of allocating a new one.
        let warm_ptr = r.resolve(&auth, &d("example.com"), Instant::EPOCH).unwrap().addresses.as_ptr();
        r.flush_cache();
        assert_eq!(r.cache_len(), 0);
        let reused_ptr = r.resolve(&auth, &d("example.com"), Instant::EPOCH).unwrap().addresses.as_ptr();
        assert_eq!(warm_ptr, reused_ptr, "flush must recycle answer buffers for reuse");
        assert_eq!(r.stats().cache_misses, 2);
    }

    #[test]
    fn two_resolvers_can_hold_different_answers() {
        // The unsynchronized pool hands different members to different
        // resolver ids — the mechanism behind the paper's IP cause.
        let mut auth = Authority::new();
        auth.insert_entry(
            d("www.google-analytics.com"),
            ZoneEntry::balanced(LoadBalancePolicy::PerResolverPool {
                pool: (0..32).map(|i| IpAddr::new(142, 250, 74, i)).collect(),
                answer_size: 1,
                epoch: Duration::from_mins(30),
            }),
        );
        let mut r1 = RecursiveResolver::new(ResolverConfig::new(ResolverId(1), Vantage::Europe, "a"));
        let mut r2 = RecursiveResolver::new(ResolverConfig::new(ResolverId(2), Vantage::Europe, "b"));
        let a1 = r1.resolve(&auth, &d("www.google-analytics.com"), Instant::EPOCH).unwrap();
        let a2 = r2.resolve(&auth, &d("www.google-analytics.com"), Instant::EPOCH).unwrap();
        assert_ne!(a1.addresses, a2.addresses);
        // But both stay within the same /24 — the paper's observation.
        assert!(a1.primary_address().unwrap().same_slash24(a2.primary_address().unwrap()));
    }
}
