//! # netsim-har
//!
//! An HTTP-Archive substrate: the HAR-file side of the paper's methodology.
//!
//! The HTTP Archive loads every landing page three times with Chrome, keeps
//! the HAR file of the median load time, and publishes it. HAR files only
//! carry *request-level* information — a socket ("connection") id, the server
//! IP, the TLS certificate details and timings — so the paper reconstructs
//! HTTP/2 session lifecycles by grouping requests per socket id and has to
//! bracket unknown connection end times between an "endless" and an
//! "immediate" assumption (§4.2.1). Real HAR corpora are also messy: §4.3
//! lists hundreds of thousands of entries with socket id 0, missing IPs,
//! invalid methods or missing certificates that the analysis must filter.
//!
//! This crate reproduces all of that:
//!
//! * [`model`] — a serde-serialisable HAR document model (the subset of
//!   fields the analysis needs, using the HAR field names),
//! * [`capture`] — converting a browser [`netsim_browser::PageVisit`] into a
//!   HAR document, exactly as the crawler's logging would,
//! * [`inconsistency`] — injecting the §4.3 logging defects at configurable
//!   rates,
//! * [`pipeline`] — the median-of-three crawl procedure plus the filter step
//!   that removes (and counts) inconsistent entries before analysis.

pub mod capture;
pub mod inconsistency;
pub mod model;
pub mod pipeline;

pub use capture::capture_visit;
pub use inconsistency::{InconsistencyConfig, InconsistencyKind};
pub use model::{HarDocument, HarEntry, HarPage, SecurityDetails};
pub use pipeline::{ArchivePipeline, FilterStatistics, HarDataset};
