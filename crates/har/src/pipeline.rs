//! The HTTP-Archive crawl pipeline.
//!
//! For every site the HTTP Archive loads the landing page three times and
//! saves the HAR of the median load time (§4.2.1); the analysis then filters
//! entries that carry any of the §4.3 logging defects and conservatively
//! drops them, tracking how much was lost. [`ArchivePipeline`] reproduces the
//! crawl+select+corrupt sequence and [`HarDataset::filter`] the clean-up, so
//! the downstream classifier works on the same kind of material the paper's
//! HAR analysis did.

use crate::capture::capture_visit;
use crate::inconsistency::InconsistencyConfig;
use crate::model::HarDocument;
use netsim_browser::{Browser, BrowserConfig};
use netsim_types::{Duration, Instant, SimClock, SimRng};
use netsim_web::WebEnvironment;
use serde::{Deserialize, Serialize};

/// How many times each landing page is loaded before taking the median.
const LOADS_PER_SITE: usize = 3;

/// Identifier spacing so ids are unique across sites and repeat loads.
const ID_STRIDE: u64 = 1_000_000;

/// Counters describing what the filter step removed — the §4.3 bookkeeping.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FilterStatistics {
    /// Entries with socket id 0.
    pub zero_socket_id: u64,
    /// Entries without a server IP.
    pub missing_ip: u64,
    /// Entries with an invalid request method.
    pub invalid_method: u64,
    /// Entries logged as HTTP/1.
    pub http1: u64,
    /// Entries logged as HTTP/3.
    pub http3: u64,
    /// Entries without certificate details.
    pub missing_certificate: u64,
    /// Entries referencing a non-existent page.
    pub bad_page_reference: u64,
    /// HTTP/2 entries that survived every check.
    pub retained_http2: u64,
    /// Total entries inspected.
    pub total_entries: u64,
}

impl FilterStatistics {
    /// Total entries dropped for any reason.
    pub fn dropped(&self) -> u64 {
        self.total_entries - self.retained_http2
    }

    /// Merge another site's statistics into this one.
    pub fn merge(&mut self, other: &FilterStatistics) {
        self.zero_socket_id += other.zero_socket_id;
        self.missing_ip += other.missing_ip;
        self.invalid_method += other.invalid_method;
        self.http1 += other.http1;
        self.http3 += other.http3;
        self.missing_certificate += other.missing_certificate;
        self.bad_page_reference += other.bad_page_reference;
        self.retained_http2 += other.retained_http2;
        self.total_entries += other.total_entries;
    }
}

/// A corpus of HAR documents (one per site) plus filter bookkeeping.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HarDataset {
    /// One median-load HAR per site, in site order.
    pub documents: Vec<HarDocument>,
    /// Aggregate filter statistics (populated by [`HarDataset::filter`]).
    pub filter_statistics: FilterStatistics,
}

impl HarDataset {
    /// Number of sites in the corpus.
    pub fn site_count(&self) -> usize {
        self.documents.len()
    }

    /// Total entries across all documents.
    pub fn total_entries(&self) -> usize {
        self.documents.iter().map(|d| d.entries.len()).sum()
    }

    /// Apply the §4.3 filter: drop defective entries in place and record what
    /// was dropped. Returns the accumulated statistics.
    pub fn filter(&mut self) -> FilterStatistics {
        let mut stats = FilterStatistics::default();
        for document in &mut self.documents {
            let valid_pages: std::collections::BTreeSet<String> =
                document.pages.iter().map(|p| p.id.clone()).collect();
            document.entries.retain(|entry| {
                stats.total_entries += 1;
                if entry.protocol == "http/1.1" {
                    stats.http1 += 1;
                    return false;
                }
                if entry.protocol == "h3" {
                    stats.http3 += 1;
                    return false;
                }
                if entry.connection == "0" || entry.connection.is_empty() {
                    stats.zero_socket_id += 1;
                    return false;
                }
                if entry.server_ip_address.is_empty() {
                    stats.missing_ip += 1;
                    return false;
                }
                if entry.method != "GET" && entry.method != "POST" && entry.method != "HEAD" {
                    stats.invalid_method += 1;
                    return false;
                }
                if entry.security_details.is_none() {
                    stats.missing_certificate += 1;
                    return false;
                }
                if !valid_pages.contains(&entry.pageref) {
                    stats.bad_page_reference += 1;
                    return false;
                }
                stats.retained_http2 += 1;
                true
            });
        }
        self.filter_statistics = stats;
        stats
    }
}

/// The crawl half of the pipeline: load every site three times, keep the
/// median-load HAR, inject logging defects.
#[derive(Clone, Debug)]
pub struct ArchivePipeline {
    config: BrowserConfig,
    inconsistencies: InconsistencyConfig,
    seed: u64,
    threads: usize,
}

impl ArchivePipeline {
    /// A pipeline with the HTTP-Archive crawler configuration and default
    /// defect rates.
    pub fn new(seed: u64) -> Self {
        ArchivePipeline {
            config: BrowserConfig::http_archive_crawler(),
            inconsistencies: InconsistencyConfig::default(),
            seed,
            threads: 1,
        }
    }

    /// Override the browser configuration.
    pub fn with_config(mut self, config: BrowserConfig) -> Self {
        self.config = config;
        self
    }

    /// Override the defect-injection rates.
    pub fn with_inconsistencies(mut self, config: InconsistencyConfig) -> Self {
        self.inconsistencies = config;
        self
    }

    /// Use up to `threads` worker threads.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Crawl the population and produce the HAR corpus (unfiltered).
    pub fn run(&self, env: &WebEnvironment) -> HarDataset {
        let site_count = env.sites.len();
        let mut documents: Vec<Option<HarDocument>> = Vec::new();
        documents.resize_with(site_count, || None);
        if self.threads <= 1 || site_count < 2 {
            for (index, slot) in documents.iter_mut().enumerate() {
                *slot = Some(self.crawl_site(env, index));
            }
        } else {
            let threads = self.threads.min(site_count);
            let chunk = site_count.div_ceil(threads);
            let chunks: Vec<&mut [Option<HarDocument>]> = documents.chunks_mut(chunk).collect();
            std::thread::scope(|scope| {
                for (chunk_index, slot) in chunks.into_iter().enumerate() {
                    let start = chunk_index * chunk;
                    scope.spawn(move || {
                        for (offset, out) in slot.iter_mut().enumerate() {
                            *out = Some(self.crawl_site(env, start + offset));
                        }
                    });
                }
            });
        }
        HarDataset {
            documents: documents.into_iter().map(|d| d.expect("every site crawled")).collect(),
            filter_statistics: FilterStatistics::default(),
        }
    }

    /// Crawl one site: three loads, median selection, defect injection.
    fn crawl_site(&self, env: &WebEnvironment, index: usize) -> HarDocument {
        let site = &env.sites[index];
        let base = Instant::EPOCH + Duration::from_secs(self.config.visit_spacing_secs * index as u64);
        let mut loads = Vec::with_capacity(LOADS_PER_SITE);
        for attempt in 0..LOADS_PER_SITE {
            let mut clock = SimClock::starting_at(base + Duration::from_secs(60 * attempt as u64));
            let id_base = (index * LOADS_PER_SITE + attempt) as u64 * ID_STRIDE;
            let mut browser = Browser::with_id_base(self.config.clone(), id_base);
            let mut rng = SimRng::new(self.seed).fork_indexed("har-load", id_base);
            let visit = browser.load_page(env, site, &mut clock, &mut rng);
            loads.push(capture_visit(&visit));
        }
        loads.sort_by_key(|d| d.load_time_ms());
        let mut median = loads.swap_remove(LOADS_PER_SITE / 2);
        let mut rng = SimRng::new(self.seed).fork_indexed("har-defects", index as u64);
        self.inconsistencies.apply(&mut median, &mut rng);
        median
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim_web::{PopulationBuilder, PopulationProfile};

    fn env(sites: usize) -> WebEnvironment {
        PopulationBuilder::new(PopulationProfile::archive(), sites, 13).build()
    }

    #[test]
    fn pipeline_produces_one_document_per_site() {
        let environment = env(10);
        let dataset = ArchivePipeline::new(3).run(&environment);
        assert_eq!(dataset.site_count(), 10);
        assert!(dataset.total_entries() >= 10);
        for (index, document) in dataset.documents.iter().enumerate() {
            assert_eq!(
                document.landing_domain().unwrap(),
                environment.sites[index].domain,
                "document {index} belongs to the right site"
            );
        }
    }

    #[test]
    fn filter_removes_defective_entries_and_counts_them() {
        let environment = env(20);
        let mut dataset = ArchivePipeline::new(5).run(&environment);
        let before = dataset.total_entries();
        let stats = dataset.filter();
        assert_eq!(stats.total_entries as usize, before);
        assert_eq!(stats.retained_http2 as usize, dataset.total_entries());
        assert_eq!(stats.dropped(), stats.total_entries - stats.retained_http2);
        // The default defect rates hit around 10 % of entries.
        let dropped_share = stats.dropped() as f64 / stats.total_entries as f64;
        assert!(dropped_share > 0.02 && dropped_share < 0.3, "dropped share {dropped_share}");
        // After filtering, every remaining entry is clean HTTP/2.
        for document in &dataset.documents {
            for entry in &document.entries {
                assert!(entry.is_http2());
                assert_ne!(entry.connection, "0");
                assert!(entry.security_details.is_some());
            }
        }
    }

    #[test]
    fn clean_capture_passes_the_filter_untouched() {
        let environment = env(5);
        let mut dataset =
            ArchivePipeline::new(7).with_inconsistencies(InconsistencyConfig::none()).run(&environment);
        let before = dataset.total_entries();
        let stats = dataset.filter();
        assert_eq!(stats.dropped(), 0);
        assert_eq!(dataset.total_entries(), before);
    }

    #[test]
    fn pipeline_is_deterministic_and_parallel_safe() {
        let environment = env(8);
        let a = ArchivePipeline::new(11).run(&environment);
        let b = ArchivePipeline::new(11).with_threads(4).run(&environment);
        assert_eq!(a.documents, b.documents);
    }

    #[test]
    fn filter_statistics_merge_adds_up() {
        let mut a = FilterStatistics { http1: 3, total_entries: 10, retained_http2: 7, ..Default::default() };
        let b = FilterStatistics { http3: 2, total_entries: 5, retained_http2: 3, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.total_entries, 15);
        assert_eq!(a.retained_http2, 10);
        assert_eq!(a.http1, 3);
        assert_eq!(a.http3, 2);
        assert_eq!(a.dropped(), 5);
    }
}
