//! Converting a browser visit into a HAR document.
//!
//! This is the logging path of the HTTP Archive crawler: per request it
//! records the URL, the socket id of the HTTP/2 session that carried it, the
//! server IP and the presented certificate. Connection *end* times are not
//! recorded — which is exactly why the paper has to evaluate the
//! endless/immediate duration bounds for the HAR-based dataset.

use crate::model::{HarDocument, HarEntry, HarPage, SecurityDetails};
use netsim_browser::PageVisit;
use netsim_tls::Certificate;

/// Build the HAR document for one visit.
pub fn capture_visit(visit: &PageVisit) -> HarDocument {
    let page_id = format!("page_{}", visit.site.value());
    let page = HarPage {
        id: page_id.clone(),
        title: format!("https://{}/", visit.landing_domain),
        started_date_time: visit.started_at.as_millis(),
    };
    let entries = visit
        .requests
        .iter()
        .map(|request| {
            let connection = visit.connection(request.connection);
            let security_details = connection.map(|c| security_details_for(&c.certificate));
            HarEntry {
                pageref: page_id.clone(),
                started_date_time: request.started_at.as_millis(),
                method: "GET".to_string(),
                url: format!("https://{}{}", request.domain, request.path),
                status: request.status,
                body_size: request.body_size as i64,
                protocol: "h2".to_string(),
                server_ip_address: connection.map(|c| c.remote_ip.to_string()).unwrap_or_default(),
                connection: request.connection.value().to_string(),
                security_details,
            }
        })
        .collect();
    HarDocument { creator: "connreuse-sim 0.1".to_string(), pages: vec![page], entries }
}

fn security_details_for(certificate: &Certificate) -> SecurityDetails {
    SecurityDetails {
        subject_name: certificate.subject.to_string(),
        san_list: certificate.san.iter().map(|entry| entry.as_text()).collect(),
        issuer: certificate.issuer.organization().to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim_browser::{Browser, BrowserConfig};
    use netsim_types::{SimClock, SimRng};
    use netsim_web::{PopulationBuilder, PopulationProfile};

    fn sample_visit() -> PageVisit {
        let env = PopulationBuilder::new(PopulationProfile::archive(), 3, 5).build();
        let mut browser = Browser::new(BrowserConfig::http_archive_crawler());
        let mut clock = SimClock::new();
        let mut rng = SimRng::new(1);
        browser.load_page(&env, &env.sites[0], &mut clock, &mut rng)
    }

    #[test]
    fn capture_preserves_request_count_and_sockets() {
        let visit = sample_visit();
        let har = capture_visit(&visit);
        assert_eq!(har.entries.len(), visit.request_count());
        assert_eq!(har.pages.len(), 1);
        assert_eq!(har.landing_domain().unwrap(), visit.landing_domain);
        // Socket ids in the HAR match the connection ids of the visit.
        let distinct_sockets: std::collections::BTreeSet<&str> =
            har.entries.iter().map(|e| e.connection.as_str()).collect();
        assert_eq!(distinct_sockets.len(), visit.connection_count());
    }

    #[test]
    fn every_entry_carries_ip_and_certificate() {
        let har = capture_visit(&sample_visit());
        for entry in &har.entries {
            assert!(!entry.server_ip_address.is_empty());
            assert!(entry.is_http2());
            let details = entry.security_details.as_ref().expect("certificate recorded");
            assert!(!details.san_list.is_empty());
            assert!(!details.issuer.is_empty());
        }
    }

    #[test]
    fn capture_is_valid_json_roundtrip() {
        let har = capture_visit(&sample_visit());
        let parsed = HarDocument::from_json(&har.to_json()).unwrap();
        assert_eq!(parsed, har);
    }
}
