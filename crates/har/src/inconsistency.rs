//! Injecting the §4.3 logging inconsistencies.
//!
//! The real HTTP Archive corpus is not clean: the paper lists requests with
//! socket id 0, missing or inconsistent IPs, invalid methods/versions/
//! statuses, missing certificates, and non-HTTP/2 protocols — 69.12 M of
//! 401.63 M HTTP/2 requests were affected in some way and had to be filtered
//! conservatively. The injector reproduces those defect classes at rates
//! derived from the published counts, so the pipeline's filter step has the
//! same job (and roughly the same relative magnitudes) as the original
//! analysis.

use crate::model::HarDocument;
use netsim_types::SimRng;
use serde::{Deserialize, Serialize};

/// The defect classes of §4.3.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum InconsistencyKind {
    /// Socket / connection id logged as 0 (indistinguishable sessions).
    ZeroSocketId,
    /// Server IP missing from the entry.
    MissingIp,
    /// Invalid HTTP request method.
    InvalidMethod,
    /// Entry logged as HTTP/1 (protocol downgrade or logging artefact).
    Http1Protocol,
    /// Entry logged as HTTP/3 (socket ids are all 0 for QUIC).
    Http3Protocol,
    /// TLS certificate details missing.
    MissingCertificate,
    /// Entry references a page that does not exist in the document.
    BadPageReference,
}

impl InconsistencyKind {
    /// All defect classes.
    pub const ALL: [InconsistencyKind; 7] = [
        InconsistencyKind::ZeroSocketId,
        InconsistencyKind::MissingIp,
        InconsistencyKind::InvalidMethod,
        InconsistencyKind::Http1Protocol,
        InconsistencyKind::Http3Protocol,
        InconsistencyKind::MissingCertificate,
        InconsistencyKind::BadPageReference,
    ];
}

/// Per-class injection rates (probability per entry).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct InconsistencyConfig {
    /// Probability of a zero socket id.
    pub zero_socket_id: f64,
    /// Probability of a missing server IP.
    pub missing_ip: f64,
    /// Probability of an invalid request method.
    pub invalid_method: f64,
    /// Probability of an HTTP/1 protocol label.
    pub http1_protocol: f64,
    /// Probability of an HTTP/3 protocol label.
    pub http3_protocol: f64,
    /// Probability of missing certificate details.
    pub missing_certificate: f64,
    /// Probability of a dangling page reference.
    pub bad_page_reference: f64,
}

impl Default for InconsistencyConfig {
    fn default() -> Self {
        // Rates approximated from the §4.3 counts relative to the 401.63 M
        // HTTP/2 requests of the April 2021 corpus. HTTP/1's published count
        // (172.73 M) is relative to *all* requests, not the HTTP/2 subset;
        // it is scaled down here so that the filtered share of entries stays
        // near the paper's ~17 % of HTTP/2 requests.
        InconsistencyConfig {
            zero_socket_id: 26_930.0 / 401_630_000.0,
            missing_ip: 1_300.0 / 401_630_000.0,
            invalid_method: 67_000_000.0 / 401_630_000.0 * 0.05,
            http1_protocol: 0.08,
            http3_protocol: 0.027,
            missing_certificate: 2_220_000.0 / 401_630_000.0,
            bad_page_reference: 14.0 / 401_630_000.0,
        }
    }
}

impl InconsistencyConfig {
    /// A configuration that never injects anything (used for the "own
    /// measurement" dataset, whose NetLog capture is clean).
    pub fn none() -> Self {
        InconsistencyConfig {
            zero_socket_id: 0.0,
            missing_ip: 0.0,
            invalid_method: 0.0,
            http1_protocol: 0.0,
            http3_protocol: 0.0,
            missing_certificate: 0.0,
            bad_page_reference: 0.0,
        }
    }

    /// Apply the configuration to a document, mutating entries in place.
    pub fn apply(&self, document: &mut HarDocument, rng: &mut SimRng) {
        for entry in &mut document.entries {
            if rng.chance(self.zero_socket_id) {
                entry.connection = "0".to_string();
            }
            if rng.chance(self.missing_ip) {
                entry.server_ip_address = String::new();
            }
            if rng.chance(self.invalid_method) {
                entry.method = String::new();
            }
            if rng.chance(self.http1_protocol) {
                entry.protocol = "http/1.1".to_string();
            }
            if rng.chance(self.http3_protocol) {
                entry.protocol = "h3".to_string();
                // QUIC requests all share socket id 0 in the corpus.
                entry.connection = "0".to_string();
            }
            if rng.chance(self.missing_certificate) {
                entry.security_details = None;
            }
            if rng.chance(self.bad_page_reference) {
                entry.pageref = "page_unknown".to_string();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{HarEntry, HarPage};

    fn document(entries: usize) -> HarDocument {
        HarDocument {
            creator: "test".to_string(),
            pages: vec![HarPage {
                id: "page_1".to_string(),
                title: "https://example.com/".to_string(),
                started_date_time: 0,
            }],
            entries: (0..entries)
                .map(|i| HarEntry {
                    pageref: "page_1".to_string(),
                    started_date_time: i as u64,
                    method: "GET".to_string(),
                    url: format!("https://example.com/r{i}"),
                    status: 200,
                    body_size: 100,
                    protocol: "h2".to_string(),
                    server_ip_address: "20.0.0.1".to_string(),
                    connection: "1".to_string(),
                    security_details: None,
                })
                .collect(),
        }
    }

    #[test]
    fn none_config_changes_nothing() {
        let mut doc = document(200);
        let pristine = doc.clone();
        InconsistencyConfig::none().apply(&mut doc, &mut SimRng::new(1));
        assert_eq!(doc, pristine);
    }

    #[test]
    fn default_config_injects_roughly_expected_share() {
        let mut doc = document(20_000);
        InconsistencyConfig::default().apply(&mut doc, &mut SimRng::new(7));
        let non_h2 = doc.entries.iter().filter(|e| !e.is_http2()).count();
        let share = non_h2 as f64 / doc.entries.len() as f64;
        assert!(share > 0.05 && share < 0.20, "non-h2 share {share}");
        let zero_socket = doc.entries.iter().filter(|e| e.connection == "0").count();
        assert!(zero_socket > 0);
    }

    #[test]
    fn injection_is_deterministic_for_a_seed() {
        let mut a = document(500);
        let mut b = document(500);
        InconsistencyConfig::default().apply(&mut a, &mut SimRng::new(42));
        InconsistencyConfig::default().apply(&mut b, &mut SimRng::new(42));
        assert_eq!(a, b);
    }
}
