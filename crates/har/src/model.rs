//! The HAR document model (the subset the analysis needs).
//!
//! Field names follow the HAR 1.2 specification plus the Chrome-specific
//! `_securityDetails` / `_protocol` extensions the HTTP Archive exposes, so
//! exported JSON looks like (a trimmed-down version of) the real corpus.

use netsim_types::{DomainName, Instant};
use serde::{Deserialize, Serialize};

/// TLS details attached to an entry (Chrome's `_securityDetails`).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "camelCase")]
pub struct SecurityDetails {
    /// Certificate subject common name.
    pub subject_name: String,
    /// Subject Alternative Names (exact and wildcard entries, textual form).
    pub san_list: Vec<String>,
    /// Issuer organisation.
    pub issuer: String,
}

/// One page in the HAR log.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "camelCase")]
pub struct HarPage {
    /// Page identifier referenced by entries.
    pub id: String,
    /// Page URL.
    pub title: String,
    /// Start time (simulation milliseconds since the epoch).
    pub started_date_time: u64,
}

/// One request/response pair in the HAR log.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "camelCase")]
pub struct HarEntry {
    /// The page this entry belongs to.
    pub pageref: String,
    /// Request start time (simulation milliseconds since the epoch).
    pub started_date_time: u64,
    /// HTTP request method.
    pub method: String,
    /// Full request URL.
    pub url: String,
    /// Response status code.
    pub status: u16,
    /// Response body size in octets.
    pub body_size: i64,
    /// Negotiated protocol (`h2`, `h3`, `http/1.1`).
    #[serde(rename = "_protocol")]
    pub protocol: String,
    /// Destination address as dotted quad ("" when the logger lost it).
    #[serde(rename = "serverIPAddress")]
    pub server_ip_address: String,
    /// Socket / connection identifier ("0" when unknown, as for QUIC).
    pub connection: String,
    /// TLS details, absent for the entries §4.3 reports as lacking them.
    #[serde(rename = "_securityDetails", skip_serializing_if = "Option::is_none")]
    pub security_details: Option<SecurityDetails>,
}

impl HarEntry {
    /// The host part of the entry URL, if it parses.
    pub fn host(&self) -> Option<DomainName> {
        let rest = self.url.strip_prefix("https://").or_else(|| self.url.strip_prefix("http://"))?;
        let host = rest.split('/').next().unwrap_or(rest);
        let host = host.split(':').next().unwrap_or(host);
        DomainName::parse(host).ok()
    }

    /// The request start as a simulation [`Instant`].
    pub fn started_at(&self) -> Instant {
        Instant::from_millis(self.started_date_time)
    }

    /// `true` if the entry claims HTTP/2.
    pub fn is_http2(&self) -> bool {
        self.protocol == "h2"
    }
}

/// One HAR document: the log for one page visit.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "camelCase")]
pub struct HarDocument {
    /// Log creator, kept for fidelity with real HAR files.
    pub creator: String,
    /// Pages (the capture always has exactly one).
    pub pages: Vec<HarPage>,
    /// Entries, in request order.
    pub entries: Vec<HarEntry>,
}

impl HarDocument {
    /// The landing-page URL of the document, if present.
    pub fn landing_url(&self) -> Option<&str> {
        self.pages.first().map(|p| p.title.as_str())
    }

    /// The landing-page host, if it parses.
    pub fn landing_domain(&self) -> Option<DomainName> {
        let url = self.landing_url()?;
        let rest = url.strip_prefix("https://")?;
        DomainName::parse(rest.split('/').next().unwrap_or(rest)).ok()
    }

    /// Total wall-clock span from the page start to the last entry start —
    /// the "load time" used to pick the median of three loads.
    pub fn load_time_ms(&self) -> u64 {
        let start = self.pages.first().map(|p| p.started_date_time).unwrap_or(0);
        let last = self.entries.iter().map(|e| e.started_date_time).max().unwrap_or(start);
        last.saturating_sub(start)
    }

    /// Serialise to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("HAR documents always serialise")
    }

    /// Parse from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> HarDocument {
        HarDocument {
            creator: "connreuse-sim".to_string(),
            pages: vec![HarPage {
                id: "page_1".to_string(),
                title: "https://example.com/".to_string(),
                started_date_time: 1_000,
            }],
            entries: vec![
                HarEntry {
                    pageref: "page_1".to_string(),
                    started_date_time: 1_010,
                    method: "GET".to_string(),
                    url: "https://example.com/".to_string(),
                    status: 200,
                    body_size: 40_000,
                    protocol: "h2".to_string(),
                    server_ip_address: "20.0.0.10".to_string(),
                    connection: "1".to_string(),
                    security_details: Some(SecurityDetails {
                        subject_name: "example.com".to_string(),
                        san_list: vec!["example.com".to_string(), "www.example.com".to_string()],
                        issuer: "Let's Encrypt".to_string(),
                    }),
                },
                HarEntry {
                    pageref: "page_1".to_string(),
                    started_date_time: 1_150,
                    method: "GET".to_string(),
                    url: "https://www.google-analytics.com/analytics.js".to_string(),
                    status: 200,
                    body_size: 50_000,
                    protocol: "h2".to_string(),
                    server_ip_address: "20.0.1.11".to_string(),
                    connection: "2".to_string(),
                    security_details: None,
                },
            ],
        }
    }

    #[test]
    fn json_roundtrip() {
        let doc = sample();
        let json = doc.to_json();
        assert!(json.contains("\"_securityDetails\""));
        assert!(json.contains("\"serverIPAddress\""));
        assert!(json.contains("\"_protocol\""));
        let parsed = HarDocument::from_json(&json).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn entry_accessors() {
        let doc = sample();
        assert_eq!(doc.landing_domain().unwrap().as_str(), "example.com");
        assert_eq!(doc.load_time_ms(), 150);
        assert_eq!(doc.entries[1].host().unwrap().as_str(), "www.google-analytics.com");
        assert!(doc.entries[0].is_http2());
        assert_eq!(doc.entries[0].started_at(), Instant::from_millis(1_010));
    }

    #[test]
    fn malformed_urls_yield_no_host() {
        let mut entry = sample().entries[0].clone();
        entry.url = "not a url".to_string();
        assert!(entry.host().is_none());
    }
}
