//! Adapters from the two data sources into the observation model.
//!
//! The paper works from (1) Chromium NetLog-based captures of its own crawls
//! and (2) the HTTP Archive's HAR corpus. The simulation produces the former
//! as [`netsim_browser::PageVisit`]s and the latter as
//! [`netsim_har::HarDocument`]s; both are converted here into
//! [`SiteObservation`]s the classifier understands.

use crate::observation::{Dataset, ObservedConnection, ObservedRequest, SiteObservation};
use netsim_browser::{CrawlReport, PageVisit};
use netsim_har::{HarDataset, HarDocument};
use netsim_tls::{Issuer, SanEntry};
use netsim_types::{ConnectionId, DomainName, Instant, IpAddr};
use std::collections::BTreeMap;

/// Convert one browser visit (NetLog-grade information: exact connection
/// start and end times, certificates, per-request log) into an observation.
pub fn site_from_visit(visit: &PageVisit) -> SiteObservation {
    let connections = visit
        .connections
        .iter()
        .map(|connection| ObservedConnection {
            id: connection.id,
            initial_domain: connection.initial_origin.host,
            ip: connection.remote_ip,
            port: connection.port,
            san: connection.certificate.san.clone(),
            issuer: connection.certificate.issuer.clone(),
            established_at: connection.established_at,
            closed_at: connection.closed_at,
            requests: visit
                .requests_on(connection.id)
                .map(|request| ObservedRequest {
                    domain: request.domain,
                    status: request.status,
                    started_at: request.started_at,
                })
                .collect(),
        })
        .collect();
    SiteObservation { site: visit.landing_domain, connections }
}

/// Convert a whole crawl into a dataset.
pub fn dataset_from_crawl(report: &CrawlReport) -> Dataset {
    Dataset::new(&report.label, report.visits.iter().map(site_from_visit).collect())
}

/// Convert one (already filtered) HAR document into an observation.
///
/// HAR entries carry only request-level data, so connections are
/// reconstructed by grouping entries on their socket id: the earliest entry
/// supplies the initial domain and the establishment time, the first entry
/// with certificate details supplies the SAN list and issuer, and the close
/// time is unknown (the duration models bracket it). Returns `None` when the
/// document has no parsable landing page.
pub fn site_from_har_document(document: &HarDocument) -> Option<SiteObservation> {
    let site = document.landing_domain()?;
    let mut groups: BTreeMap<u64, Vec<&netsim_har::HarEntry>> = BTreeMap::new();
    for entry in &document.entries {
        if !entry.is_http2() {
            continue;
        }
        let Ok(socket) = entry.connection.parse::<u64>() else { continue };
        if socket == 0 {
            continue;
        }
        groups.entry(socket).or_default().push(entry);
    }
    let mut connections = Vec::with_capacity(groups.len());
    for (socket, mut entries) in groups {
        entries.sort_by_key(|e| e.started_date_time);
        let first = entries[0];
        let Some(initial_domain) = first.host() else { continue };
        let Ok(ip) = first.server_ip_address.parse::<IpAddr>() else { continue };
        let Some(details) = entries.iter().find_map(|e| e.security_details.as_ref()) else { continue };
        let san: Vec<SanEntry> = details.san_list.iter().filter_map(|s| SanEntry::parse(s)).collect();
        let requests: Vec<ObservedRequest> = entries
            .iter()
            .filter_map(|entry| {
                entry.host().map(|domain| ObservedRequest {
                    domain,
                    status: entry.status,
                    started_at: entry.started_at(),
                })
            })
            .collect();
        connections.push(ObservedConnection {
            id: ConnectionId(socket),
            initial_domain,
            ip,
            port: 443,
            san,
            issuer: Issuer::named(&details.issuer),
            established_at: Instant::from_millis(first.started_date_time),
            closed_at: None,
            requests,
        });
    }
    Some(SiteObservation { site, connections })
}

/// Convert a HAR corpus into a dataset labelled `label`.
pub fn dataset_from_har(dataset: &HarDataset, label: &str) -> Dataset {
    Dataset::new(label, dataset.documents.iter().filter_map(site_from_har_document).collect())
}

/// Convenience for tests and examples: the landing domains of a dataset.
pub fn site_domains(dataset: &Dataset) -> Vec<DomainName> {
    dataset.sites.iter().map(|s| s.site).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim_browser::{Browser, BrowserConfig, Crawler};
    use netsim_har::ArchivePipeline;
    use netsim_types::{SimClock, SimRng};
    use netsim_web::{PopulationBuilder, PopulationProfile, WebEnvironment};

    fn environment() -> WebEnvironment {
        PopulationBuilder::new(PopulationProfile::alexa(), 6, 17).build()
    }

    #[test]
    fn visit_ingestion_preserves_structure() {
        let env = environment();
        let mut browser = Browser::new(BrowserConfig::alexa_measurement());
        let mut clock = SimClock::new();
        let mut rng = SimRng::new(1);
        let visit = browser.load_page(&env, &env.sites[0], &mut clock, &mut rng);
        let observation = site_from_visit(&visit);
        assert_eq!(observation.site, env.sites[0].domain);
        assert_eq!(observation.connection_count(), visit.connection_count());
        assert_eq!(observation.request_count(), visit.request_count());
        for connection in &observation.connections {
            assert!(!connection.san.is_empty());
            assert!(!connection.requests.is_empty());
            assert!(connection.covers(&connection.initial_domain));
        }
    }

    #[test]
    fn crawl_ingestion_builds_a_dataset() {
        let env = environment();
        let report = Crawler::new("alexa", BrowserConfig::alexa_measurement(), 3).crawl(&env);
        let dataset = dataset_from_crawl(&report);
        assert_eq!(dataset.label, "alexa");
        assert_eq!(dataset.sites.len(), env.sites.len());
        assert_eq!(dataset.total_connections(), report.total_connections());
        assert_eq!(site_domains(&dataset).len(), env.sites.len());
    }

    #[test]
    fn har_ingestion_matches_visit_ingestion_when_clean() {
        // With no injected defects and the same browser configuration, the
        // HAR path reconstructs the same connection structure as the NetLog
        // path (minus end times, which HAR cannot carry).
        let env = environment();
        let config = BrowserConfig::http_archive_crawler();
        let report = Crawler::new("har", config.clone(), 5).crawl(&env);
        let netlog_dataset = dataset_from_crawl(&report);

        let mut har = ArchivePipeline::new(5)
            .with_config(config)
            .with_inconsistencies(netsim_har::InconsistencyConfig::none())
            .run(&env);
        har.filter();
        let har_dataset = dataset_from_har(&har, "har");

        assert_eq!(har_dataset.sites.len(), netlog_dataset.sites.len());
        for (har_site, netlog_site) in har_dataset.sites.iter().zip(netlog_dataset.sites.iter()) {
            assert_eq!(har_site.site, netlog_site.site);
            assert_eq!(har_site.connection_count(), netlog_site.connection_count());
            assert_eq!(har_site.request_count(), netlog_site.request_count());
        }
    }

    #[test]
    fn har_ingestion_skips_unusable_groups() {
        let env = environment();
        let mut har = ArchivePipeline::new(9).run(&env);
        har.filter();
        let dataset = dataset_from_har(&har, "har");
        for site in &dataset.sites {
            for connection in &site.connections {
                assert_ne!(connection.id, ConnectionId(0));
                assert!(!connection.san.is_empty());
            }
        }
    }
}
