//! The redundancy classifier (§4.1 of the paper).

use crate::observation::{Dataset, DurationModel, SiteObservation};
use netsim_types::DomainName;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// The root causes a redundant connection can be attributed to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Cause {
    /// Same IP, certificate does not cover the domain: domain sharding with
    /// disjunct certificates.
    Cert,
    /// Different IP, certificate covers the domain: DNS load balancing /
    /// genuinely distributed hosting of SAN-covered domains.
    Ip,
    /// Same IP and SAN-covered (or same initial domain on different IPs):
    /// reuse was possible but the Fetch credentials partition refused it.
    Cred,
}

impl Cause {
    /// All causes in table order (CERT, IP, CRED — the row order of Table 1).
    pub const ALL: [Cause; 3] = [Cause::Cert, Cause::Ip, Cause::Cred];

    /// The cause's position in [`Cause::ALL`] — the index used by the
    /// array-backed aggregation hot path.
    pub const fn index(self) -> usize {
        match self {
            Cause::Cert => 0,
            Cause::Ip => 1,
            Cause::Cred => 2,
        }
    }

    /// The label used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            Cause::Cert => "CERT",
            Cause::Ip => "IP",
            Cause::Cred => "CRED",
        }
    }
}

impl std::fmt::Display for Cause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One connection after classification.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassifiedConnection {
    /// Index of the connection within the site observation.
    pub index: usize,
    /// The connection's initial domain (its origin in the attribution
    /// tables).
    pub origin: DomainName,
    /// Causes and, per cause, the indices of the earlier connections that
    /// could have carried the traffic.
    pub causes: BTreeMap<Cause, Vec<usize>>,
    /// `true` if the server had excluded the domain via HTTP 421 (such
    /// connections are ignored by the redundancy analysis).
    pub excluded: bool,
}

impl ClassifiedConnection {
    /// `true` if at least one cause applies.
    pub fn is_redundant(&self) -> bool {
        !self.excluded && !self.causes.is_empty()
    }

    /// `true` if the given cause applies.
    pub fn has_cause(&self, cause: Cause) -> bool {
        self.causes.contains_key(&cause)
    }

    /// The earlier-connection indices recorded for a cause.
    pub fn previous_for(&self, cause: Cause) -> &[usize] {
        self.causes.get(&cause).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// The classification of one site.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteClassification {
    /// The site's landing domain.
    pub site: DomainName,
    /// Total HTTP/2 connections observed.
    pub total_connections: usize,
    /// Per-connection classification, in establishment order.
    pub connections: Vec<ClassifiedConnection>,
}

impl SiteClassification {
    /// Number of redundant connections.
    pub fn redundant_connections(&self) -> usize {
        self.connections.iter().filter(|c| c.is_redundant()).count()
    }

    /// Number of connections carrying the given cause.
    pub fn connections_with_cause(&self, cause: Cause) -> usize {
        self.connections.iter().filter(|c| c.has_cause(cause)).count()
    }

    /// `true` if any connection carries the given cause.
    pub fn affected_by(&self, cause: Cause) -> bool {
        self.connections_with_cause(cause) > 0
    }

    /// `true` if the site opened at least one redundant connection.
    pub fn has_redundancy(&self) -> bool {
        self.redundant_connections() > 0
    }
}

/// Classify one site's observed connections under a duration model.
pub fn classify_site(site: &SiteObservation, model: DurationModel) -> SiteClassification {
    // Establishment order: by start time, ties broken by id for determinism.
    let mut order: Vec<usize> = (0..site.connections.len()).collect();
    order.sort_by_key(|&i| (site.connections[i].established_at, site.connections[i].id));

    // Domains the servers explicitly excluded via HTTP 421 anywhere on the
    // site: connections for them are ignored (§4.1 / §4.3).
    let excluded_domains: BTreeSet<&DomainName> = site
        .connections
        .iter()
        .flat_map(|c| c.requests.iter())
        .filter(|r| r.status == 421)
        .map(|r| &r.domain)
        .collect();

    let mut classified = Vec::with_capacity(order.len());
    for (position, &index) in order.iter().enumerate() {
        let connection = &site.connections[index];
        if excluded_domains.contains(&connection.initial_domain) {
            classified.push(ClassifiedConnection {
                index,
                origin: connection.initial_domain,
                causes: BTreeMap::new(),
                excluded: true,
            });
            continue;
        }
        let mut causes: BTreeMap<Cause, Vec<usize>> = BTreeMap::new();
        for &previous_index in &order[..position] {
            let previous = &site.connections[previous_index];
            if previous.port != connection.port {
                continue;
            }
            if !previous.open_at(connection.established_at, model) {
                continue;
            }
            let covers = previous.covers(&connection.initial_domain);
            let cause = if previous.ip == connection.ip {
                if covers {
                    Some(Cause::Cred)
                } else {
                    Some(Cause::Cert)
                }
            } else if previous.initial_domain == connection.initial_domain {
                // Same-initial-domain on different IPs: only happens when the
                // credentials partition forbade reuse and DNS announced
                // several addresses — counted as CRED, not IP (§4.1).
                Some(Cause::Cred)
            } else if covers {
                Some(Cause::Ip)
            } else {
                None
            };
            if let Some(cause) = cause {
                causes.entry(cause).or_default().push(previous_index);
            }
        }
        classified.push(ClassifiedConnection {
            index,
            origin: connection.initial_domain,
            causes,
            excluded: false,
        });
    }

    SiteClassification { site: site.site, total_connections: site.connections.len(), connections: classified }
}

/// Classify every site of a dataset. The result is aligned index-by-index
/// with `dataset.sites`; sites without any HTTP/2 connection yield an empty
/// classification (they are excluded from aggregate totals downstream).
pub fn classify_dataset(dataset: &Dataset, model: DurationModel) -> Vec<SiteClassification> {
    dataset.sites.iter().map(|s| classify_site(s, model)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::{ObservedConnection, ObservedRequest};
    use netsim_tls::{Issuer, SanEntry};
    use netsim_types::{ConnectionId, Instant, IpAddr};

    fn d(s: &str) -> DomainName {
        DomainName::literal(s)
    }

    fn conn(id: u64, domain: &str, ip: IpAddr, san: &[&str], start_ms: u64) -> ObservedConnection {
        ObservedConnection {
            id: ConnectionId(id),
            initial_domain: d(domain),
            ip,
            port: 443,
            san: san.iter().map(|s| SanEntry::parse(s).unwrap()).collect(),
            issuer: Issuer::lets_encrypt(),
            established_at: Instant::from_millis(start_ms),
            closed_at: None,
            requests: vec![ObservedRequest {
                domain: d(domain),
                status: 200,
                started_at: Instant::from_millis(start_ms + 1),
            }],
        }
    }

    fn site(connections: Vec<ObservedConnection>) -> SiteObservation {
        SiteObservation { site: d("example.com"), connections }
    }

    const IP_A: IpAddr = IpAddr::new(10, 0, 0, 1);
    const IP_B: IpAddr = IpAddr::new(10, 0, 0, 2);

    #[test]
    fn single_connection_is_never_redundant() {
        let s = site(vec![conn(1, "example.com", IP_A, &["example.com"], 0)]);
        let result = classify_site(&s, DurationModel::Endless);
        assert_eq!(result.redundant_connections(), 0);
        assert!(!result.has_redundancy());
        assert_eq!(result.total_connections, 1);
    }

    #[test]
    fn cred_cause_same_ip_covered() {
        let s = site(vec![
            conn(1, "fonts.googleapis.com", IP_A, &["fonts.googleapis.com", "ajax.googleapis.com"], 0),
            conn(2, "ajax.googleapis.com", IP_A, &["fonts.googleapis.com", "ajax.googleapis.com"], 100),
        ]);
        let result = classify_site(&s, DurationModel::Endless);
        assert_eq!(result.connections_with_cause(Cause::Cred), 1);
        assert_eq!(result.connections_with_cause(Cause::Cert), 0);
        assert_eq!(result.connections_with_cause(Cause::Ip), 0);
        assert_eq!(result.redundant_connections(), 1);
        assert_eq!(result.connections[1].previous_for(Cause::Cred), &[0]);
    }

    #[test]
    fn cert_cause_same_ip_not_covered() {
        let s = site(vec![
            conn(1, "static.klaviyo.com", IP_A, &["static.klaviyo.com"], 0),
            conn(2, "fast.a.klaviyo.com", IP_A, &["fast.a.klaviyo.com"], 100),
        ]);
        let result = classify_site(&s, DurationModel::Endless);
        assert_eq!(result.connections_with_cause(Cause::Cert), 1);
        assert!(result.affected_by(Cause::Cert));
        assert!(!result.affected_by(Cause::Ip));
    }

    #[test]
    fn ip_cause_different_ip_covered() {
        let shared_san = &["www.googletagmanager.com", "www.google-analytics.com"];
        let s = site(vec![
            conn(1, "www.googletagmanager.com", IP_A, shared_san, 0),
            conn(2, "www.google-analytics.com", IP_B, shared_san, 100),
        ]);
        let result = classify_site(&s, DurationModel::Endless);
        assert_eq!(result.connections_with_cause(Cause::Ip), 1);
        assert_eq!(result.redundant_connections(), 1);
    }

    #[test]
    fn unknown_third_party_is_not_redundant() {
        let s = site(vec![
            conn(1, "example.com", IP_A, &["example.com"], 0),
            conn(2, "tracker.example.net", IP_B, &["tracker.example.net"], 100),
        ]);
        let result = classify_site(&s, DurationModel::Endless);
        assert_eq!(result.redundant_connections(), 0);
    }

    #[test]
    fn same_domain_different_ip_is_cred_corner_case() {
        let s = site(vec![
            conn(1, "www.google-analytics.com", IP_A, &["www.google-analytics.com"], 0),
            conn(2, "www.google-analytics.com", IP_B, &["www.google-analytics.com"], 100),
        ]);
        let result = classify_site(&s, DurationModel::Endless);
        assert_eq!(result.connections_with_cause(Cause::Cred), 1);
        assert_eq!(result.connections_with_cause(Cause::Ip), 0, "corner case must not count as IP");
    }

    #[test]
    fn http_421_exclusion_suppresses_classification() {
        let mut excluded = conn(2, "api.example.com", IP_A, &["api.example.com"], 100);
        excluded.requests[0].status = 421;
        let s = site(vec![conn(1, "example.com", IP_A, &["example.com", "api.example.com"], 0), excluded]);
        let result = classify_site(&s, DurationModel::Endless);
        assert_eq!(result.redundant_connections(), 0);
        assert!(result.connections[1].excluded);
        assert!(!result.connections[1].is_redundant());
    }

    #[test]
    fn immediate_model_forgets_closed_connections() {
        // First connection's last request is at t=1ms; the second connection
        // opens at t=60s. Under the immediate model the first is gone.
        let shared = &["a.example.com", "b.example.com"];
        let s = site(vec![
            conn(1, "a.example.com", IP_A, shared, 0),
            conn(2, "b.example.com", IP_A, shared, 60_000),
        ]);
        let endless = classify_site(&s, DurationModel::Endless);
        let immediate = classify_site(&s, DurationModel::Immediate);
        assert_eq!(endless.redundant_connections(), 1);
        assert_eq!(immediate.redundant_connections(), 0);
    }

    #[test]
    fn recorded_model_uses_close_times() {
        let shared = &["a.example.com", "b.example.com"];
        let mut first = conn(1, "a.example.com", IP_A, shared, 0);
        first.closed_at = Some(Instant::from_millis(30_000));
        let s = site(vec![first, conn(2, "b.example.com", IP_A, shared, 60_000)]);
        let recorded = classify_site(&s, DurationModel::Recorded);
        assert_eq!(recorded.redundant_connections(), 0);
        let endless = classify_site(&s, DurationModel::Endless);
        assert_eq!(endless.redundant_connections(), 1);
    }

    #[test]
    fn paper_worked_example_multi_cause_counts() {
        // Four successively opened same-IP connections; #1/#3 use cert A
        // (covering a.example.com), #2/#4 use cert B (covering b.example.com).
        // Expected (§4.1): three redundant connections, CERT counted for
        // three of them, CRED for two.
        let s = site(vec![
            conn(1, "a.example.com", IP_A, &["a.example.com"], 0),
            conn(2, "b.example.com", IP_A, &["b.example.com"], 100),
            conn(3, "a.example.com", IP_A, &["a.example.com"], 200),
            conn(4, "b.example.com", IP_A, &["b.example.com"], 300),
        ]);
        let result = classify_site(&s, DurationModel::Endless);
        assert_eq!(result.redundant_connections(), 3);
        assert_eq!(result.connections_with_cause(Cause::Cert), 3);
        assert_eq!(result.connections_with_cause(Cause::Cred), 2);
        assert_eq!(result.connections_with_cause(Cause::Ip), 0);
        // #4 is CERT-redundant to #1 and #3, CRED-redundant to #2.
        let fourth = &result.connections[3];
        assert_eq!(fourth.previous_for(Cause::Cert).len(), 2);
        assert_eq!(fourth.previous_for(Cause::Cred).len(), 1);
    }

    #[test]
    fn classify_dataset_is_aligned_with_sites() {
        let dataset = Dataset::new(
            "test",
            vec![
                site(vec![conn(1, "example.com", IP_A, &["example.com"], 0)]),
                SiteObservation { site: d("empty.com"), connections: vec![] },
            ],
        );
        let results = classify_dataset(&dataset, DurationModel::Endless);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].total_connections, 1);
        assert_eq!(results[1].total_connections, 0);
        assert_eq!(results[1].site, d("empty.com"));
    }
}
