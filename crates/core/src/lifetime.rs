//! Connection-lifetime statistics (§5.1).
//!
//! The paper reports that connections in the own measurement are long-lived:
//! only 3.5 % close before the test ends, and those that do have a median
//! lifetime of 122.2 s — which is why the endless and recorded duration
//! models give nearly identical redundancy counts.

use crate::observation::Dataset;
use netsim_types::Duration;
use serde::{Deserialize, Serialize};

/// Aggregate lifetime statistics for a dataset.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LifetimeStatistics {
    /// Total observed connections.
    pub total_connections: usize,
    /// Connections with a recorded close time.
    pub closed_connections: usize,
    /// Median lifetime of the closed connections (None when none closed).
    pub median_lifetime: Option<Duration>,
}

impl LifetimeStatistics {
    /// Fraction of connections that closed before the measurement ended.
    pub fn closed_share(&self) -> f64 {
        if self.total_connections == 0 {
            0.0
        } else {
            self.closed_connections as f64 / self.total_connections as f64
        }
    }
}

/// Compute lifetime statistics over every connection of a dataset.
pub fn lifetime_statistics(dataset: &Dataset) -> LifetimeStatistics {
    let mut lifetimes: Vec<Duration> = Vec::new();
    let mut total = 0usize;
    for site in &dataset.sites {
        for connection in &site.connections {
            total += 1;
            if let Some(lifetime) = connection.lifetime() {
                lifetimes.push(lifetime);
            }
        }
    }
    lifetimes.sort_unstable();
    let median = if lifetimes.is_empty() { None } else { Some(lifetimes[lifetimes.len() / 2]) };
    LifetimeStatistics {
        total_connections: total,
        closed_connections: lifetimes.len(),
        median_lifetime: median,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::{ObservedConnection, SiteObservation};
    use netsim_tls::{Issuer, SanEntry};
    use netsim_types::{ConnectionId, DomainName, Instant, IpAddr};

    fn conn(id: u64, closed_ms: Option<u64>) -> ObservedConnection {
        ObservedConnection {
            id: ConnectionId(id),
            initial_domain: DomainName::literal("example.com"),
            ip: IpAddr::new(10, 0, 0, 1),
            port: 443,
            san: vec![SanEntry::Dns(DomainName::literal("example.com"))],
            issuer: Issuer::lets_encrypt(),
            established_at: Instant::EPOCH,
            closed_at: closed_ms.map(Instant::from_millis),
            requests: vec![],
        }
    }

    #[test]
    fn statistics_over_mixed_lifetimes() {
        let dataset = Dataset::new(
            "test",
            vec![SiteObservation {
                site: DomainName::literal("example.com"),
                connections: vec![
                    conn(1, None),
                    conn(2, Some(100_000)),
                    conn(3, Some(122_000)),
                    conn(4, Some(180_000)),
                    conn(5, None),
                ],
            }],
        );
        let stats = lifetime_statistics(&dataset);
        assert_eq!(stats.total_connections, 5);
        assert_eq!(stats.closed_connections, 3);
        assert!((stats.closed_share() - 0.6).abs() < 1e-9);
        assert_eq!(stats.median_lifetime, Some(Duration::from_millis(122_000)));
    }

    #[test]
    fn empty_dataset_yields_zeroes() {
        let stats = lifetime_statistics(&Dataset::new("empty", vec![]));
        assert_eq!(stats.total_connections, 0);
        assert_eq!(stats.closed_share(), 0.0);
        assert_eq!(stats.median_lifetime, None);
    }
}
