//! # connreuse-core
//!
//! The paper's primary contribution: a method to detect **redundant HTTP/2
//! connections** in browser traces and attribute each one to the root cause
//! that defeated RFC 7540 Connection Reuse.
//!
//! Given an observed page load — the set of HTTP/2 sessions with their
//! destination IPs, certificates and request logs — the classifier
//! ([`classify`]) walks the sessions in establishment order and, for every
//! session, checks each earlier session that was still open:
//!
//! * same IP, certificate covers the new session's domain → the connection
//!   *could* have been reused; the browser refused for Fetch-credentials
//!   reasons → cause **CRED**,
//! * same IP, certificate does **not** cover the domain → domain sharding
//!   with disjunct certificates → cause **CERT**,
//! * different IP, certificate covers the domain → DNS gave a different
//!   address for a co-hosted domain → cause **IP**,
//! * different IP, certificate does not cover → an unavoidable third-party
//!   connection (not counted),
//! * same initial domain on different IPs → the corner case of §4.1, counted
//!   as **CRED** (it only happens when the credentials partition forbids
//!   reuse and DNS announces several addresses),
//! * domains the server excluded via HTTP 421 are ignored entirely.
//!
//! A session can carry several causes at once (the paper's worked example in
//! §4.1), so per-cause counts may exceed the number of redundant sessions.
//!
//! The surrounding modules turn classifications into the paper's published
//! artifacts: [`aggregate`] produces the Table 1 cause counts, [`report`] the
//! Figure 2 distribution, [`attribution`] Tables 2–6 and 12, [`overlap`]
//! Tables 7–10, [`lifetime`] the §5.1 connection-lifetime statistics, and
//! [`ingest`] adapts both data sources (NetLog-style browser visits and
//! HTTP-Archive HAR corpora) into the common [`observation`] model.

// The interned-id migration made `DomainName`/`Origin` copyable; keep the
// hot ingest/attribution/classify paths free of the clone storm for good.
#![deny(clippy::redundant_clone)]
#![deny(clippy::clone_on_copy)]

pub mod aggregate;
pub mod attribution;
pub mod classify;
pub mod fastpath;
pub mod ingest;
pub mod lifetime;
pub mod observation;
pub mod overlap;
pub mod report;

pub use aggregate::{Accumulator, AccumulatorState, CauseCounts, DatasetSummary, SiteCounts};
pub use classify::{classify_dataset, classify_site, Cause, ClassifiedConnection, SiteClassification};
pub use fastpath::FastVisitClassifier;
pub use ingest::{dataset_from_crawl, dataset_from_har, site_from_har_document, site_from_visit};
pub use observation::{Dataset, DurationModel, ObservedConnection, ObservedRequest, SiteObservation};
pub use report::CdfSeries;
