//! Attribution tables: which origins, certificate issuers, domains and
//! autonomous systems are behind the redundant connections (Tables 2–6, 8–10
//! and 12 of the paper).

use crate::classify::{Cause, SiteClassification};
use crate::observation::Dataset;
use netsim_asdb::{AsRegistry, AutonomousSystem};
use netsim_tls::Issuer;
use netsim_types::DomainName;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// One row of an origin table (Tables 2, 8 and 12): an origin, how many of
/// its connections were redundant with the given cause, and which earlier
/// connections' origins could have carried them.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct OriginAttribution {
    /// The redundant connection's origin domain.
    pub origin: DomainName,
    /// Number of redundant connections with this origin.
    pub connections: usize,
    /// Previous (reusable) origins with how many of the redundant connections
    /// each could have served, most frequent first.
    pub previous: Vec<(DomainName, usize)>,
}

impl OriginAttribution {
    /// The most frequent previous origin, if any.
    pub fn top_previous(&self) -> Option<&(DomainName, usize)> {
        self.previous.first()
    }
}

/// One row of an issuer table (Tables 3, 5 and 9).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct IssuerAttribution {
    /// Certificate issuer organisation.
    pub issuer: Issuer,
    /// Number of (redundant or total, depending on the table) connections
    /// whose certificate this issuer signed.
    pub connections: usize,
    /// Number of distinct origin domains among those connections.
    pub unique_domains: usize,
}

/// One row of the CERT domain table (Tables 4 and 10).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CertDomainAttribution {
    /// The redundant connection's domain.
    pub domain: DomainName,
    /// Number of CERT-redundant connections for the domain.
    pub connections: usize,
    /// Previous connections' origins (with counts), most frequent first.
    pub previous: Vec<(DomainName, usize)>,
    /// Issuer of the redundant connection's certificate.
    pub issuer: Issuer,
}

/// One row of the AS table (Table 6).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsnAttribution {
    /// The autonomous system announcing the redundant connections' prefixes.
    pub system: AutonomousSystem,
    /// Number of IP-cause redundant connections landing in this AS.
    pub connections: usize,
    /// Number of distinct origin domains among them.
    pub unique_domains: usize,
}

/// Pair each site observation with its classification. Callers produce the
/// classifications with [`crate::classify::classify_dataset`], which keeps
/// them index-aligned with `dataset.sites`.
fn zipped<'a>(
    dataset: &'a Dataset,
    classifications: &'a [SiteClassification],
) -> impl Iterator<Item = (&'a crate::observation::SiteObservation, &'a SiteClassification)> {
    dataset.sites.iter().zip(classifications.iter())
}

/// Top origins for connections redundant with `cause` (Table 2 uses
/// `Cause::Ip`; Table 12 is the same with a larger `limit`).
pub fn top_origins_for_cause(
    dataset: &Dataset,
    classifications: &[SiteClassification],
    cause: Cause,
    limit: usize,
) -> Vec<OriginAttribution> {
    let mut connections_per_origin: BTreeMap<DomainName, usize> = BTreeMap::new();
    let mut previous_per_origin: BTreeMap<DomainName, BTreeMap<DomainName, usize>> = BTreeMap::new();
    for (observation, classification) in zipped(dataset, classifications) {
        for connection in &classification.connections {
            let previous_indices = connection.previous_for(cause);
            if previous_indices.is_empty() {
                continue;
            }
            *connections_per_origin.entry(connection.origin).or_default() += 1;
            let mut seen: BTreeSet<&DomainName> = BTreeSet::new();
            for &previous_index in previous_indices {
                let previous_domain = &observation.connections[previous_index].initial_domain;
                if seen.insert(previous_domain) {
                    *previous_per_origin
                        .entry(connection.origin)
                        .or_default()
                        .entry(*previous_domain)
                        .or_default() += 1;
                }
            }
        }
    }
    let mut rows: Vec<OriginAttribution> = connections_per_origin
        .into_iter()
        .map(|(origin, connections)| {
            let mut previous: Vec<(DomainName, usize)> =
                previous_per_origin.remove(&origin).unwrap_or_default().into_iter().collect();
            previous.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            OriginAttribution { origin, connections, previous }
        })
        .collect();
    rows.sort_by(|a, b| b.connections.cmp(&a.connections).then_with(|| a.origin.cmp(&b.origin)));
    rows.truncate(limit);
    rows
}

/// Issuers of the certificates presented on CERT-redundant connections
/// (Tables 3 and 9).
pub fn cert_issuers(
    dataset: &Dataset,
    classifications: &[SiteClassification],
    limit: usize,
) -> Vec<IssuerAttribution> {
    let mut connections: BTreeMap<Issuer, usize> = BTreeMap::new();
    let mut domains: BTreeMap<Issuer, BTreeSet<DomainName>> = BTreeMap::new();
    for (observation, classification) in zipped(dataset, classifications) {
        for connection in &classification.connections {
            if !connection.has_cause(Cause::Cert) {
                continue;
            }
            let issuer = observation.connections[connection.index].issuer.clone();
            *connections.entry(issuer.clone()).or_default() += 1;
            domains.entry(issuer).or_default().insert(connection.origin);
        }
    }
    collect_issuer_rows(connections, domains, limit)
}

/// Issuer share over *all* observed connections (Table 5).
pub fn issuer_share(dataset: &Dataset, limit: usize) -> Vec<IssuerAttribution> {
    let mut connections: BTreeMap<Issuer, usize> = BTreeMap::new();
    let mut domains: BTreeMap<Issuer, BTreeSet<DomainName>> = BTreeMap::new();
    for site in &dataset.sites {
        for connection in &site.connections {
            *connections.entry(connection.issuer.clone()).or_default() += 1;
            domains.entry(connection.issuer.clone()).or_default().insert(connection.initial_domain);
        }
    }
    collect_issuer_rows(connections, domains, limit)
}

fn collect_issuer_rows(
    connections: BTreeMap<Issuer, usize>,
    mut domains: BTreeMap<Issuer, BTreeSet<DomainName>>,
    limit: usize,
) -> Vec<IssuerAttribution> {
    let mut rows: Vec<IssuerAttribution> = connections
        .into_iter()
        .map(|(issuer, connections)| {
            let unique_domains = domains.remove(&issuer).map(|set| set.len()).unwrap_or(0);
            IssuerAttribution { issuer, connections, unique_domains }
        })
        .collect();
    rows.sort_by(|a, b| b.connections.cmp(&a.connections).then_with(|| a.issuer.cmp(&b.issuer)));
    rows.truncate(limit);
    rows
}

/// Domains of CERT-redundant connections with their reusable previous
/// origins and issuers (Tables 4 and 10).
pub fn cert_domains(
    dataset: &Dataset,
    classifications: &[SiteClassification],
    limit: usize,
) -> Vec<CertDomainAttribution> {
    let mut connections: BTreeMap<DomainName, usize> = BTreeMap::new();
    let mut previous: BTreeMap<DomainName, BTreeMap<DomainName, usize>> = BTreeMap::new();
    let mut issuers: BTreeMap<DomainName, Issuer> = BTreeMap::new();
    for (observation, classification) in zipped(dataset, classifications) {
        for connection in &classification.connections {
            let cert_previous = connection.previous_for(Cause::Cert);
            if cert_previous.is_empty() {
                continue;
            }
            *connections.entry(connection.origin).or_default() += 1;
            issuers
                .entry(connection.origin)
                .or_insert_with(|| observation.connections[connection.index].issuer.clone());
            let mut seen: BTreeSet<&DomainName> = BTreeSet::new();
            for &previous_index in cert_previous {
                let previous_domain = &observation.connections[previous_index].initial_domain;
                if seen.insert(previous_domain) {
                    *previous.entry(connection.origin).or_default().entry(*previous_domain).or_default() += 1;
                }
            }
        }
    }
    let mut rows: Vec<CertDomainAttribution> = connections
        .into_iter()
        .map(|(domain, count)| {
            let mut prev: Vec<(DomainName, usize)> =
                previous.remove(&domain).unwrap_or_default().into_iter().collect();
            prev.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            let issuer = issuers.remove(&domain).unwrap_or_else(|| Issuer::named("Unknown"));
            CertDomainAttribution { domain, connections: count, previous: prev, issuer }
        })
        .collect();
    rows.sort_by(|a, b| b.connections.cmp(&a.connections).then_with(|| a.domain.cmp(&b.domain)));
    rows.truncate(limit);
    rows
}

/// Autonomous systems hosting the destinations of IP-cause redundant
/// connections (Table 6).
pub fn asn_for_ip_cause(
    dataset: &Dataset,
    classifications: &[SiteClassification],
    registry: &AsRegistry,
    limit: usize,
) -> Vec<AsnAttribution> {
    let mut connections: BTreeMap<AutonomousSystem, usize> = BTreeMap::new();
    let mut domains: BTreeMap<AutonomousSystem, BTreeSet<DomainName>> = BTreeMap::new();
    for (observation, classification) in zipped(dataset, classifications) {
        for connection in &classification.connections {
            if !connection.has_cause(Cause::Ip) {
                continue;
            }
            let ip = observation.connections[connection.index].ip;
            let Some(system) = registry.lookup(ip) else { continue };
            *connections.entry(system.clone()).or_default() += 1;
            domains.entry(system.clone()).or_default().insert(connection.origin);
        }
    }
    let mut rows: Vec<AsnAttribution> = connections
        .into_iter()
        .map(|(system, count)| {
            let unique_domains = domains.remove(&system).map(|set| set.len()).unwrap_or(0);
            AsnAttribution { system, connections: count, unique_domains }
        })
        .collect();
    rows.sort_by(|a, b| b.connections.cmp(&a.connections).then_with(|| a.system.name.cmp(&b.system.name)));
    rows.truncate(limit);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify_dataset;
    use crate::observation::{DurationModel, ObservedConnection, ObservedRequest, SiteObservation};
    use netsim_tls::SanEntry;
    use netsim_types::{ConnectionId, Instant, IpAddr};

    fn d(s: &str) -> DomainName {
        DomainName::literal(s)
    }

    fn conn(
        id: u64,
        domain: &str,
        ip: IpAddr,
        san: &[&str],
        issuer: Issuer,
        start: u64,
    ) -> ObservedConnection {
        ObservedConnection {
            id: ConnectionId(id),
            initial_domain: d(domain),
            ip,
            port: 443,
            san: san.iter().map(|s| SanEntry::parse(s).unwrap()).collect(),
            issuer,
            established_at: Instant::from_millis(start),
            closed_at: None,
            requests: vec![ObservedRequest {
                domain: d(domain),
                status: 200,
                started_at: Instant::from_millis(start),
            }],
        }
    }

    fn analytics_site(ip_a: IpAddr, ip_b: IpAddr) -> SiteObservation {
        let shared = &["www.googletagmanager.com", "www.google-analytics.com"];
        SiteObservation {
            site: d("example.com"),
            connections: vec![
                conn(1, "example.com", IpAddr::new(50, 0, 0, 1), &["example.com"], Issuer::lets_encrypt(), 0),
                conn(2, "www.googletagmanager.com", ip_a, shared, Issuer::google_trust_services(), 100),
                conn(3, "www.google-analytics.com", ip_b, shared, Issuer::google_trust_services(), 200),
            ],
        }
    }

    fn klaviyo_site() -> SiteObservation {
        let ip = IpAddr::new(60, 0, 0, 1);
        SiteObservation {
            site: d("shop.example"),
            connections: vec![
                conn(1, "static.klaviyo.com", ip, &["static.klaviyo.com"], Issuer::lets_encrypt(), 0),
                conn(2, "fast.a.klaviyo.com", ip, &["fast.a.klaviyo.com"], Issuer::lets_encrypt(), 100),
            ],
        }
    }

    fn dataset() -> Dataset {
        Dataset::new(
            "test",
            vec![
                analytics_site(IpAddr::new(142, 250, 74, 1), IpAddr::new(142, 250, 74, 2)),
                analytics_site(IpAddr::new(142, 250, 74, 3), IpAddr::new(142, 250, 74, 4)),
                klaviyo_site(),
            ],
        )
    }

    #[test]
    fn ip_origin_attribution_names_analytics() {
        let data = dataset();
        let classifications = classify_dataset(&data, DurationModel::Endless);
        let rows = top_origins_for_cause(&data, &classifications, Cause::Ip, 5);
        assert_eq!(rows[0].origin, d("www.google-analytics.com"));
        assert_eq!(rows[0].connections, 2);
        let (prev, count) = rows[0].top_previous().unwrap();
        assert_eq!(prev, &d("www.googletagmanager.com"));
        assert_eq!(*count, 2);
    }

    #[test]
    fn cert_issuer_and_domain_attribution_names_klaviyo() {
        let data = dataset();
        let classifications = classify_dataset(&data, DurationModel::Endless);
        let issuers = cert_issuers(&data, &classifications, 5);
        assert_eq!(issuers.len(), 1);
        assert_eq!(issuers[0].issuer, Issuer::lets_encrypt());
        assert_eq!(issuers[0].connections, 1);
        assert_eq!(issuers[0].unique_domains, 1);

        let domains = cert_domains(&data, &classifications, 5);
        assert_eq!(domains[0].domain, d("fast.a.klaviyo.com"));
        assert_eq!(domains[0].previous[0].0, d("static.klaviyo.com"));
        assert_eq!(domains[0].issuer.short_code(), "LE");
    }

    #[test]
    fn issuer_share_counts_all_connections() {
        let data = dataset();
        let rows = issuer_share(&data, 10);
        let total: usize = rows.iter().map(|r| r.connections).sum();
        assert_eq!(total, data.total_connections());
        let gts = rows.iter().find(|r| r.issuer == Issuer::google_trust_services()).unwrap();
        assert_eq!(gts.connections, 4);
        assert_eq!(gts.unique_domains, 2);
    }

    #[test]
    fn asn_attribution_uses_the_registry() {
        let data = dataset();
        let classifications = classify_dataset(&data, DurationModel::Endless);
        let mut registry = AsRegistry::new();
        registry.announce("142.250.0.0/16".parse().unwrap(), AutonomousSystem::new(15169, "GOOGLE"));
        let rows = asn_for_ip_cause(&data, &classifications, &registry, 5);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].system.name, "GOOGLE");
        assert_eq!(rows[0].connections, 2);
        assert_eq!(rows[0].unique_domains, 1);
    }

    #[test]
    fn limits_are_respected() {
        let data = dataset();
        let classifications = classify_dataset(&data, DurationModel::Endless);
        assert!(top_origins_for_cause(&data, &classifications, Cause::Ip, 0).is_empty());
        assert_eq!(issuer_share(&data, 1).len(), 1);
    }
}
