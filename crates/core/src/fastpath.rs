//! The streaming visit classifier: per-site redundancy counts without
//! materialising observations or classifications.
//!
//! The batch pipeline (`PageVisit` → [`crate::site_from_visit`] →
//! [`crate::classify_site`] → [`crate::Accumulator::observe`]) allocates an
//! observation with cloned SAN lists, per-connection request vectors and a
//! `BTreeMap` of causes per connection — all of which the atlas-scale
//! aggregation immediately reduces to a handful of integers.
//! [`FastVisitClassifier`] performs the same §4.1 classification directly on
//! reusable buffers and returns those integers ([`SiteCounts`]).
//!
//! **Scope:** the fast path covers visits where every response carried
//! status 200 (no HTTP 421 exclusions) — which is every visit the simulated
//! browser currently produces; callers check
//! `VisitScratch::all_ok` and fall back to the batch pipeline otherwise.
//! Observational equivalence with `classify_site` + `observe` is
//! property-tested in `crates/experiments/tests/fastpath_equivalence.rs`.

use crate::aggregate::SiteCounts;
use crate::classify::Cause;
use crate::observation::DurationModel;
use netsim_tls::Certificate;
use netsim_types::{ConnectionId, DomainName, Instant, IpAddr};
use std::sync::Arc;

/// One connection as the fast classifier sees it: the classification-relevant
/// fields plus a shared handle to the presented certificate.
#[derive(Clone, Debug)]
struct FastConnRecord {
    id: ConnectionId,
    initial_domain: DomainName,
    ip: IpAddr,
    port: u16,
    established_at: Instant,
    closed_at: Option<Instant>,
    last_request_at: Instant,
    certificate: Arc<Certificate>,
}

impl FastConnRecord {
    /// The end of the open interval under `model`, `None` meaning "open".
    fn open_until(&self, model: DurationModel) -> Option<Instant> {
        match model {
            DurationModel::Endless => None,
            DurationModel::Immediate => Some(self.last_request_at),
            DurationModel::Recorded => self.closed_at,
        }
    }

    /// `true` if the connection was open at `t` under `model` (mirrors
    /// [`crate::observation::ObservedConnection::open_at`]).
    fn open_at(&self, t: Instant, model: DurationModel) -> bool {
        self.established_at <= t && self.open_until(model).is_none_or(|end| t <= end)
    }
}

/// A reusable classifier for the per-worker visit loop. All buffers retain
/// their capacity across sites, so classifying a site allocates nothing in
/// the steady state.
#[derive(Debug, Default)]
pub struct FastVisitClassifier {
    records: Vec<FastConnRecord>,
    /// Classification order: indices into `records` sorted by
    /// (established_at, id).
    order: Vec<u32>,
    /// Per-record cause bits (bit `Cause::index`).
    cause_bits: Vec<u8>,
}

impl FastVisitClassifier {
    /// A classifier with empty buffers.
    pub fn new() -> Self {
        FastVisitClassifier::default()
    }

    /// Start a new site: forget the previous site's connections.
    pub fn begin_site(&mut self) {
        self.records.clear();
        self.order.clear();
        self.cause_bits.clear();
    }

    /// Add one of the site's connections. `last_request_at` is the send time
    /// of the last request on the connection (the establishment time if it
    /// carried none) — only consulted by [`DurationModel::Immediate`].
    #[allow(clippy::too_many_arguments)]
    pub fn push_connection(
        &mut self,
        id: ConnectionId,
        initial_domain: DomainName,
        ip: IpAddr,
        port: u16,
        established_at: Instant,
        closed_at: Option<Instant>,
        last_request_at: Instant,
        certificate: &Arc<Certificate>,
    ) {
        self.records.push(FastConnRecord {
            id,
            initial_domain,
            ip,
            port,
            established_at,
            closed_at,
            last_request_at,
            certificate: Arc::clone(certificate),
        });
    }

    /// Raise the `record_index`-th pushed connection's last-request time to
    /// at least `at`. Lets callers push connections with their establishment
    /// times first and then fold the request log in one linear pass, instead
    /// of rescanning the requests per connection.
    pub fn bump_last_request(&mut self, record_index: usize, at: Instant) {
        let record = &mut self.records[record_index];
        if at > record.last_request_at {
            record.last_request_at = at;
        }
    }

    /// Classify the pushed connections under `model` — the same predicate as
    /// [`crate::classify_site`] restricted to visits without HTTP 421
    /// exclusions — and reduce to the site's cause counts.
    pub fn classify(&mut self, model: DurationModel) -> SiteCounts {
        // Establishment order: by start time, ties broken by id.
        self.order.clear();
        self.order.extend(0..self.records.len() as u32);
        let records = &self.records;
        self.order.sort_unstable_by_key(|&i| {
            let record = &records[i as usize];
            (record.established_at, record.id)
        });

        self.cause_bits.clear();
        self.cause_bits.resize(self.records.len(), 0);

        for (position, &index) in self.order.iter().enumerate() {
            let connection = &self.records[index as usize];
            let mut bits = 0u8;
            for &previous_index in &self.order[..position] {
                let previous = &self.records[previous_index as usize];
                if previous.port != connection.port {
                    continue;
                }
                if !previous.open_at(connection.established_at, model) {
                    continue;
                }
                let covers = previous.certificate.covers(&connection.initial_domain);
                let cause = if previous.ip == connection.ip {
                    if covers {
                        Some(Cause::Cred)
                    } else {
                        Some(Cause::Cert)
                    }
                } else if previous.initial_domain == connection.initial_domain {
                    // Same-initial-domain on different IPs: counted as CRED,
                    // not IP (§4.1).
                    Some(Cause::Cred)
                } else if covers {
                    Some(Cause::Ip)
                } else {
                    None
                };
                if let Some(cause) = cause {
                    bits |= 1 << cause.index();
                }
            }
            self.cause_bits[index as usize] = bits;
        }

        let mut counts = SiteCounts {
            total_connections: self.records.len(),
            redundant_connections: 0,
            cause_connections: [0; 3],
        };
        for bits in &self.cause_bits {
            if *bits != 0 {
                counts.redundant_connections += 1;
            }
            for cause in Cause::ALL {
                if bits & (1 << cause.index()) != 0 {
                    counts.cause_connections[cause.index()] += 1;
                }
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify_site;
    use crate::observation::{ObservedConnection, ObservedRequest, SiteObservation};
    use netsim_tls::{CertificateStore, IssuancePolicy, Issuer, SanEntry};

    fn d(s: &str) -> DomainName {
        DomainName::literal(s)
    }

    fn cert(domains: &[&str]) -> Arc<Certificate> {
        let mut store = CertificateStore::new();
        let names: Vec<DomainName> = domains.iter().map(|s| d(s)).collect();
        let ids = store.issue_with_policy(
            Issuer::lets_encrypt(),
            &IssuancePolicy::SharedSan,
            &names,
            Instant::EPOCH,
        );
        Arc::clone(store.get_arc(ids[0]).unwrap())
    }

    struct Conn {
        id: u64,
        domain: &'static str,
        ip: IpAddr,
        san: &'static [&'static str],
        start_ms: u64,
        closed_ms: Option<u64>,
    }

    fn run_both(conns: &[Conn], model: DurationModel) -> (SiteCounts, SiteCounts) {
        let mut fast = FastVisitClassifier::new();
        fast.begin_site();
        let mut observed = Vec::new();
        for conn in conns {
            let certificate = cert(conn.san);
            fast.push_connection(
                ConnectionId(conn.id),
                d(conn.domain),
                conn.ip,
                443,
                Instant::from_millis(conn.start_ms),
                conn.closed_ms.map(Instant::from_millis),
                Instant::from_millis(conn.start_ms + 1),
                &certificate,
            );
            observed.push(ObservedConnection {
                id: ConnectionId(conn.id),
                initial_domain: d(conn.domain),
                ip: conn.ip,
                port: 443,
                san: conn.san.iter().map(|s| SanEntry::parse(s).unwrap()).collect(),
                issuer: Issuer::lets_encrypt(),
                established_at: Instant::from_millis(conn.start_ms),
                closed_at: conn.closed_ms.map(Instant::from_millis),
                requests: vec![ObservedRequest {
                    domain: d(conn.domain),
                    status: 200,
                    started_at: Instant::from_millis(conn.start_ms + 1),
                }],
            });
        }
        let fast_counts = fast.classify(model);
        let site = SiteObservation { site: d("example.com"), connections: observed };
        let slow_counts = SiteCounts::from_classification(&classify_site(&site, model));
        (fast_counts, slow_counts)
    }

    const IP_A: IpAddr = IpAddr::new(10, 0, 0, 1);
    const IP_B: IpAddr = IpAddr::new(10, 0, 0, 2);

    #[test]
    fn fast_counts_match_batch_classification() {
        let shared: &[&str] = &["www.googletagmanager.com", "www.google-analytics.com"];
        let conns = [
            Conn {
                id: 1,
                domain: "www.googletagmanager.com",
                ip: IP_A,
                san: shared,
                start_ms: 0,
                closed_ms: None,
            },
            Conn {
                id: 2,
                domain: "www.google-analytics.com",
                ip: IP_B,
                san: shared,
                start_ms: 100,
                closed_ms: None,
            },
            Conn {
                id: 3,
                domain: "static.klaviyo.com",
                ip: IP_A,
                san: &["static.klaviyo.com"],
                start_ms: 200,
                closed_ms: None,
            },
            Conn {
                id: 4,
                domain: "www.google-analytics.com",
                ip: IP_B,
                san: shared,
                start_ms: 300,
                closed_ms: None,
            },
        ];
        for model in [DurationModel::Endless, DurationModel::Immediate, DurationModel::Recorded] {
            let (fast, slow) = run_both(&conns, model);
            assert_eq!(fast, slow, "model {model:?}");
        }
    }

    #[test]
    fn duration_models_respect_close_times() {
        let shared: &[&str] = &["a.example.com", "b.example.com"];
        let conns = [
            Conn {
                id: 1,
                domain: "a.example.com",
                ip: IP_A,
                san: shared,
                start_ms: 0,
                closed_ms: Some(30_000),
            },
            Conn { id: 2, domain: "b.example.com", ip: IP_A, san: shared, start_ms: 60_000, closed_ms: None },
        ];
        let (fast_recorded, slow_recorded) = run_both(&conns, DurationModel::Recorded);
        assert_eq!(fast_recorded, slow_recorded);
        assert_eq!(fast_recorded.redundant_connections, 0);
        let (fast_endless, slow_endless) = run_both(&conns, DurationModel::Endless);
        assert_eq!(fast_endless, slow_endless);
        assert_eq!(fast_endless.redundant_connections, 1);
    }

    #[test]
    fn classifier_buffers_recycle_between_sites() {
        let mut fast = FastVisitClassifier::new();
        for _ in 0..3 {
            fast.begin_site();
            let certificate = cert(&["www.example.com", "img.example.com"]);
            fast.push_connection(
                ConnectionId(1),
                d("www.example.com"),
                IP_A,
                443,
                Instant::EPOCH,
                None,
                Instant::EPOCH,
                &certificate,
            );
            fast.push_connection(
                ConnectionId(2),
                d("img.example.com"),
                IP_A,
                443,
                Instant::from_millis(50),
                None,
                Instant::from_millis(51),
                &certificate,
            );
            let counts = fast.classify(DurationModel::Endless);
            assert_eq!(counts.total_connections, 2);
            assert_eq!(counts.redundant_connections, 1);
            assert_eq!(counts.cause_connections[Cause::Cred.index()], 1);
        }
    }
}
