//! The common observation model both data sources are converted into.
//!
//! HAR corpora and NetLog-style browser captures differ in what they know —
//! HAR files lack connection end times, NetLogs have them — but the
//! classifier only needs the fields below. [`DurationModel`] expresses the
//! paper's handling of the missing end times: the HTTP-Archive dataset is
//! evaluated under both an *endless* and an *immediate* assumption, while the
//! own measurements use the recorded lifetimes.

use netsim_tls::{Issuer, SanEntry};
use netsim_types::{ConnectionId, DomainName, Instant, IpAddr};
use serde::{Deserialize, Serialize};

/// How a connection's open interval is derived when checking whether it was
/// available for reuse at a later connection's establishment time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DurationModel {
    /// Connections never close (upper bound used for the HTTP Archive).
    Endless,
    /// Connections close right after their last request (lower bound).
    Immediate,
    /// Use the recorded close times; connections without one stay open.
    Recorded,
}

/// One request observed on a connection.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObservedRequest {
    /// Requested host.
    pub domain: DomainName,
    /// Response status.
    pub status: u16,
    /// When the request was sent.
    pub started_at: Instant,
}

/// One observed HTTP/2 session.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObservedConnection {
    /// Session identifier (HAR socket id / NetLog source id).
    pub id: ConnectionId,
    /// The host of the first request on the session (the SNI the session was
    /// opened for).
    pub initial_domain: DomainName,
    /// Destination address.
    pub ip: IpAddr,
    /// Destination port.
    pub port: u16,
    /// Subject Alternative Names of the presented certificate.
    pub san: Vec<SanEntry>,
    /// Issuer organisation of the presented certificate.
    pub issuer: Issuer,
    /// When the session was established (approximated by the first request
    /// for HAR data).
    pub established_at: Instant,
    /// When the session closed, if known.
    pub closed_at: Option<Instant>,
    /// Requests carried by the session, in send order.
    pub requests: Vec<ObservedRequest>,
}

impl ObservedConnection {
    /// `true` if the certificate covers `domain`.
    pub fn covers(&self, domain: &DomainName) -> bool {
        self.san.iter().any(|entry| entry.covers(domain))
    }

    /// The time of the last request on the session (the establishment time
    /// when the session carried none).
    pub fn last_request_at(&self) -> Instant {
        self.requests.iter().map(|r| r.started_at).max().unwrap_or(self.established_at)
    }

    /// The end of the session's open interval under the given model, `None`
    /// meaning "still open".
    pub fn open_until(&self, model: DurationModel) -> Option<Instant> {
        match model {
            DurationModel::Endless => None,
            DurationModel::Immediate => Some(self.last_request_at()),
            DurationModel::Recorded => self.closed_at,
        }
    }

    /// `true` if the session was open (established and not yet closed under
    /// the model) at instant `t`.
    pub fn open_at(&self, t: Instant, model: DurationModel) -> bool {
        self.established_at <= t && self.open_until(model).is_none_or(|end| t <= end)
    }

    /// The recorded lifetime, when a close time exists.
    pub fn lifetime(&self) -> Option<netsim_types::Duration> {
        self.closed_at.map(|end| end - self.established_at)
    }
}

/// Everything observed while visiting one site.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteObservation {
    /// Landing-page host, used as the site key when intersecting datasets.
    pub site: DomainName,
    /// Observed HTTP/2 sessions.
    pub connections: Vec<ObservedConnection>,
}

impl SiteObservation {
    /// Number of observed sessions.
    pub fn connection_count(&self) -> usize {
        self.connections.len()
    }

    /// Total requests across all sessions.
    pub fn request_count(&self) -> usize {
        self.connections.iter().map(|c| c.requests.len()).sum()
    }

    /// `true` if at least one HTTP/2 session was observed.
    pub fn has_http2(&self) -> bool {
        !self.connections.is_empty()
    }
}

/// A labelled collection of site observations (one measurement run).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dataset {
    /// Human-readable label ("HAR Endless", "Alexa", ...).
    pub label: String,
    /// Per-site observations.
    pub sites: Vec<SiteObservation>,
}

impl Dataset {
    /// A dataset with the given label and sites.
    pub fn new(label: &str, sites: Vec<SiteObservation>) -> Self {
        Dataset { label: label.to_string(), sites }
    }

    /// Number of sites with at least one HTTP/2 session.
    pub fn http2_site_count(&self) -> usize {
        self.sites.iter().filter(|s| s.has_http2()).count()
    }

    /// Total sessions across all sites.
    pub fn total_connections(&self) -> usize {
        self.sites.iter().map(|s| s.connection_count()).sum()
    }

    /// Total requests across all sites.
    pub fn total_requests(&self) -> usize {
        self.sites.iter().map(|s| s.request_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim_types::Duration;

    fn d(s: &str) -> DomainName {
        DomainName::literal(s)
    }

    fn connection(id: u64, start_ms: u64, closed_ms: Option<u64>) -> ObservedConnection {
        ObservedConnection {
            id: ConnectionId(id),
            initial_domain: d("example.com"),
            ip: IpAddr::new(10, 0, 0, 1),
            port: 443,
            san: vec![SanEntry::Dns(d("example.com")), SanEntry::Wildcard(d("example.com"))],
            issuer: Issuer::lets_encrypt(),
            established_at: Instant::from_millis(start_ms),
            closed_at: closed_ms.map(Instant::from_millis),
            requests: vec![
                ObservedRequest {
                    domain: d("example.com"),
                    status: 200,
                    started_at: Instant::from_millis(start_ms + 5),
                },
                ObservedRequest {
                    domain: d("img.example.com"),
                    status: 200,
                    started_at: Instant::from_millis(start_ms + 80),
                },
            ],
        }
    }

    #[test]
    fn coverage_uses_san_entries() {
        let c = connection(1, 0, None);
        assert!(c.covers(&d("example.com")));
        assert!(c.covers(&d("img.example.com")));
        assert!(!c.covers(&d("other.org")));
    }

    #[test]
    fn open_intervals_per_model() {
        let open = connection(1, 100, None);
        let closed = connection(2, 100, Some(10_000));
        let probe = Instant::from_millis(5_000);
        assert!(open.open_at(probe, DurationModel::Endless));
        assert!(open.open_at(probe, DurationModel::Recorded));
        assert!(!open.open_at(probe, DurationModel::Immediate), "last request was at t=180ms");
        assert!(open.open_at(Instant::from_millis(150), DurationModel::Immediate));
        assert!(closed.open_at(probe, DurationModel::Recorded));
        assert!(!closed.open_at(Instant::from_millis(20_000), DurationModel::Recorded));
        assert!(!open.open_at(Instant::from_millis(50), DurationModel::Endless), "not yet established");
        assert_eq!(closed.lifetime(), Some(Duration::from_millis(9_900)));
        assert_eq!(open.lifetime(), None);
    }

    #[test]
    fn dataset_counters() {
        let dataset = Dataset::new(
            "test",
            vec![
                SiteObservation { site: d("a.com"), connections: vec![connection(1, 0, None)] },
                SiteObservation { site: d("b.com"), connections: vec![] },
            ],
        );
        assert_eq!(dataset.http2_site_count(), 1);
        assert_eq!(dataset.total_connections(), 1);
        assert_eq!(dataset.total_requests(), 2);
        assert_eq!(dataset.sites[0].connection_count(), 1);
        assert!(!dataset.sites[1].has_http2());
    }
}
