//! Dataset-level aggregation: the Table 1 cause counts and the §5.1 headline
//! numbers.
//!
//! Aggregation is **streaming and shard-mergeable**: [`Accumulator`] folds
//! one [`SiteClassification`] at a time ([`Accumulator::observe`]) and two
//! accumulators over disjoint site sets combine with
//! [`Accumulator::merge`] (mirroring `netsim_har::FilterStatistics::merge`).
//! Because every tracked quantity is a per-site sum, `merge` is associative
//! and order-insensitive — per-worker shards of a population crawl can be
//! classified with bounded memory and merged in any order, and the result is
//! byte-for-byte the batch pass over the concatenated classifications
//! (property-tested in `tests/streaming_aggregation.rs`). The atlas scale
//! scenario (`connreuse-experiments`) is built on exactly this: 100 k sites
//! are crawled chunk by chunk, each visit is classified and folded, and only
//! the accumulators survive.

use crate::classify::{Cause, SiteClassification};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Sites and connections affected by one cause (one cell pair of Table 1).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CauseCounts {
    /// Number of sites with at least one connection carrying the cause.
    pub sites: usize,
    /// Number of connections carrying the cause.
    pub connections: usize,
}

impl CauseCounts {
    /// Component-wise sum (the shard-merge primitive).
    fn absorb(&mut self, other: CauseCounts) {
        self.sites += other.sites;
        self.connections += other.connections;
    }
}

/// Per-site cause totals in the fixed [`Cause::ALL`] order — the compact,
/// allocation-free form the streaming fast path
/// ([`crate::FastVisitClassifier`]) produces and
/// [`Accumulator::observe_counts`] folds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteCounts {
    /// Total HTTP/2 connections the site opened.
    pub total_connections: usize,
    /// Connections with at least one cause.
    pub redundant_connections: usize,
    /// Connections per cause, indexed by [`Cause::index`].
    pub cause_connections: [usize; 3],
}

impl SiteCounts {
    /// The counts a [`SiteClassification`] reduces to.
    pub fn from_classification(classification: &SiteClassification) -> Self {
        let mut cause_connections = [0usize; 3];
        for (index, cause) in Cause::ALL.iter().enumerate() {
            cause_connections[index] = classification.connections_with_cause(*cause);
        }
        SiteCounts {
            total_connections: classification.total_connections,
            redundant_connections: classification.redundant_connections(),
            cause_connections,
        }
    }
}

/// A streaming, shard-mergeable aggregator of site classifications.
///
/// One accumulator per worker shard; observe each classification as soon as
/// it is produced, drop the classification, and merge the shards afterwards.
/// Every counter is additive over disjoint site sets, so the merge order
/// never changes the outcome. The per-cause counters live in a fixed array
/// (indexed by [`Cause::index`]) so the per-site fold is a handful of integer
/// adds; the table-ordered `BTreeMap` of [`DatasetSummary`] is built once in
/// [`Accumulator::finish`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Accumulator {
    /// Per-cause counts in [`Cause::ALL`] order.
    causes: [CauseCounts; 3],
    /// Sites with ≥1 redundant connection / total redundant connections.
    redundant: CauseCounts,
    /// HTTP/2 sites / HTTP/2 connections.
    total: CauseCounts,
    /// Every site observed, including those without any HTTP/2 connection
    /// (excluded from `total` per Table 1 but reported by the atlas scenario).
    observed_sites: usize,
}

impl Default for Accumulator {
    /// Same as [`Accumulator::new`].
    fn default() -> Self {
        Accumulator::new()
    }
}

impl Accumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Accumulator {
            causes: [CauseCounts::default(); 3],
            redundant: CauseCounts::default(),
            total: CauseCounts::default(),
            observed_sites: 0,
        }
    }

    /// Fold one site's classification into the running counts.
    pub fn observe(&mut self, classification: &SiteClassification) {
        self.observe_counts(&SiteCounts::from_classification(classification));
    }

    /// Fold one site's reduced counts into the running totals — the
    /// allocation-free fold behind [`Accumulator::observe`], fed directly by
    /// the streaming visit classifier.
    pub fn observe_counts(&mut self, counts: &SiteCounts) {
        self.observed_sites += 1;
        // Sites that never opened an HTTP/2 connection are outside the
        // analysis population (Table 1 counts only HTTP/2 sites).
        if counts.total_connections == 0 {
            return;
        }
        self.total.sites += 1;
        self.total.connections += counts.total_connections;
        if counts.redundant_connections > 0 {
            self.redundant.sites += 1;
        }
        self.redundant.connections += counts.redundant_connections;
        for (entry, count) in self.causes.iter_mut().zip(counts.cause_connections) {
            entry.connections += count;
            if count > 0 {
                entry.sites += 1;
            }
        }
    }

    /// Merge another shard's counts into this accumulator. Associative and
    /// order-insensitive: any merge tree over per-shard accumulators equals
    /// the batch pass over all classifications. This is the contract the
    /// atlas's parallel executor relies on — workers fold disjoint chunks
    /// in whatever order the steal schedule produces, and the chunk-ordered
    /// merge afterwards is byte-identical to the sequential fold.
    ///
    /// ```
    /// use connreuse_core::{Accumulator, SiteCounts};
    ///
    /// // Two shards observing disjoint sites...
    /// let mut left = Accumulator::new();
    /// left.observe_counts(&SiteCounts {
    ///     total_connections: 3,
    ///     redundant_connections: 1,
    ///     cause_connections: [1, 0, 0],
    /// });
    /// let mut right = Accumulator::new();
    /// right.observe_counts(&SiteCounts {
    ///     total_connections: 2,
    ///     redundant_connections: 0,
    ///     cause_connections: [0, 0, 0],
    /// });
    ///
    /// // ...merge to the same totals in either order.
    /// let mut forward = left.clone();
    /// forward.merge(&right);
    /// let mut backward = right.clone();
    /// backward.merge(&left);
    /// assert_eq!(forward, backward);
    /// assert_eq!(forward.observed_sites(), 2);
    /// ```
    pub fn merge(&mut self, other: &Accumulator) {
        for (entry, theirs) in self.causes.iter_mut().zip(other.causes) {
            entry.absorb(theirs);
        }
        self.redundant.absorb(other.redundant);
        self.total.absorb(other.total);
        self.observed_sites += other.observed_sites;
    }

    /// Number of sites observed so far (including non-HTTP/2 sites).
    pub fn observed_sites(&self) -> usize {
        self.observed_sites
    }

    /// Export the running counts as a fixed-width word snapshot — the
    /// serialisation surface the on-disk shard store uses. Round-trips
    /// exactly through [`Accumulator::from_state`].
    pub fn state(&self) -> AccumulatorState {
        let mut cause_sites = [0u64; 3];
        let mut cause_connections = [0u64; 3];
        for (index, cause) in self.causes.iter().enumerate() {
            cause_sites[index] = cause.sites as u64;
            cause_connections[index] = cause.connections as u64;
        }
        AccumulatorState {
            cause_sites,
            cause_connections,
            redundant_sites: self.redundant.sites as u64,
            redundant_connections: self.redundant.connections as u64,
            total_sites: self.total.sites as u64,
            total_connections: self.total.connections as u64,
            observed_sites: self.observed_sites as u64,
        }
    }

    /// Rebuild an accumulator from an exported snapshot.
    pub fn from_state(state: &AccumulatorState) -> Self {
        let mut causes = [CauseCounts::default(); 3];
        for (index, entry) in causes.iter_mut().enumerate() {
            entry.sites = state.cause_sites[index] as usize;
            entry.connections = state.cause_connections[index] as usize;
        }
        Accumulator {
            causes,
            redundant: CauseCounts {
                sites: state.redundant_sites as usize,
                connections: state.redundant_connections as usize,
            },
            total: CauseCounts {
                sites: state.total_sites as usize,
                connections: state.total_connections as usize,
            },
            observed_sites: state.observed_sites as usize,
        }
    }

    /// Finish the stream: the dataset summary under `label`. The per-cause
    /// array is materialised into the table-ordered map here, once, so the
    /// summary (and every report rendered from it) is byte-identical to the
    /// pre-array implementation.
    pub fn finish(self, label: &str) -> DatasetSummary {
        DatasetSummary {
            label: label.to_string(),
            causes: Cause::ALL.iter().copied().zip(self.causes).collect(),
            redundant: self.redundant,
            total: self.total,
        }
    }
}

/// The complete internal state of an [`Accumulator`], as plain u64 words.
///
/// This is the persistence contract: every counter the accumulator tracks,
/// nothing derived. [`AccumulatorState::to_words`] /
/// [`AccumulatorState::from_words`] give the fixed-width little-endian layout
/// the shard store writes; the field order is frozen — appending is a schema
/// bump, reordering is forbidden.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccumulatorState {
    /// Sites per cause, in [`Cause::ALL`] order.
    pub cause_sites: [u64; 3],
    /// Connections per cause, in [`Cause::ALL`] order.
    pub cause_connections: [u64; 3],
    /// Sites with at least one redundant connection.
    pub redundant_sites: u64,
    /// Total redundant connections.
    pub redundant_connections: u64,
    /// Sites with at least one HTTP/2 connection.
    pub total_sites: u64,
    /// Total HTTP/2 connections.
    pub total_connections: u64,
    /// Every site observed, including non-HTTP/2 sites.
    pub observed_sites: u64,
}

impl AccumulatorState {
    /// Number of words in the fixed-width layout.
    pub const WORDS: usize = 11;

    /// The fixed-width word layout (frozen field order).
    pub fn to_words(&self) -> [u64; Self::WORDS] {
        [
            self.cause_sites[0],
            self.cause_sites[1],
            self.cause_sites[2],
            self.cause_connections[0],
            self.cause_connections[1],
            self.cause_connections[2],
            self.redundant_sites,
            self.redundant_connections,
            self.total_sites,
            self.total_connections,
            self.observed_sites,
        ]
    }

    /// Rebuild from the fixed-width word layout.
    pub fn from_words(words: &[u64; Self::WORDS]) -> Self {
        AccumulatorState {
            cause_sites: [words[0], words[1], words[2]],
            cause_connections: [words[3], words[4], words[5]],
            redundant_sites: words[6],
            redundant_connections: words[7],
            total_sites: words[8],
            total_connections: words[9],
            observed_sites: words[10],
        }
    }
}

/// The aggregated view of one classified dataset — one column block of
/// Table 1 plus the numbers quoted in §5.1.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetSummary {
    /// Dataset label.
    pub label: String,
    /// Per-cause counts.
    pub causes: BTreeMap<Cause, CauseCounts>,
    /// Sites with at least one redundant connection / total redundant
    /// connections (the "Redund." row).
    pub redundant: CauseCounts,
    /// Sites with at least one HTTP/2 connection / total HTTP/2 connections
    /// (the "Total" row).
    pub total: CauseCounts,
}

impl DatasetSummary {
    /// Aggregate a set of per-site classifications — the batch pass, defined
    /// as the single-shard case of the streaming [`Accumulator`].
    pub fn from_classifications(label: &str, classifications: &[SiteClassification]) -> Self {
        let mut accumulator = Accumulator::new();
        for classification in classifications {
            accumulator.observe(classification);
        }
        accumulator.finish(label)
    }

    /// Counts for one cause.
    pub fn cause(&self, cause: Cause) -> CauseCounts {
        self.causes.get(&cause).copied().unwrap_or_default()
    }

    /// Fraction of sites affected by a cause (relative to HTTP/2 sites).
    pub fn site_share(&self, cause: Cause) -> f64 {
        ratio(self.cause(cause).sites, self.total.sites)
    }

    /// Fraction of connections affected by a cause.
    pub fn connection_share(&self, cause: Cause) -> f64 {
        ratio(self.cause(cause).connections, self.total.connections)
    }

    /// Fraction of sites with at least one redundant connection — the
    /// paper's headline metric (76 % HAR endless, 95 % Alexa).
    pub fn redundant_site_share(&self) -> f64 {
        ratio(self.redundant.sites, self.total.sites)
    }

    /// Fraction of connections that are redundant.
    pub fn redundant_connection_share(&self) -> f64 {
        ratio(self.redundant.connections, self.total.connections)
    }
}

fn ratio(part: usize, whole: usize) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::ClassifiedConnection;
    use netsim_types::DomainName;
    use std::collections::BTreeMap;

    fn classified(site: &str, total: usize, causes_per_conn: Vec<Vec<Cause>>) -> SiteClassification {
        let connections = causes_per_conn
            .into_iter()
            .enumerate()
            .map(|(index, causes)| ClassifiedConnection {
                index,
                origin: DomainName::literal(site),
                causes: causes.into_iter().map(|c| (c, vec![0])).collect::<BTreeMap<_, _>>(),
                excluded: false,
            })
            .collect();
        SiteClassification { site: DomainName::literal(site), total_connections: total, connections }
    }

    #[test]
    fn summary_counts_sites_and_connections() {
        let classifications = vec![
            classified("a.com", 5, vec![vec![], vec![Cause::Ip], vec![Cause::Ip, Cause::Cred]]),
            classified("b.com", 3, vec![vec![], vec![Cause::Cert]]),
            classified("c.com", 2, vec![vec![], vec![]]),
        ];
        let summary = DatasetSummary::from_classifications("test", &classifications);
        assert_eq!(summary.total, CauseCounts { sites: 3, connections: 10 });
        assert_eq!(summary.redundant, CauseCounts { sites: 2, connections: 3 });
        assert_eq!(summary.cause(Cause::Ip), CauseCounts { sites: 1, connections: 2 });
        assert_eq!(summary.cause(Cause::Cred), CauseCounts { sites: 1, connections: 1 });
        assert_eq!(summary.cause(Cause::Cert), CauseCounts { sites: 1, connections: 1 });
        assert!((summary.redundant_site_share() - 2.0 / 3.0).abs() < 1e-9);
        assert!((summary.connection_share(Cause::Ip) - 0.2).abs() < 1e-9);
        assert!((summary.site_share(Cause::Cert) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn cause_sum_can_exceed_redundant_count() {
        // One connection with two causes: counted once as redundant but once
        // per cause — mirroring the paper's note that cause sums may exceed
        // the redundant totals.
        let classifications = vec![classified("a.com", 2, vec![vec![], vec![Cause::Ip, Cause::Cred]])];
        let summary = DatasetSummary::from_classifications("test", &classifications);
        let cause_sum: usize = Cause::ALL.iter().map(|c| summary.cause(*c).connections).sum();
        assert_eq!(summary.redundant.connections, 1);
        assert_eq!(cause_sum, 2);
    }

    #[test]
    fn empty_dataset_has_zero_shares() {
        let summary = DatasetSummary::from_classifications("empty", &[]);
        assert_eq!(summary.redundant_site_share(), 0.0);
        assert_eq!(summary.connection_share(Cause::Ip), 0.0);
        assert_eq!(summary.redundant_connection_share(), 0.0);
    }

    #[test]
    fn sharded_accumulators_merge_to_the_batch_pass() {
        let classifications = vec![
            classified("a.com", 5, vec![vec![], vec![Cause::Ip], vec![Cause::Ip, Cause::Cred]]),
            classified("b.com", 3, vec![vec![], vec![Cause::Cert]]),
            classified("c.com", 2, vec![vec![], vec![]]),
            classified("d.com", 0, vec![]),
        ];
        let batch = DatasetSummary::from_classifications("test", &classifications);

        // Two shards, merged in both orders.
        let mut left = Accumulator::new();
        left.observe(&classifications[0]);
        left.observe(&classifications[1]);
        let mut right = Accumulator::new();
        right.observe(&classifications[2]);
        right.observe(&classifications[3]);

        let mut forward = left.clone();
        forward.merge(&right);
        let mut backward = right.clone();
        backward.merge(&left);

        assert_eq!(forward, backward);
        assert_eq!(forward.observed_sites(), 4);
        assert_eq!(forward.clone().finish("test"), batch);
        assert_eq!(backward.finish("test"), batch);
    }

    #[test]
    fn merging_an_empty_accumulator_is_the_identity() {
        let mut acc = Accumulator::new();
        acc.observe(&classified("a.com", 2, vec![vec![], vec![Cause::Cred]]));
        let snapshot = acc.clone();
        acc.merge(&Accumulator::new());
        assert_eq!(acc, snapshot);
    }

    #[test]
    fn state_round_trips_through_words() {
        let mut acc = Accumulator::new();
        acc.observe(&classified("a.com", 5, vec![vec![], vec![Cause::Ip], vec![Cause::Ip, Cause::Cred]]));
        acc.observe(&classified("b.com", 3, vec![vec![], vec![Cause::Cert]]));
        acc.observe(&classified("c.com", 0, vec![]));

        let state = acc.state();
        let rebuilt = Accumulator::from_state(&AccumulatorState::from_words(&state.to_words()));
        assert_eq!(rebuilt, acc);
        assert_eq!(rebuilt.observed_sites(), 3);
        assert_eq!(rebuilt.finish("t"), acc.clone().finish("t"));
    }

    #[test]
    fn state_words_cover_every_counter() {
        // Distinct value per word: a codec that drops or swaps any field
        // cannot round-trip this state.
        let words: [u64; AccumulatorState::WORDS] = std::array::from_fn(|index| 1000 + index as u64);
        let state = AccumulatorState::from_words(&words);
        assert_eq!(state.to_words(), words);
        assert_eq!(Accumulator::from_state(&state).state(), state);
    }

    #[test]
    fn merged_state_equals_state_of_merge() {
        let mut left = Accumulator::new();
        left.observe(&classified("a.com", 2, vec![vec![], vec![Cause::Ip]]));
        let mut right = Accumulator::new();
        right.observe(&classified("b.com", 1, vec![vec![Cause::Cert]]));

        // Persist both shards, rebuild, merge: same as merging live.
        let mut live = left.clone();
        live.merge(&right);
        let mut rebuilt = Accumulator::from_state(&left.state());
        rebuilt.merge(&Accumulator::from_state(&right.state()));
        assert_eq!(rebuilt, live);
    }

    #[test]
    fn observed_sites_counts_non_http2_sites_but_totals_do_not() {
        let mut acc = Accumulator::new();
        acc.observe(&classified("a.com", 0, vec![]));
        acc.observe(&classified("b.com", 1, vec![vec![]]));
        assert_eq!(acc.observed_sites(), 2);
        let summary = acc.finish("test");
        assert_eq!(summary.total, CauseCounts { sites: 1, connections: 1 });
    }
}
