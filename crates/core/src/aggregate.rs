//! Dataset-level aggregation: the Table 1 cause counts and the §5.1 headline
//! numbers.

use crate::classify::{Cause, SiteClassification};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Sites and connections affected by one cause (one cell pair of Table 1).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CauseCounts {
    /// Number of sites with at least one connection carrying the cause.
    pub sites: usize,
    /// Number of connections carrying the cause.
    pub connections: usize,
}

/// The aggregated view of one classified dataset — one column block of
/// Table 1 plus the numbers quoted in §5.1.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetSummary {
    /// Dataset label.
    pub label: String,
    /// Per-cause counts.
    pub causes: BTreeMap<Cause, CauseCounts>,
    /// Sites with at least one redundant connection / total redundant
    /// connections (the "Redund." row).
    pub redundant: CauseCounts,
    /// Sites with at least one HTTP/2 connection / total HTTP/2 connections
    /// (the "Total" row).
    pub total: CauseCounts,
}

impl DatasetSummary {
    /// Aggregate a set of per-site classifications.
    pub fn from_classifications(label: &str, classifications: &[SiteClassification]) -> Self {
        let mut causes: BTreeMap<Cause, CauseCounts> =
            Cause::ALL.iter().map(|c| (*c, CauseCounts::default())).collect();
        let mut redundant = CauseCounts::default();
        let mut total = CauseCounts::default();
        for classification in classifications {
            // Sites that never opened an HTTP/2 connection are outside the
            // analysis population (Table 1 counts only HTTP/2 sites).
            if classification.total_connections == 0 {
                continue;
            }
            total.sites += 1;
            total.connections += classification.total_connections;
            let site_redundant = classification.redundant_connections();
            if site_redundant > 0 {
                redundant.sites += 1;
            }
            redundant.connections += site_redundant;
            for cause in Cause::ALL {
                let count = classification.connections_with_cause(cause);
                let entry = causes.get_mut(&cause).expect("all causes pre-inserted");
                entry.connections += count;
                if count > 0 {
                    entry.sites += 1;
                }
            }
        }
        DatasetSummary { label: label.to_string(), causes, redundant, total }
    }

    /// Counts for one cause.
    pub fn cause(&self, cause: Cause) -> CauseCounts {
        self.causes.get(&cause).copied().unwrap_or_default()
    }

    /// Fraction of sites affected by a cause (relative to HTTP/2 sites).
    pub fn site_share(&self, cause: Cause) -> f64 {
        ratio(self.cause(cause).sites, self.total.sites)
    }

    /// Fraction of connections affected by a cause.
    pub fn connection_share(&self, cause: Cause) -> f64 {
        ratio(self.cause(cause).connections, self.total.connections)
    }

    /// Fraction of sites with at least one redundant connection — the
    /// paper's headline metric (76 % HAR endless, 95 % Alexa).
    pub fn redundant_site_share(&self) -> f64 {
        ratio(self.redundant.sites, self.total.sites)
    }

    /// Fraction of connections that are redundant.
    pub fn redundant_connection_share(&self) -> f64 {
        ratio(self.redundant.connections, self.total.connections)
    }
}

fn ratio(part: usize, whole: usize) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::ClassifiedConnection;
    use netsim_types::DomainName;
    use std::collections::BTreeMap;

    fn classified(site: &str, total: usize, causes_per_conn: Vec<Vec<Cause>>) -> SiteClassification {
        let connections = causes_per_conn
            .into_iter()
            .enumerate()
            .map(|(index, causes)| ClassifiedConnection {
                index,
                origin: DomainName::literal(site),
                causes: causes.into_iter().map(|c| (c, vec![0])).collect::<BTreeMap<_, _>>(),
                excluded: false,
            })
            .collect();
        SiteClassification { site: DomainName::literal(site), total_connections: total, connections }
    }

    #[test]
    fn summary_counts_sites_and_connections() {
        let classifications = vec![
            classified("a.com", 5, vec![vec![], vec![Cause::Ip], vec![Cause::Ip, Cause::Cred]]),
            classified("b.com", 3, vec![vec![], vec![Cause::Cert]]),
            classified("c.com", 2, vec![vec![], vec![]]),
        ];
        let summary = DatasetSummary::from_classifications("test", &classifications);
        assert_eq!(summary.total, CauseCounts { sites: 3, connections: 10 });
        assert_eq!(summary.redundant, CauseCounts { sites: 2, connections: 3 });
        assert_eq!(summary.cause(Cause::Ip), CauseCounts { sites: 1, connections: 2 });
        assert_eq!(summary.cause(Cause::Cred), CauseCounts { sites: 1, connections: 1 });
        assert_eq!(summary.cause(Cause::Cert), CauseCounts { sites: 1, connections: 1 });
        assert!((summary.redundant_site_share() - 2.0 / 3.0).abs() < 1e-9);
        assert!((summary.connection_share(Cause::Ip) - 0.2).abs() < 1e-9);
        assert!((summary.site_share(Cause::Cert) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn cause_sum_can_exceed_redundant_count() {
        // One connection with two causes: counted once as redundant but once
        // per cause — mirroring the paper's note that cause sums may exceed
        // the redundant totals.
        let classifications = vec![classified("a.com", 2, vec![vec![], vec![Cause::Ip, Cause::Cred]])];
        let summary = DatasetSummary::from_classifications("test", &classifications);
        let cause_sum: usize = Cause::ALL.iter().map(|c| summary.cause(*c).connections).sum();
        assert_eq!(summary.redundant.connections, 1);
        assert_eq!(cause_sum, 2);
    }

    #[test]
    fn empty_dataset_has_zero_shares() {
        let summary = DatasetSummary::from_classifications("empty", &[]);
        assert_eq!(summary.redundant_site_share(), 0.0);
        assert_eq!(summary.connection_share(Cause::Ip), 0.0);
        assert_eq!(summary.redundant_connection_share(), 0.0);
    }
}
