//! Distribution reports: the Figure 2 series.

use crate::classify::SiteClassification;
use serde::{Deserialize, Serialize};

/// A survival-function series over "redundant connections per site":
/// `points[k]` is the fraction of sites that opened at least `k` redundant
/// connections. This is the "1 − CDF" plotted in Figure 2.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CdfSeries {
    /// Series label (dataset name).
    pub label: String,
    /// `points[k]` = fraction of sites with ≥ k redundant connections.
    pub points: Vec<f64>,
}

impl CdfSeries {
    /// Build the series from per-site classifications, with `max_k`
    /// inclusive as the largest x value (the paper plots 0..15).
    pub fn from_classifications(label: &str, classifications: &[SiteClassification], max_k: usize) -> Self {
        let site_count = classifications.len();
        let mut points = vec![0.0; max_k + 1];
        if site_count == 0 {
            points[0] = 0.0;
            return CdfSeries { label: label.to_string(), points };
        }
        for (k, point) in points.iter_mut().enumerate() {
            let at_least = classifications.iter().filter(|c| c.redundant_connections() >= k).count();
            *point = at_least as f64 / site_count as f64;
        }
        CdfSeries { label: label.to_string(), points }
    }

    /// The fraction of sites with at least `k` redundant connections, 0.0
    /// beyond the computed range.
    pub fn at_least(&self, k: usize) -> f64 {
        self.points.get(k).copied().unwrap_or(0.0)
    }

    /// The median number of redundant connections per site (the smallest `k`
    /// such that at most half the sites have more than `k`).
    pub fn median(&self) -> usize {
        self.points.iter().rposition(|&fraction| fraction >= 0.5).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{Cause, ClassifiedConnection};
    use netsim_types::DomainName;
    use std::collections::BTreeMap;

    fn site_with_redundant(count: usize) -> SiteClassification {
        let connections = (0..count + 1)
            .map(|index| ClassifiedConnection {
                index,
                origin: DomainName::literal("example.com"),
                causes: if index == 0 {
                    BTreeMap::new()
                } else {
                    [(Cause::Ip, vec![0usize])].into_iter().collect()
                },
                excluded: false,
            })
            .collect();
        SiteClassification {
            site: DomainName::literal("example.com"),
            total_connections: count + 1,
            connections,
        }
    }

    #[test]
    fn survival_function_is_monotone_and_starts_at_one() {
        let sites: Vec<SiteClassification> = vec![
            site_with_redundant(0),
            site_with_redundant(1),
            site_with_redundant(2),
            site_with_redundant(6),
        ];
        let series = CdfSeries::from_classifications("test", &sites, 10);
        assert_eq!(series.points.len(), 11);
        assert!((series.at_least(0) - 1.0).abs() < 1e-9);
        assert!((series.at_least(1) - 0.75).abs() < 1e-9);
        assert!((series.at_least(2) - 0.5).abs() < 1e-9);
        assert!((series.at_least(7) - 0.0).abs() < 1e-9);
        for window in series.points.windows(2) {
            assert!(window[0] >= window[1], "survival function must be non-increasing");
        }
        assert_eq!(series.median(), 2);
        assert_eq!(series.at_least(99), 0.0);
    }

    #[test]
    fn empty_input_yields_zero_series() {
        let series = CdfSeries::from_classifications("empty", &[], 5);
        assert_eq!(series.points.len(), 6);
        assert!(series.points.iter().all(|p| *p == 0.0));
        assert_eq!(series.median(), 0);
    }
}
