//! Dataset intersection (Appendix A.3, Tables 7–10).
//!
//! The HTTP Archive and the authors' own crawl visit different site lists; to
//! compare like with like, the paper intersects both datasets on the visited
//! URLs and re-runs the analysis on the common ~29.5 k sites. This module
//! implements the same intersection on the site (landing-domain) key.

use crate::observation::Dataset;
use netsim_types::DomainName;
use std::collections::BTreeSet;

/// Restrict both datasets to the sites present in each, preserving the
/// original per-dataset observations. The returned datasets contain the same
/// site set (possibly in different order, following each input's order) and
/// carry an "(overlap)" suffix in their labels.
pub fn intersect(a: &Dataset, b: &Dataset) -> (Dataset, Dataset) {
    let sites_a: BTreeSet<&DomainName> = a.sites.iter().map(|s| &s.site).collect();
    let sites_b: BTreeSet<&DomainName> = b.sites.iter().map(|s| &s.site).collect();
    let common: BTreeSet<&DomainName> = sites_a.intersection(&sites_b).copied().collect();
    let restricted_a = Dataset::new(
        &format!("{} (overlap)", a.label),
        a.sites.iter().filter(|s| common.contains(&s.site)).cloned().collect(),
    );
    let restricted_b = Dataset::new(
        &format!("{} (overlap)", b.label),
        b.sites.iter().filter(|s| common.contains(&s.site)).cloned().collect(),
    );
    (restricted_a, restricted_b)
}

/// The number of common sites between two datasets.
pub fn overlap_size(a: &Dataset, b: &Dataset) -> usize {
    let sites_a: BTreeSet<&DomainName> = a.sites.iter().map(|s| &s.site).collect();
    b.sites.iter().filter(|s| sites_a.contains(&s.site)).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::SiteObservation;

    fn d(s: &str) -> DomainName {
        DomainName::literal(s)
    }

    fn dataset(label: &str, sites: &[&str]) -> Dataset {
        Dataset::new(
            label,
            sites.iter().map(|s| SiteObservation { site: d(s), connections: vec![] }).collect(),
        )
    }

    #[test]
    fn intersection_keeps_only_common_sites() {
        let a = dataset("har", &["a.com", "b.com", "c.com"]);
        let b = dataset("alexa", &["b.com", "c.com", "d.com"]);
        assert_eq!(overlap_size(&a, &b), 2);
        let (ra, rb) = intersect(&a, &b);
        assert_eq!(ra.sites.len(), 2);
        assert_eq!(rb.sites.len(), 2);
        assert_eq!(ra.label, "har (overlap)");
        assert_eq!(rb.label, "alexa (overlap)");
        let names: Vec<&str> = ra.sites.iter().map(|s| s.site.as_str()).collect();
        assert_eq!(names, vec!["b.com", "c.com"]);
    }

    #[test]
    fn disjoint_datasets_intersect_to_nothing() {
        let a = dataset("har", &["a.com"]);
        let b = dataset("alexa", &["z.com"]);
        assert_eq!(overlap_size(&a, &b), 0);
        let (ra, rb) = intersect(&a, &b);
        assert!(ra.sites.is_empty());
        assert!(rb.sites.is_empty());
    }
}
