//! Issuance policies — how an operator groups its domains into certificates.
//!
//! The paper's `CERT` cause exists because operators who shard a site across
//! subdomains sometimes request a *separate* certificate per subdomain (the
//! default behaviour of a naïve certbot setup) instead of one certificate
//! listing all shards or a wildcard. This module encodes those choices so the
//! population generator can produce both kinds of deployments and the
//! ablation benches can flip between them.

use crate::certificate::SanEntry;
use netsim_types::DomainName;
use serde::{Deserialize, Serialize};

/// How a set of domains served by one operator is partitioned into
/// certificates.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum IssuancePolicy {
    /// One certificate listing every domain as a SAN entry. Connection reuse
    /// across the domains is possible whenever they share an IP.
    SharedSan,
    /// One certificate per domain — the sharding-hostile default that produces
    /// the paper's `CERT` cause.
    PerDomain,
    /// A single wildcard certificate `*.zone` (plus the zone apex). Covers
    /// one-level shards such as `img.zone` but not `a.b.zone`.
    Wildcard {
        /// The zone whose direct children the wildcard covers.
        zone: DomainName,
    },
    /// The first `group_size` domains share a certificate, the next
    /// `group_size` share another one, and so on. Models operators that merge
    /// *some* shards (e.g. Google ads domains spread over a few certs).
    Grouped {
        /// Number of domains per certificate (minimum 1).
        group_size: usize,
    },
}

impl IssuancePolicy {
    /// Partition `domains` into per-certificate SAN lists according to the
    /// policy. The order of `domains` is preserved inside each group.
    pub fn partition(&self, domains: &[DomainName]) -> Vec<Vec<SanEntry>> {
        match self {
            IssuancePolicy::SharedSan => {
                if domains.is_empty() {
                    Vec::new()
                } else {
                    vec![domains.iter().cloned().map(SanEntry::Dns).collect()]
                }
            }
            IssuancePolicy::PerDomain => domains.iter().cloned().map(|d| vec![SanEntry::Dns(d)]).collect(),
            IssuancePolicy::Wildcard { zone } => {
                if domains.is_empty() {
                    Vec::new()
                } else {
                    let mut san = vec![SanEntry::Wildcard(*zone), SanEntry::Dns(*zone)];
                    // Domains not covered by the wildcard (deeper than one
                    // label, or outside the zone) still need exact entries.
                    for d in domains {
                        let covered = SanEntry::Wildcard(*zone).covers(d) || d == zone;
                        if !covered {
                            san.push(SanEntry::Dns(*d));
                        }
                    }
                    vec![san]
                }
            }
            IssuancePolicy::Grouped { group_size } => {
                let size = (*group_size).max(1);
                domains.chunks(size).map(|chunk| chunk.iter().cloned().map(SanEntry::Dns).collect()).collect()
            }
        }
    }

    /// Number of certificates the policy produces for `n` domains.
    pub fn certificate_count(&self, n: usize) -> usize {
        match self {
            IssuancePolicy::SharedSan | IssuancePolicy::Wildcard { .. } => usize::from(n > 0),
            IssuancePolicy::PerDomain => n,
            IssuancePolicy::Grouped { group_size } => {
                let size = (*group_size).max(1);
                n.div_ceil(size)
            }
        }
    }

    /// The certificate-coalescing mitigation applied to this policy: the
    /// sharding-hostile partitions ([`IssuancePolicy::PerDomain`] and
    /// [`IssuancePolicy::Grouped`]) collapse into one
    /// [`IssuancePolicy::SharedSan`] certificate covering every domain, the
    /// way the paper's §7 suggests operators fix the `CERT` cause. Policies
    /// that already produce a single certificate are unchanged.
    #[must_use]
    pub fn coalesced(&self) -> IssuancePolicy {
        match self {
            IssuancePolicy::PerDomain | IssuancePolicy::Grouped { .. } => IssuancePolicy::SharedSan,
            other => other.clone(),
        }
    }

    /// `true` if, under this policy, a connection presenting the certificate
    /// for `established` can be reused for `requested` (certificate criterion
    /// only). This is the property the `CERT` classifier ultimately observes.
    pub fn allows_reuse_between(&self, established: &DomainName, requested: &DomainName) -> bool {
        if established == requested {
            return true;
        }
        match self {
            IssuancePolicy::SharedSan => true,
            IssuancePolicy::PerDomain => false,
            IssuancePolicy::Wildcard { zone } => {
                let wc = SanEntry::Wildcard(*zone);
                (wc.covers(established) || established == zone) && (wc.covers(requested) || requested == zone)
            }
            IssuancePolicy::Grouped { .. } => false, // group membership unknown at this level
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> DomainName {
        DomainName::literal(s)
    }

    fn domains() -> Vec<DomainName> {
        vec![d("example.com"), d("img.example.com"), d("static.example.com"), d("api.example.com")]
    }

    #[test]
    fn shared_san_single_certificate() {
        let groups = IssuancePolicy::SharedSan.partition(&domains());
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 4);
        assert_eq!(IssuancePolicy::SharedSan.certificate_count(4), 1);
        assert_eq!(IssuancePolicy::SharedSan.certificate_count(0), 0);
        assert!(IssuancePolicy::SharedSan.partition(&[]).is_empty());
    }

    #[test]
    fn per_domain_disjunct_certificates() {
        let policy = IssuancePolicy::PerDomain;
        let groups = policy.partition(&domains());
        assert_eq!(groups.len(), 4);
        assert!(groups.iter().all(|g| g.len() == 1));
        assert_eq!(policy.certificate_count(4), 4);
        assert!(!policy.allows_reuse_between(&d("example.com"), &d("img.example.com")));
        assert!(policy.allows_reuse_between(&d("example.com"), &d("example.com")));
    }

    #[test]
    fn wildcard_covers_one_level() {
        let policy = IssuancePolicy::Wildcard { zone: d("example.com") };
        let groups = policy.partition(&domains());
        assert_eq!(groups.len(), 1);
        // wildcard + apex, no extra entries needed for one-level shards
        assert_eq!(groups[0].len(), 2);
        assert!(policy.allows_reuse_between(&d("img.example.com"), &d("static.example.com")));
        assert!(policy.allows_reuse_between(&d("example.com"), &d("img.example.com")));
        assert!(!policy.allows_reuse_between(&d("img.example.com"), &d("a.b.example.com")));
    }

    #[test]
    fn wildcard_adds_exact_entries_for_deep_names() {
        let policy = IssuancePolicy::Wildcard { zone: d("example.com") };
        let groups = policy.partition(&[d("a.b.example.com"), d("img.example.com")]);
        let texts: Vec<String> = groups[0].iter().map(|s| s.as_text()).collect();
        assert!(texts.contains(&"a.b.example.com".to_string()));
        assert!(!texts.contains(&"img.example.com".to_string()));
    }

    #[test]
    fn coalescing_collapses_partitioned_policies() {
        assert_eq!(IssuancePolicy::PerDomain.coalesced(), IssuancePolicy::SharedSan);
        assert_eq!(IssuancePolicy::Grouped { group_size: 3 }.coalesced(), IssuancePolicy::SharedSan);
        assert_eq!(IssuancePolicy::SharedSan.coalesced(), IssuancePolicy::SharedSan);
        let wildcard = IssuancePolicy::Wildcard { zone: d("example.com") };
        assert_eq!(wildcard.coalesced(), wildcard);
        // After coalescing, every pair of domains can share a connection
        // (certificate criterion only).
        let coalesced = IssuancePolicy::PerDomain.coalesced();
        assert!(coalesced.allows_reuse_between(&d("example.com"), &d("img.example.com")));
        assert_eq!(coalesced.certificate_count(4), 1);
    }

    #[test]
    fn grouped_partitions_in_chunks() {
        let policy = IssuancePolicy::Grouped { group_size: 3 };
        let groups = policy.partition(&domains());
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].len(), 3);
        assert_eq!(groups[1].len(), 1);
        assert_eq!(policy.certificate_count(4), 2);
        assert_eq!(IssuancePolicy::Grouped { group_size: 0 }.certificate_count(4), 4);
    }
}
