//! Certificates and SAN coverage.

use netsim_types::{DomainName, Instant};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies one issued certificate within a [`crate::CertificateStore`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct CertificateId(pub u64);

impl fmt::Display for CertificateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cert-{}", self.0)
    }
}

impl fmt::Debug for CertificateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// One Subject-Alternative-Name entry. Only DNS names matter for Connection
/// Reuse; a wildcard entry covers exactly one additional left-most label
/// (RFC 6125 §6.4.3).
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SanEntry {
    /// An exact DNS name, e.g. `www.example.com`.
    Dns(DomainName),
    /// A wildcard DNS name, e.g. `*.example.com` (stored without the `*.`).
    Wildcard(DomainName),
}

impl SanEntry {
    /// Parse a textual SAN entry, recognising a leading `*.` as a wildcard.
    pub fn parse(text: &str) -> Option<SanEntry> {
        if let Some(rest) = text.strip_prefix("*.") {
            DomainName::parse(rest).ok().map(SanEntry::Wildcard)
        } else {
            DomainName::parse(text).ok().map(SanEntry::Dns)
        }
    }

    /// `true` if this entry makes the certificate valid for `domain`.
    pub fn covers(&self, domain: &DomainName) -> bool {
        match self {
            SanEntry::Dns(name) => name == domain,
            SanEntry::Wildcard(base) => match domain.parent() {
                // wildcard spans exactly one label: parent of the candidate
                // must equal the wildcard base and the candidate must be a
                // strict subdomain (i.e. not the base itself).
                Some(parent) => &parent == base && domain != base,
                None => false,
            },
        }
    }

    /// Textual form as it would appear in a certificate.
    pub fn as_text(&self) -> String {
        match self {
            SanEntry::Dns(name) => name.to_string(),
            SanEntry::Wildcard(base) => format!("*.{base}"),
        }
    }
}

impl fmt::Display for SanEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.as_text())
    }
}

impl fmt::Debug for SanEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "San({self})")
    }
}

/// A leaf certificate as seen by the browser during the TLS handshake.
///
/// Chain building and signature verification are out of scope: the analysis
/// only needs SAN coverage, the issuer organisation (Tables 3, 5, 9) and the
/// validity window (the Alexa crawl "does not ignore certificate errors", so
/// expired certificates abort the page load).
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Certificate {
    /// Store-assigned identifier (doubles as the serial number).
    pub id: CertificateId,
    /// The subject common name; by convention the first SAN.
    pub subject: DomainName,
    /// Subject Alternative Names.
    pub san: Vec<SanEntry>,
    /// Organisation of the issuing CA.
    pub issuer: crate::issuer::Issuer,
    /// Start of the validity window.
    pub not_before: Instant,
    /// End of the validity window.
    pub not_after: Instant,
}

impl Certificate {
    /// `true` if the certificate is valid for `domain` via any SAN entry.
    pub fn covers(&self, domain: &DomainName) -> bool {
        self.san.iter().any(|entry| entry.covers(domain))
    }

    /// `true` if the certificate is within its validity window at `now`.
    pub fn valid_at(&self, now: Instant) -> bool {
        now >= self.not_before && now <= self.not_after
    }

    /// All exact DNS names listed in the SAN (wildcards excluded), used for
    /// per-issuer unique-domain statistics (Tables 3 and 5).
    pub fn dns_names(&self) -> Vec<&DomainName> {
        self.san
            .iter()
            .filter_map(|entry| match entry {
                SanEntry::Dns(name) => Some(name),
                SanEntry::Wildcard(_) => None,
            })
            .collect()
    }

    /// Number of SAN entries.
    pub fn san_len(&self) -> usize {
        self.san.len()
    }
}

impl fmt::Debug for Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Certificate({} subject={} issuer={} sans={})",
            self.id,
            self.subject,
            self.issuer.organization(),
            self.san.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::issuer::Issuer;
    use netsim_types::Duration;

    fn d(s: &str) -> DomainName {
        DomainName::literal(s)
    }

    fn cert(sans: &[&str]) -> Certificate {
        Certificate {
            id: CertificateId(1),
            subject: d(sans[0].trim_start_matches("*.")),
            san: sans.iter().map(|s| SanEntry::parse(s).unwrap()).collect(),
            issuer: Issuer::lets_encrypt(),
            not_before: Instant::EPOCH,
            not_after: Instant::EPOCH + Duration::from_days(90),
        }
    }

    #[test]
    fn exact_san_coverage() {
        let c = cert(&["www.example.com", "example.com"]);
        assert!(c.covers(&d("www.example.com")));
        assert!(c.covers(&d("example.com")));
        assert!(!c.covers(&d("img.example.com")));
    }

    #[test]
    fn wildcard_spans_single_label() {
        let c = cert(&["*.example.com"]);
        assert!(c.covers(&d("img.example.com")));
        assert!(c.covers(&d("static.example.com")));
        assert!(!c.covers(&d("example.com")));
        assert!(!c.covers(&d("a.b.example.com")));
        assert!(!c.covers(&d("example.org")));
    }

    #[test]
    fn validity_window() {
        let c = cert(&["example.com"]);
        assert!(c.valid_at(Instant::EPOCH));
        assert!(c.valid_at(Instant::EPOCH + Duration::from_days(90)));
        assert!(!c.valid_at(Instant::EPOCH + Duration::from_days(91)));
    }

    #[test]
    fn dns_names_exclude_wildcards() {
        let c = cert(&["example.com", "*.example.com", "www.example.com"]);
        let names: Vec<String> = c.dns_names().iter().map(|n| n.to_string()).collect();
        assert_eq!(names, vec!["example.com", "www.example.com"]);
        assert_eq!(c.san_len(), 3);
    }

    #[test]
    fn san_entry_parse_and_display() {
        assert_eq!(SanEntry::parse("*.shop.example").unwrap().as_text(), "*.shop.example");
        assert_eq!(SanEntry::parse("cdn.example.com").unwrap().as_text(), "cdn.example.com");
        assert!(SanEntry::parse("").is_none());
    }
}
