//! Certificate-authority organisations and their market-share model.
//!
//! Tables 3, 5 and 9 of the paper break redundant connections down by the
//! *Issuer Organisation* of the presented certificate. The population
//! generator needs the same vocabulary plus relative market shares so that the
//! simulated PKI reproduces the paper's headline: Google Trust Services
//! dominates by connection volume on few heavy-hitter domains, Let's Encrypt
//! dominates by unique-domain count with a long tail of small operators.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A certificate-issuing organisation, identified by its Issuer `O=` string.
///
/// The organisation string is shared (`Arc<str>`): the population generator
/// stamps an issuer on every generated certificate, so cloning an issuer must
/// be a refcount bump, not a string copy.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Issuer {
    organization: Arc<str>,
}

/// One shared instance per well-known CA, so the per-site constructor calls
/// in the population generator allocate nothing.
fn well_known(slot: &'static std::sync::OnceLock<Arc<str>>, name: &str) -> Issuer {
    Issuer { organization: Arc::clone(slot.get_or_init(|| Arc::from(name))) }
}

macro_rules! well_known_issuer {
    ($name:expr) => {{
        static SLOT: std::sync::OnceLock<Arc<str>> = std::sync::OnceLock::new();
        well_known(&SLOT, $name)
    }};
}

impl Issuer {
    /// An issuer with an arbitrary organisation name.
    pub fn named(organization: &str) -> Self {
        Issuer { organization: Arc::from(organization) }
    }

    /// The issuer organisation string as it appears in report tables.
    pub fn organization(&self) -> &str {
        &self.organization
    }

    /// Let's Encrypt — free, automated; the default for small operators and
    /// the long tail of per-subdomain certbot certificates.
    pub fn lets_encrypt() -> Self {
        well_known_issuer!("Let's Encrypt")
    }

    /// Google Trust Services — issues for Google's own ad/analytics domains.
    pub fn google_trust_services() -> Self {
        well_known_issuer!("Google Trust Services")
    }

    /// DigiCert Inc — large commercial CA.
    pub fn digicert() -> Self {
        well_known_issuer!("DigiCert Inc")
    }

    /// Sectigo Limited.
    pub fn sectigo() -> Self {
        well_known_issuer!("Sectigo Limited")
    }

    /// Cloudflare, Inc. — certificates for customers fronted by Cloudflare.
    pub fn cloudflare() -> Self {
        well_known_issuer!("Cloudflare, Inc.")
    }

    /// GlobalSign nv-sa.
    pub fn globalsign() -> Self {
        well_known_issuer!("GlobalSign nv-sa")
    }

    /// Amazon — certificates for CloudFront / ACM customers.
    pub fn amazon() -> Self {
        well_known_issuer!("Amazon")
    }

    /// GoDaddy.com, Inc.
    pub fn godaddy() -> Self {
        well_known_issuer!("GoDaddy.com, Inc.")
    }

    /// Yandex LLC.
    pub fn yandex() -> Self {
        well_known_issuer!("Yandex LLC")
    }

    /// COMODO CA Limited.
    pub fn comodo() -> Self {
        well_known_issuer!("COMODO CA Limited")
    }

    /// Microsoft Corporation.
    pub fn microsoft() -> Self {
        well_known_issuer!("Microsoft Corporation")
    }

    /// The short code used in Table 4 / Table 10 ("LE", "GTS", "DCI", …).
    pub fn short_code(&self) -> &'static str {
        match &*self.organization {
            "Let's Encrypt" => "LE",
            "Google Trust Services" => "GTS",
            "DigiCert Inc" => "DCI",
            "Sectigo Limited" => "SEC",
            "Cloudflare, Inc." => "CF",
            "GlobalSign nv-sa" => "GS",
            "Amazon" => "AMZ",
            "GoDaddy.com, Inc." => "GD",
            "Yandex LLC" => "YDX",
            "COMODO CA Limited" => "CMD",
            "Microsoft Corporation" => "MS",
            _ => "OTH",
        }
    }
}

impl fmt::Display for Issuer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.organization)
    }
}

impl fmt::Debug for Issuer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Issuer({})", self.organization)
    }
}

/// The set of issuers known to the simulation together with the relative
/// weight used when the population generator picks a CA for a small,
/// independent website (the long tail). Heavy hitters (Google properties,
/// Facebook, CDNs) pin their issuer explicitly in the service catalog instead
/// of sampling from these weights.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct IssuerCatalog {
    entries: Vec<(Issuer, f64)>,
}

impl IssuerCatalog {
    /// The default catalog, with weights shaped after Table 5's per-domain
    /// ranking (Let's Encrypt and Cloudflare lead by unique domains, then
    /// DigiCert, Sectigo, Amazon, GlobalSign, GoDaddy and a small remainder).
    pub fn default_market() -> Self {
        IssuerCatalog {
            entries: vec![
                (Issuer::lets_encrypt(), 0.40),
                (Issuer::cloudflare(), 0.17),
                (Issuer::digicert(), 0.10),
                (Issuer::sectigo(), 0.09),
                (Issuer::amazon(), 0.07),
                (Issuer::globalsign(), 0.04),
                (Issuer::godaddy(), 0.04),
                (Issuer::google_trust_services(), 0.05),
                (Issuer::comodo(), 0.02),
                (Issuer::microsoft(), 0.01),
                (Issuer::yandex(), 0.01),
            ],
        }
    }

    /// All issuers with their sampling weights.
    pub fn entries(&self) -> &[(Issuer, f64)] {
        &self.entries
    }

    /// Just the sampling weights, aligned with [`IssuerCatalog::entries`].
    pub fn weights(&self) -> Vec<f64> {
        self.entries.iter().map(|(_, w)| *w).collect()
    }

    /// The issuer at `index` (panics if out of range — callers obtain indices
    /// from weighted sampling over [`IssuerCatalog::weights`]).
    pub fn issuer_at(&self, index: usize) -> &Issuer {
        &self.entries[index].0
    }

    /// Number of catalog entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the catalog has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_codes_match_paper_tables() {
        assert_eq!(Issuer::lets_encrypt().short_code(), "LE");
        assert_eq!(Issuer::google_trust_services().short_code(), "GTS");
        assert_eq!(Issuer::digicert().short_code(), "DCI");
        assert_eq!(Issuer::named("Some Other CA").short_code(), "OTH");
    }

    #[test]
    fn catalog_weights_are_positive_and_normalised_enough() {
        let catalog = IssuerCatalog::default_market();
        assert!(!catalog.is_empty());
        assert_eq!(catalog.len(), catalog.weights().len());
        let total: f64 = catalog.weights().iter().sum();
        assert!((0.9..=1.1).contains(&total), "total weight {total}");
        assert!(catalog.weights().iter().all(|w| *w > 0.0));
    }

    #[test]
    fn lets_encrypt_leads_by_weight() {
        let catalog = IssuerCatalog::default_market();
        let le_weight =
            catalog.entries().iter().find(|(i, _)| *i == Issuer::lets_encrypt()).map(|(_, w)| *w).unwrap();
        assert!(catalog.entries().iter().all(|(_, w)| *w <= le_weight));
    }

    #[test]
    fn issuer_equality_is_by_organization() {
        assert_eq!(Issuer::named("Let's Encrypt"), Issuer::lets_encrypt());
        assert_ne!(Issuer::lets_encrypt(), Issuer::digicert());
        assert_eq!(Issuer::amazon().to_string(), "Amazon");
    }
}
