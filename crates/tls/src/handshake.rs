//! TLS handshake cost model.
//!
//! Section 2.1 of the paper motivates connection reuse with the latency price
//! of every additional connection: one RTT for the TCP handshake plus one or
//! two more for TLS, plus slow-start. The browser substrate charges this cost
//! when it opens a connection so that page-load timelines (and the ablation
//! benches quantifying the price of redundancy) are meaningful.

use netsim_types::Duration;
use serde::{Deserialize, Serialize};

/// TLS protocol version; determines the number of handshake round trips.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TlsVersion {
    /// TLS 1.2 — 2 round trips for a full handshake.
    Tls12,
    /// TLS 1.3 — 1 round trip for a full handshake.
    Tls13,
}

impl TlsVersion {
    /// Full-handshake round trips for this version.
    pub const fn handshake_rtts(self) -> u32 {
        match self {
            TlsVersion::Tls12 => 2,
            TlsVersion::Tls13 => 1,
        }
    }
}

/// Parameters of the connection-establishment cost model.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct HandshakeConfig {
    /// TLS version spoken by both endpoints.
    pub version: TlsVersion,
    /// Whether TLS session resumption (or 0-RTT) skips one round trip.
    pub session_resumption: bool,
    /// Whether the transport is QUIC (combines transport + TLS handshake).
    pub quic: bool,
}

impl Default for HandshakeConfig {
    fn default() -> Self {
        // The measurement setup: Chromium 87 with QUIC disabled, TLS 1.3,
        // cold caches (caches are reset between visits, so no resumption).
        HandshakeConfig { version: TlsVersion::Tls13, session_resumption: false, quic: false }
    }
}

impl HandshakeConfig {
    /// Number of network round trips needed before the first HTTP request can
    /// be sent on a *new* connection.
    pub fn setup_rtts(&self) -> u32 {
        if self.quic {
            // QUIC merges transport and crypto handshakes; 0-RTT resumes.
            if self.session_resumption {
                0
            } else {
                1
            }
        } else {
            let tcp = 1;
            let tls = if self.session_resumption {
                self.version.handshake_rtts().saturating_sub(1)
            } else {
                self.version.handshake_rtts()
            };
            tcp + tls
        }
    }

    /// The wall-clock setup latency for a path with round-trip time `rtt`.
    pub fn setup_latency(&self, rtt: Duration) -> Duration {
        rtt.times(self.setup_rtts() as u64)
    }

    /// This configuration with session resumption switched on: the tariff a
    /// client pays when it holds a fresh session ticket for the origin. The
    /// multi-page session loader applies it per connection — the *first*
    /// handshake against an origin runs at the configured (usually full)
    /// price and mints the ticket, later ones in the same session resume.
    pub fn resumed(self) -> Self {
        HandshakeConfig { session_resumption: true, ..self }
    }

    /// Approximate octets a *new* connection spends on the wire before the
    /// first HTTP request: transport handshake segments plus the TLS flights.
    ///
    /// Session resumption's byte discount is the dominant one: a resumed
    /// handshake authenticates via ticket/PSK and never retransmits the
    /// certificate chain — by far the heaviest flight. TLS 1.2 pays an extra
    /// legacy key-exchange flight over 1.3; QUIC folds the transport
    /// handshake into the crypto flights, so it skips the TCP segments.
    pub fn handshake_octets(&self) -> u64 {
        let transport = if self.quic { 0 } else { TCP_HANDSHAKE_OCTETS };
        let mut tls = CLIENT_HELLO_OCTETS + SERVER_PARAMS_OCTETS + FINISHED_OCTETS;
        if !self.session_resumption {
            tls += CERTIFICATE_CHAIN_OCTETS;
            if self.version == TlsVersion::Tls12 {
                tls += TLS12_KEY_EXCHANGE_OCTETS;
            }
        }
        transport + tls
    }

    /// Octets a *failed* handshake wastes on the wire: the transport
    /// handshake (if the fault hit after transport setup) plus the client's
    /// first crypto flight. The server's heavy flights never arrive, so an
    /// aborted dial is much cheaper in bytes than a completed one — but it
    /// still burns the full [`HandshakeConfig::setup_latency`] in wall-clock
    /// time before the client notices and retries.
    pub fn aborted_handshake_octets(&self) -> u64 {
        let transport = if self.quic { 0 } else { TCP_HANDSHAKE_OCTETS };
        transport + CLIENT_HELLO_OCTETS
    }
}

/// TCP SYN, SYN-ACK and ACK segments (40 octets of headers each).
pub const TCP_HANDSHAKE_OCTETS: u64 = 120;
/// ClientHello with a contemporary extension block.
const CLIENT_HELLO_OCTETS: u64 = 512;
/// ServerHello plus encrypted extensions / session parameters.
const SERVER_PARAMS_OCTETS: u64 = 256;
/// A typical leaf + intermediate certificate chain — the flight that session
/// resumption elides.
const CERTIFICATE_CHAIN_OCTETS: u64 = 4_096;
/// Finished / ticket flights in both directions.
const FINISHED_OCTETS: u64 = 256;
/// The separate ServerKeyExchange/ClientKeyExchange flights of a full
/// TLS 1.2 handshake.
const TLS12_KEY_EXCHANGE_OCTETS: u64 = 256;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tls13_full_handshake_is_two_rtts_over_tcp() {
        let cfg = HandshakeConfig::default();
        assert_eq!(cfg.setup_rtts(), 2); // 1 TCP + 1 TLS1.3
        assert_eq!(cfg.setup_latency(Duration::from_millis(50)), Duration::from_millis(100));
    }

    #[test]
    fn tls12_adds_a_round_trip() {
        let cfg = HandshakeConfig { version: TlsVersion::Tls12, ..Default::default() };
        assert_eq!(cfg.setup_rtts(), 3);
    }

    #[test]
    fn resumed_enables_resumption_and_keeps_the_rest() {
        let full = HandshakeConfig { version: TlsVersion::Tls12, session_resumption: false, quic: true };
        let resumed = full.resumed();
        assert!(resumed.session_resumption);
        assert_eq!(resumed.version, full.version);
        assert_eq!(resumed.quic, full.quic);
        // Idempotent: resuming an already-resumed config changes nothing.
        assert_eq!(resumed.resumed(), resumed);
    }

    #[test]
    fn resumption_saves_a_round_trip() {
        let cfg = HandshakeConfig { session_resumption: true, ..Default::default() };
        assert_eq!(cfg.setup_rtts(), 1);
        let cfg12 = HandshakeConfig { version: TlsVersion::Tls12, session_resumption: true, quic: false };
        assert_eq!(cfg12.setup_rtts(), 2);
    }

    #[test]
    fn resumption_discount_skips_the_certificate_chain() {
        let full = HandshakeConfig::default();
        let resumed = HandshakeConfig { session_resumption: true, ..Default::default() };
        // The byte discount is exactly the certificate-chain flight.
        assert_eq!(full.handshake_octets() - resumed.handshake_octets(), 4_096);
        assert!(resumed.handshake_octets() > TCP_HANDSHAKE_OCTETS);
    }

    #[test]
    fn handshake_octets_order_tls12_over_tls13_over_quic() {
        let tls13 = HandshakeConfig::default();
        let tls12 = HandshakeConfig { version: TlsVersion::Tls12, ..Default::default() };
        let quic = HandshakeConfig { quic: true, ..Default::default() };
        assert!(tls12.handshake_octets() > tls13.handshake_octets());
        // QUIC skips the TCP segments but still ships the TLS flights.
        assert_eq!(tls13.handshake_octets() - quic.handshake_octets(), TCP_HANDSHAKE_OCTETS);
    }

    #[test]
    fn aborted_handshake_is_cheaper_than_any_completed_one() {
        for cfg in [
            HandshakeConfig::default(),
            HandshakeConfig { version: TlsVersion::Tls12, ..Default::default() },
            HandshakeConfig { session_resumption: true, ..Default::default() },
            HandshakeConfig { quic: true, ..Default::default() },
        ] {
            assert!(cfg.aborted_handshake_octets() < cfg.handshake_octets(), "{cfg:?}");
        }
        assert_eq!(HandshakeConfig::default().aborted_handshake_octets(), TCP_HANDSHAKE_OCTETS + 512);
    }

    #[test]
    fn quic_merges_handshakes() {
        let quic = HandshakeConfig { quic: true, ..Default::default() };
        assert_eq!(quic.setup_rtts(), 1);
        let zero_rtt = HandshakeConfig { quic: true, session_resumption: true, ..Default::default() };
        assert_eq!(zero_rtt.setup_rtts(), 0);
        assert_eq!(zero_rtt.setup_latency(Duration::from_millis(80)), Duration::ZERO);
    }
}
