//! # netsim-tls
//!
//! A TLS / Web-PKI substrate for the `connreuse` simulation.
//!
//! HTTP/2 Connection Reuse (RFC 7540 §9.1.1) allows a request for domain `D`
//! to ride an existing connection only if that connection's certificate is
//! *valid for* `D` — in practice, if `D` matches one of the certificate's
//! Subject Alternative Names. The paper's `CERT` cause is precisely the case
//! where operators shard a site across subdomains but issue **disjunct**
//! certificates, defeating reuse even when the subdomains share an IP.
//!
//! This crate models the parts of the PKI that matter for that analysis:
//!
//! * [`Certificate`] — subject, SAN list (exact + wildcard names), issuer
//!   organisation, validity window and a coverage predicate,
//! * [`Issuer`] — the certificate-authority organisations named in the paper
//!   (Let's Encrypt, Google Trust Services, DigiCert, …) plus a market-share
//!   model used by the population generator,
//! * [`IssuancePolicy`] — how an operator groups its domains into
//!   certificates (one shared SAN cert, per-subdomain certificates à la
//!   default certbot, wildcards, …),
//! * [`CertificateStore`] — the simulated CA: issues certificates, hands the
//!   right one to a server given an SNI name, and keeps issuance statistics,
//! * [`handshake`] — a small TLS handshake cost model so the browser can
//!   charge realistic connection-establishment latency.

// The zero-allocation visit fast path made these hot paths clone-free;
// keep them that way.
#![deny(clippy::redundant_clone)]
#![deny(clippy::clone_on_copy)]

pub mod certificate;
pub mod handshake;
pub mod issuer;
pub mod policy;
pub mod store;

pub use certificate::{Certificate, CertificateId, SanEntry};
pub use handshake::{HandshakeConfig, TlsVersion};
pub use issuer::{Issuer, IssuerCatalog};
pub use policy::IssuancePolicy;
pub use store::CertificateStore;
