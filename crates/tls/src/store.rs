//! The simulated certificate authority / certificate inventory.
//!
//! Web servers in the simulation do not carry key material; they reference
//! certificates by [`CertificateId`] inside a shared [`CertificateStore`].
//! The store issues certificates (applying an [`IssuancePolicy`]), answers
//! SNI lookups ("which certificate does this server present for this name?")
//! and keeps per-issuer statistics used to sanity-check the generated PKI
//! against Table 5.

use crate::certificate::{Certificate, CertificateId, SanEntry};
use crate::issuer::Issuer;
use crate::policy::IssuancePolicy;
use netsim_types::{DomainName, Duration, Instant};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Default validity of issued certificates (90 days, the Let's Encrypt norm).
const DEFAULT_VALIDITY: Duration = Duration::from_days(90);

/// The certificate inventory of a simulation run.
///
/// Certificates are stored behind [`Arc`] so that handing one to a simulated
/// server (and from there to every connection that presents it) shares a
/// single allocation instead of cloning the SAN list per connection. A store
/// can also be *layered* over a shared immutable base
/// ([`CertificateStore::with_base`]): ids continue after the base's, lookups
/// consult both layers, and the newest certificate still wins SNI selection.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct CertificateStore {
    certificates: Vec<Arc<Certificate>>,
    /// Exact-name index: domain → certificates listing it as a DNS SAN.
    by_domain: BTreeMap<DomainName, Vec<CertificateId>>,
    /// Wildcard index: zone → certificates listing `*.zone`.
    by_wildcard_zone: BTreeMap<DomainName, Vec<CertificateId>>,
    /// Shared read-only certificates with ids `0..base.len()`.
    base: Option<Arc<CertificateStore>>,
}

impl CertificateStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty store layered over a shared base: newly issued certificates
    /// get ids continuing after the base's, and lookups consult both layers.
    pub fn with_base(base: Arc<CertificateStore>) -> Self {
        CertificateStore {
            certificates: Vec::new(),
            by_domain: BTreeMap::new(),
            by_wildcard_zone: BTreeMap::new(),
            base: Some(base),
        }
    }

    /// Number of ids below which this store's own certificates start.
    fn base_len(&self) -> usize {
        self.base.as_ref().map(|base| base.len()).unwrap_or(0)
    }

    /// Number of issued certificates (including any shared base).
    pub fn len(&self) -> usize {
        self.base_len() + self.certificates.len()
    }

    /// `true` if no certificate has been issued yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Issue a single certificate with an explicit SAN list.
    pub fn issue(&mut self, issuer: Issuer, san: Vec<SanEntry>, not_before: Instant) -> CertificateId {
        let id = CertificateId(self.len() as u64);
        let subject = san
            .first()
            .map(|entry| match entry {
                SanEntry::Dns(d) => *d,
                SanEntry::Wildcard(z) => *z,
            })
            .unwrap_or_else(|| DomainName::literal("invalid.invalid"));
        let cert =
            Certificate { id, subject, san, issuer, not_before, not_after: not_before + DEFAULT_VALIDITY };
        for entry in &cert.san {
            match entry {
                SanEntry::Dns(d) => self.by_domain.entry(*d).or_default().push(id),
                SanEntry::Wildcard(z) => self.by_wildcard_zone.entry(*z).or_default().push(id),
            }
        }
        self.certificates.push(Arc::new(cert));
        id
    }

    /// Issue certificates for `domains` according to `policy`, returning the
    /// ids in partition order.
    pub fn issue_with_policy(
        &mut self,
        issuer: Issuer,
        policy: &IssuancePolicy,
        domains: &[DomainName],
        not_before: Instant,
    ) -> Vec<CertificateId> {
        policy.partition(domains).into_iter().map(|san| self.issue(issuer.clone(), san, not_before)).collect()
    }

    /// Fetch a certificate by id.
    pub fn get(&self, id: CertificateId) -> Option<&Certificate> {
        self.get_arc(id).map(Arc::as_ref)
    }

    /// Fetch the shared handle for a certificate by id. Cloning the handle
    /// shares the certificate without copying its SAN list.
    pub fn get_arc(&self, id: CertificateId) -> Option<&Arc<Certificate>> {
        let index = id.0 as usize;
        let base_len = self.base_len();
        if index < base_len {
            self.base.as_ref().and_then(|base| base.get_arc(id))
        } else {
            self.certificates.get(index - base_len)
        }
    }

    /// All certificates (iteration order = issuance order, deepest base
    /// first — consistent with [`CertificateStore::len`] across any number
    /// of base layers).
    pub fn iter(&self) -> impl Iterator<Item = &Certificate> + '_ {
        let mut refs = Vec::with_capacity(self.len());
        self.collect_refs(&mut refs);
        refs.into_iter()
    }

    fn collect_refs<'a>(&'a self, out: &mut Vec<&'a Certificate>) {
        if let Some(base) = &self.base {
            base.collect_refs(out);
        }
        out.extend(self.certificates.iter().map(Arc::as_ref));
    }

    /// The certificates valid for `domain` (exact or wildcard match),
    /// most recently issued first — the order a server would prefer when
    /// selecting a certificate for an SNI name.
    pub fn certificates_for(&self, domain: &DomainName) -> Vec<&Certificate> {
        let mut ids = Vec::new();
        self.matching_ids(domain, &mut ids);
        ids.sort_unstable_by_key(|id| std::cmp::Reverse(id.0));
        ids.dedup();
        ids.iter().filter_map(|id| self.get(*id)).collect()
    }

    /// Collect the ids of certificates matching `domain` in this layer and
    /// any base layer.
    fn matching_ids(&self, domain: &DomainName, out: &mut Vec<CertificateId>) {
        if let Some(exact) = self.by_domain.get(domain) {
            out.extend(exact.iter().copied());
        }
        if let Some(parent) = domain.parent() {
            if let Some(wc) = self.by_wildcard_zone.get(&parent) {
                out.extend(wc.iter().copied());
            }
        }
        if let Some(base) = &self.base {
            base.matching_ids(domain, out);
        }
    }

    /// The certificate a server presents for SNI name `domain`, if any.
    pub fn select_for_sni(&self, domain: &DomainName) -> Option<&Certificate> {
        self.select_arc_for_sni(domain).map(Arc::as_ref)
    }

    /// The shared handle for the certificate a server presents for SNI name
    /// `domain`, if any — the allocation-free form the visit hot path uses.
    pub fn select_arc_for_sni(&self, domain: &DomainName) -> Option<&Arc<Certificate>> {
        // Newest (highest-id) match wins; local ids are always newer than
        // base ids, so check the local indexes before the base.
        let mut best: Option<CertificateId> = None;
        if let Some(exact) = self.by_domain.get(domain) {
            best = exact.iter().copied().max();
        }
        if let Some(parent) = domain.parent() {
            if let Some(wc) = self.by_wildcard_zone.get(&parent) {
                best = best.into_iter().chain(wc.iter().copied()).max();
            }
        }
        match (best, &self.base) {
            (Some(id), _) => self.get_arc(id),
            (None, Some(base)) => base.select_arc_for_sni(domain),
            (None, None) => None,
        }
    }

    /// `true` if any certificate in the store covers `domain`.
    pub fn has_coverage(&self, domain: &DomainName) -> bool {
        self.select_for_sni(domain).is_some()
    }

    /// Per-issuer (certificate count, unique exact DNS names) statistics.
    pub fn issuer_statistics(&self) -> BTreeMap<Issuer, IssuerStats> {
        let mut stats: BTreeMap<Issuer, (usize, BTreeSet<DomainName>)> = BTreeMap::new();
        for cert in self.iter() {
            let entry = stats.entry(cert.issuer.clone()).or_default();
            entry.0 += 1;
            for name in cert.dns_names() {
                entry.1.insert(*name);
            }
        }
        stats
            .into_iter()
            .map(|(issuer, (certificates, domains))| {
                (issuer, IssuerStats { certificates, unique_domains: domains.len() })
            })
            .collect()
    }
}

/// Aggregate issuance statistics for one CA organisation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IssuerStats {
    /// Number of certificates issued.
    pub certificates: usize,
    /// Number of distinct exact DNS names across those certificates.
    pub unique_domains: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> DomainName {
        DomainName::literal(s)
    }

    #[test]
    fn issue_and_lookup_exact() {
        let mut store = CertificateStore::new();
        let id = store.issue(
            Issuer::digicert(),
            vec![SanEntry::Dns(d("www.example.com")), SanEntry::Dns(d("example.com"))],
            Instant::EPOCH,
        );
        assert_eq!(store.len(), 1);
        assert!(!store.is_empty());
        let cert = store.get(id).unwrap();
        assert_eq!(cert.subject, d("www.example.com"));
        assert!(store.has_coverage(&d("example.com")));
        assert!(!store.has_coverage(&d("img.example.com")));
    }

    #[test]
    fn sni_prefers_most_recent_certificate() {
        let mut store = CertificateStore::new();
        let old = store.issue(Issuer::lets_encrypt(), vec![SanEntry::Dns(d("example.com"))], Instant::EPOCH);
        let newer = store.issue(
            Issuer::lets_encrypt(),
            vec![SanEntry::Dns(d("example.com")), SanEntry::Dns(d("www.example.com"))],
            Instant::EPOCH + Duration::from_days(10),
        );
        let selected = store.select_for_sni(&d("example.com")).unwrap();
        assert_eq!(selected.id, newer);
        assert_ne!(selected.id, old);
    }

    #[test]
    fn wildcard_lookup() {
        let mut store = CertificateStore::new();
        store.issue(Issuer::cloudflare(), vec![SanEntry::Wildcard(d("example.com"))], Instant::EPOCH);
        assert!(store.has_coverage(&d("img.example.com")));
        assert!(!store.has_coverage(&d("example.com")));
        assert!(!store.has_coverage(&d("a.b.example.com")));
    }

    #[test]
    fn policy_issuance_produces_expected_counts() {
        let mut store = CertificateStore::new();
        let shards = vec![d("example.com"), d("img.example.com"), d("static.example.com")];
        let ids = store.issue_with_policy(
            Issuer::lets_encrypt(),
            &IssuancePolicy::PerDomain,
            &shards,
            Instant::EPOCH,
        );
        assert_eq!(ids.len(), 3);
        // Each shard is covered, but by different certificates — the CERT setup.
        let a = store.select_for_sni(&d("example.com")).unwrap().id;
        let b = store.select_for_sni(&d("img.example.com")).unwrap().id;
        assert_ne!(a, b);
    }

    #[test]
    fn issuer_statistics_count_unique_domains() {
        let mut store = CertificateStore::new();
        store.issue(Issuer::lets_encrypt(), vec![SanEntry::Dns(d("a.example.com"))], Instant::EPOCH);
        store.issue(Issuer::lets_encrypt(), vec![SanEntry::Dns(d("b.example.com"))], Instant::EPOCH);
        store.issue(
            Issuer::google_trust_services(),
            vec![SanEntry::Dns(d("adservice.google.com")), SanEntry::Dns(d("adservice.google.de"))],
            Instant::EPOCH,
        );
        let stats = store.issuer_statistics();
        assert_eq!(stats[&Issuer::lets_encrypt()], IssuerStats { certificates: 2, unique_domains: 2 });
        assert_eq!(
            stats[&Issuer::google_trust_services()],
            IssuerStats { certificates: 1, unique_domains: 2 }
        );
    }

    #[test]
    fn empty_san_certificate_gets_placeholder_subject() {
        let mut store = CertificateStore::new();
        let id = store.issue(Issuer::amazon(), vec![], Instant::EPOCH);
        assert_eq!(store.get(id).unwrap().subject, d("invalid.invalid"));
    }
}
