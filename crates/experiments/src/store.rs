//! The persistent what-if store: atlas-scale classification and cost
//! records, priced per (mitigation deployment × link profile), persisted as
//! columnar shards and served back **without re-crawling**.
//!
//! Every other experiment recomputes its population on each run. This module
//! turns the atlas pipeline into a build step: each population chunk is
//! generated and crawled once per stored deployment and link profile, and the
//! resulting `Accumulator` state + request tallies + [`CostTotals`] are
//! written as one fixed-width [`netsim_store::ShardFile`]. A what-if query —
//! *"what does COALESCE-CERT buy on lossy cellular for the top 50 k sites?"*
//! — then folds the persisted records through the same shard-merge monoid the
//! atlas uses in memory, in milliseconds instead of a crawl.
//!
//! ## Determinism to disk
//!
//! The 4-rule determinism contract (see `ARCHITECTURE.md`) extends to the
//! store: a shard's bytes are a pure function of (config, chunk), because
//! every stochastic choice forks off the global site index and the chunk
//! layout is fixed independently of `threads`. Builds at any thread count
//! produce byte-identical store directories, and a stored answer is
//! byte-identical to the equivalent in-memory computation
//! ([`answer_in_memory`], pinned by `tests/store_roundtrip.rs`).
//!
//! ## Incremental rebuild
//!
//! The configuration fingerprint ([`StoreConfig::fingerprint`]) covers
//! everything that changes shard *contents* — seed, chunk size, Zipf mix,
//! deployment list, link profiles — but deliberately **not** the site count
//! or thread count. Growing the population therefore only appends chunks:
//! [`build_store`] asks [`netsim_store::BuildPlan`] which shards on disk
//! already match and crawls only the dirty ones. A second build over the
//! same config rewrites zero shards.
//!
//! ## Backpressure
//!
//! Building streams each finished chunk's shard through a **bounded**
//! channel ([`connreuse_executor::run_indexed_streaming`]) to the writer on
//! the caller thread; crawl workers block when the writer lags instead of
//! buffering unboundedly. Query answering reads shards through the same
//! bounded stream, merging on the caller thread as chunks arrive.

use crate::atlas::classify_scratch;
use crate::render::{format_count, format_percent, TextTable};
use crate::scenario::{ScenarioConfig, ALEXA_CRAWL_SEED_OFFSET, ALEXA_POPULATION_SEED_OFFSET};
use connreuse_core::{
    classify_site, site_from_visit, Accumulator, DatasetSummary, DurationModel, FastVisitClassifier,
};
use connreuse_executor::run_indexed_streaming;
use netsim_browser::{BrowserConfig, Crawler, PooledScratch, ScratchPool};
use netsim_cost::{CostTotals, LinkProfile};
use netsim_store::{
    finalize_manifest, write_shard, BuildPlan, ShardFile, ShardRecord, ShardStore, StoreError, StoreLayout,
};
use netsim_types::profile::Stage;
use netsim_types::{Fingerprint, FingerprintBuilder, Mitigation, MitigationSet};
use netsim_web::{DeploymentCache, PopulationBuilder, PopulationProfile};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Sizing, seeding and stored-deployment selection of one shard store.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StoreConfig {
    /// Total population size (the paper's own crawl: 100 k).
    pub sites: usize,
    /// Sites per chunk/shard. Fixed independently of `threads`, so the shard
    /// layout — and therefore every stored byte — never depends on the
    /// worker count.
    pub chunk_sites: usize,
    /// Root seed; population and crawl seeds derive from it via the shared
    /// Alexa offsets.
    pub seed: u64,
    /// Worker threads for building and for folding queries. Not part of the
    /// fingerprint: any thread count produces the identical store.
    pub threads: usize,
    /// Exponent of the Zipf head-profile mix (as the atlas).
    pub zipf_exponent: f64,
    /// Deployments the store prices. Every chunk's shard carries one record
    /// per (deployment × link profile); queries can only ask about stored
    /// deployments.
    pub mitigations: Vec<MitigationSet>,
    /// Bound of the build/query streaming channel: how many finished chunk
    /// results may await the caller-thread writer/merger before workers
    /// block. Not part of the fingerprint.
    pub channel_capacity: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            sites: 100_000,
            chunk_sites: 1_000,
            seed: ScenarioConfig::default().seed,
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            zipf_exponent: 0.35,
            mitigations: MitigationSet::all_combinations(),
            channel_capacity: 4,
        }
    }
}

impl StoreConfig {
    /// The paper-scale store: 100 k sites, all 16 deployments, three link
    /// profiles — 48 priced cells per chunk, one build, every what-if
    /// answerable afterwards.
    pub fn full() -> Self {
        StoreConfig::default()
    }

    /// A small configuration for tests, golden snapshots and the CI smoke
    /// run. Must stay identical to
    /// `StoreConfig::from_scenario(&ScenarioConfig::quick())` so the
    /// `connreuse-serve --quick` output matches the golden snapshot.
    pub fn quick() -> Self {
        StoreConfig::from_scenario(&ScenarioConfig::quick())
    }

    /// The store sized to match a scenario: the Alexa population share, a
    /// three-deployment demo ladder (measured web, certificate coalescing,
    /// everything) instead of the full 2^4 grid.
    pub fn from_scenario(config: &ScenarioConfig) -> Self {
        StoreConfig {
            sites: config.alexa_sites,
            chunk_sites: (config.alexa_sites / 4).max(1),
            seed: config.seed,
            threads: config.threads,
            mitigations: StoreConfig::demo_mitigations(),
            ..StoreConfig::default()
        }
    }

    /// The demo deployment ladder: nothing, the paper's heaviest single fix,
    /// everything.
    pub fn demo_mitigations() -> Vec<MitigationSet> {
        vec![
            MitigationSet::empty(),
            MitigationSet::single(Mitigation::CertificateCoalescing),
            MitigationSet::all(),
        ]
    }

    /// The link profiles every store prices, in [`LinkProfile::presets`]
    /// order. Part of the fingerprint, so a preset change invalidates stores.
    pub fn profiles(&self) -> Vec<LinkProfile> {
        LinkProfile::presets()
    }

    /// The chunk ranges `[start, start + len)` covering the population.
    pub fn chunks(&self) -> Vec<(usize, usize)> {
        let chunk = self.chunk_sites.max(1);
        (0..self.sites.div_ceil(chunk))
            .map(|i| {
                let start = i * chunk;
                (start, chunk.min(self.sites - start))
            })
            .collect()
    }

    /// The `(mitigation_bits, profile_index)` record keys every shard
    /// carries, in record order: deployment-major, profile-minor.
    pub fn keys(&self) -> Vec<(u64, u64)> {
        let profiles = self.profiles().len() as u64;
        self.mitigations
            .iter()
            .flat_map(|set| (0..profiles).map(move |profile| (set.bits() as u64, profile)))
            .collect()
    }

    /// The configuration fingerprint every shard and the manifest carry.
    ///
    /// Covers everything that changes shard **contents**: seed, chunk size,
    /// Zipf mix, the deployment list and the link-profile parameters.
    /// Deliberately excludes the site count (growth must only append chunks)
    /// and the thread/channel knobs (any schedule produces the same bytes).
    pub fn fingerprint(&self) -> u64 {
        let bits: Vec<u64> = self.mitigations.iter().map(|set| set.bits() as u64).collect();
        let mut builder = FingerprintBuilder::new("connreuse-store/shard/v1")
            .field_u64("seed", self.seed)
            .field_u64("chunk_sites", self.chunk_sites as u64)
            .field_f64("zipf_exponent", self.zipf_exponent)
            .field_u64_slice("mitigations", &bits);
        for profile in self.profiles() {
            builder = builder
                .field_str("profile", &profile.name)
                .field_u64("rtt_ms", profile.rtt_ms)
                .field_u64("bandwidth_bytes_per_ms", profile.bandwidth_bytes_per_ms)
                .field_u64("loss_ppm", profile.loss_ppm as u64);
        }
        builder.finish().value()
    }

    /// The on-disk layout [`build_store`] targets and readers validate.
    pub fn layout(&self) -> StoreLayout {
        StoreLayout {
            fingerprint: self.fingerprint(),
            chunks: self.chunks().iter().map(|&(start, len)| (start as u64, len as u64)).collect(),
            keys: self.keys(),
        }
    }

    /// The demo query set the `store` experiment and `connreuse-serve`
    /// answer by default: the first stored deployment priced on broadband,
    /// the last on lossy cellular, and the last again over the top half of
    /// the rank list (chunk-aligned).
    pub fn demo_queries(&self) -> Vec<StoreQuery> {
        let first = *self.mitigations.first().expect("a store prices at least one deployment");
        let last = *self.mitigations.last().expect("a store prices at least one deployment");
        let chunks = self.chunks();
        let half = if chunks.len() >= 2 { chunks[chunks.len() / 2].0 as u64 } else { self.sites as u64 };
        vec![
            StoreQuery { mitigations: first, profile_index: 1, lo: 0, hi: self.sites as u64 },
            StoreQuery { mitigations: last, profile_index: 2, lo: 0, hi: self.sites as u64 },
            StoreQuery { mitigations: last, profile_index: 1, lo: 0, hi: half },
        ]
    }
}

/// A priced what-if question: one stored deployment, one link profile, one
/// chunk-aligned slice `[lo, hi)` of the site-rank list.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreQuery {
    /// The deployment to price (must be one of [`StoreConfig::mitigations`]).
    pub mitigations: MitigationSet,
    /// Index into [`StoreConfig::profiles`].
    pub profile_index: usize,
    /// First site rank of the slice (inclusive; chunk-aligned).
    pub lo: u64,
    /// One past the last site rank (exclusive; chunk-aligned or the
    /// population end).
    pub hi: u64,
}

/// A profile name as queries spell it (preset names are already single
/// tokens: datacenter, broadband, lossy-cellular).
fn profile_token(profile: &LinkProfile) -> String {
    profile.name.clone()
}

impl StoreQuery {
    /// Parse the query grammar: whitespace-separated `key=value` tokens.
    ///
    /// ```text
    /// mitigations=<label>   "none", "all", or '+'-joined labels (ORIGIN+SYNC-DNS)
    /// profile=<name>        datacenter | broadband | lossy-cellular (default broadband)
    /// ranks=<lo>..<hi>      chunk-aligned site-rank slice (default the whole store)
    /// ```
    ///
    /// Errors are user-facing strings (the serve bin maps them to exit
    /// status 2): unknown keys, deployments the store does not price, and
    /// rank bounds that do not land on chunk boundaries are all refused
    /// with the valid alternatives spelled out.
    pub fn parse(text: &str, config: &StoreConfig) -> Result<StoreQuery, String> {
        let mut mitigations = None;
        let mut profile = None;
        let mut ranks = None;
        for token in text.split_whitespace() {
            let (key, value) =
                token.split_once('=').ok_or_else(|| format!("token '{token}' is not key=value"))?;
            match key {
                "mitigations" => mitigations = Some(parse_mitigations(value, config)?),
                "profile" => profile = Some(parse_profile(value, config)?),
                "ranks" => ranks = Some(parse_ranks(value, config)?),
                other => {
                    return Err(format!("unknown key '{other}' (expected mitigations=, profile=, ranks=)"))
                }
            }
        }
        let mitigations = mitigations.ok_or("query needs mitigations=<label>")?;
        let (lo, hi) = ranks.unwrap_or((0, config.sites as u64));
        Ok(StoreQuery { mitigations, profile_index: profile.unwrap_or(1), lo, hi })
    }

    /// The query echoed back in the grammar it is written in.
    pub fn render(&self, config: &StoreConfig) -> String {
        format!(
            "mitigations={} profile={} ranks={}..{}",
            self.mitigations.label(),
            profile_token(&config.profiles()[self.profile_index]),
            self.lo,
            self.hi
        )
    }
}

fn parse_mitigations(value: &str, config: &StoreConfig) -> Result<MitigationSet, String> {
    let set = match value {
        "none" => MitigationSet::empty(),
        "all" => MitigationSet::all(),
        labels => {
            let mut set = MitigationSet::empty();
            for label in labels.split('+') {
                let mitigation =
                    Mitigation::ALL.into_iter().find(|m| m.label() == label).ok_or_else(|| {
                        format!(
                            "unknown mitigation '{label}' (known: none, all, {})",
                            Mitigation::ALL.map(Mitigation::label).join(", ")
                        )
                    })?;
                set = set.with(mitigation);
            }
            set
        }
    };
    if !config.mitigations.contains(&set) {
        return Err(format!(
            "deployment '{}' is not stored; stored deployments: {}",
            set.label(),
            config.mitigations.iter().map(|m| m.label()).collect::<Vec<_>>().join(", ")
        ));
    }
    Ok(set)
}

fn parse_profile(value: &str, config: &StoreConfig) -> Result<usize, String> {
    let profiles = config.profiles();
    profiles.iter().position(|profile| profile_token(profile) == value).ok_or_else(|| {
        format!(
            "unknown profile '{value}' (known: {})",
            profiles.iter().map(profile_token).collect::<Vec<_>>().join(", ")
        )
    })
}

fn parse_ranks(value: &str, config: &StoreConfig) -> Result<(u64, u64), String> {
    let (lo, hi) = value.split_once("..").ok_or_else(|| format!("ranks '{value}' is not <lo>..<hi>"))?;
    let lo: u64 = lo.parse().map_err(|_| format!("rank '{lo}' is not a number"))?;
    let hi: u64 = hi.parse().map_err(|_| format!("rank '{hi}' is not a number"))?;
    let sites = config.sites as u64;
    if lo >= hi || hi > sites {
        return Err(format!("ranks {lo}..{hi} must satisfy lo < hi <= {sites}"));
    }
    let aligned = |rank: u64| rank == sites || rank.is_multiple_of(config.chunk_sites.max(1) as u64);
    if !aligned(lo) || !aligned(hi) {
        return Err(format!(
            "ranks {lo}..{hi} must land on chunk boundaries (multiples of {}, or the population \
             end {sites}) — shards are the unit of storage",
            config.chunk_sites.max(1)
        ));
    }
    Ok((lo, hi))
}

/// What a build did: how much of the store it could keep.
#[derive(Clone, Debug, PartialEq)]
pub struct BuildReport {
    /// The configuration the store was built under.
    pub config: StoreConfig,
    /// The configuration fingerprint stamped into every shard.
    pub fingerprint: u64,
    /// Chunks (= shards) in the layout.
    pub chunk_count: usize,
    /// Records per shard (deployments × profiles).
    pub records_per_shard: usize,
    /// Shards crawled and (re)written by this build.
    pub rewritten: usize,
    /// Shards already on disk that matched the layout and were kept.
    pub reused: usize,
    /// Stale files removed from `shards/`.
    pub removed: usize,
}

impl BuildReport {
    /// Deterministic build summary (no paths, no wall-clock).
    pub fn render(&self) -> String {
        let mut table = TextTable::new(
            &format!(
                "Shard store: {} sites in {} chunks of {}, seed {}",
                format_count(self.config.sites),
                self.chunk_count,
                self.config.chunk_sites,
                self.config.seed
            ),
            &["metric", "value"],
        );
        table.push_row(["config fingerprint", &Fingerprint::from_value(self.fingerprint).hex()]);
        table.push_row([
            "deployments stored",
            &self.config.mitigations.iter().map(|m| m.label()).collect::<Vec<_>>().join(", "),
        ]);
        table.push_row([
            "link profiles",
            &self.config.profiles().iter().map(profile_token).collect::<Vec<_>>().join(", "),
        ]);
        table.push_row(["records per shard", &format_count(self.records_per_shard)]);
        format!(
            "{}shards rewritten: {} | reused: {} | stale removed: {}\n",
            table.render(),
            self.rewritten,
            self.reused,
            self.removed
        )
    }
}

/// Build (or incrementally refresh) the store at `dir`.
///
/// Dirty chunks stream through the work-stealing executor; each finished
/// shard travels a bounded channel to this thread, which writes it before
/// accepting the next (backpressure on the writer, not unbounded buffering).
/// The manifest is committed last, after every shard is verified on disk.
pub fn build_store(config: &StoreConfig, dir: &Path) -> Result<BuildReport, StoreError> {
    std::fs::create_dir_all(dir).map_err(|error| StoreError::io(dir, error))?;
    let layout = config.layout();
    let plan = BuildPlan::assess(dir, &layout)?;
    let chunks = config.chunks();
    let profiles = config.profiles();
    let deployments = DeploymentCache::standard();
    let scratch_pool = ScratchPool::without_netlog();

    let dirty = &plan.dirty;
    let mut write_error: Option<StoreError> = None;
    run_indexed_streaming(
        config.threads,
        dirty.len(),
        config.channel_capacity,
        |_worker| StoreWorker::from_pool(&scratch_pool),
        |worker, task| worker.run_chunk(config, dirty[task], chunks[dirty[task]], &deployments, &profiles),
        |_task, shard| {
            if write_error.is_none() {
                if let Err(error) = write_shard(dir, &shard) {
                    write_error = Some(error);
                }
            }
        },
    );
    if let Some(error) = write_error {
        return Err(error);
    }

    finalize_manifest(dir, &layout)?;
    Ok(BuildReport {
        config: config.clone(),
        fingerprint: layout.fingerprint,
        chunk_count: chunks.len(),
        records_per_shard: layout.keys.len(),
        rewritten: plan.dirty.len(),
        reused: plan.clean.len(),
        removed: plan.removed.len(),
    })
}

/// Open a store directory and require it to match `config`'s fingerprint.
pub fn open_store(config: &StoreConfig, dir: &Path) -> Result<ShardStore, StoreError> {
    ShardStore::open_with_fingerprint(dir, config.fingerprint())
}

/// A store worker's reusable state, mirroring the atlas chunk worker: one
/// pooled scratch arena and one streaming classifier per executor worker,
/// reused across every chunk (stolen or not).
struct StoreWorker<'pool> {
    scratch: PooledScratch<'pool>,
    classifier: FastVisitClassifier,
}

impl<'pool> StoreWorker<'pool> {
    fn from_pool(pool: &'pool ScratchPool) -> Self {
        StoreWorker { scratch: pool.checkout(), classifier: FastVisitClassifier::new() }
    }

    /// Crawl one chunk under every stored (deployment × profile) cell and
    /// assemble its shard. The population is generated once per deployment
    /// (it depends on the deployment, never on the link) and crawled once
    /// per profile — exactly the cost engine's cell discipline at the
    /// atlas's population shape, so every stochastic stream forks off the
    /// global site index.
    fn run_chunk(
        &mut self,
        config: &StoreConfig,
        chunk_index: usize,
        (start, len): (usize, usize),
        deployments: &DeploymentCache,
        profiles: &[LinkProfile],
    ) -> ShardFile {
        let chunk_guard = netsim_types::profile::enter(Stage::ChunkLoop);
        let mut records = Vec::with_capacity(config.mitigations.len() * profiles.len());
        for &mitigations in &config.mitigations {
            // Both profiles carry the atlas scenario name so generated
            // domains are identical to the atlas population's.
            let mut head = PopulationProfile::alexa();
            head.name = "atlas".to_string();
            let mut tail = PopulationProfile::archive();
            tail.name = "atlas".to_string();

            let env = PopulationBuilder::new(tail, len, config.seed + ALEXA_POPULATION_SEED_OFFSET)
                .with_site_offset(start)
                .with_zipf_profile_mix(head, config.zipf_exponent)
                .with_shared_deployment(deployments.deployment(mitigations))
                .with_mitigations(mitigations)
                .build();
            let planned_requests = env.total_planned_requests() as u64;
            let label = mitigations.label();

            for (profile_index, profile) in profiles.iter().enumerate() {
                let crawler = Crawler::new(
                    &label,
                    BrowserConfig::with_mitigations(mitigations).over_link(profile),
                    config.seed + ALEXA_CRAWL_SEED_OFFSET,
                );
                let mut accumulator = Accumulator::new();
                let mut requests = 0u64;
                let mut cost = CostTotals::new();
                for index in 0..env.sites.len() {
                    let times = crawler.visit_site_into(&mut self.scratch, &env, index);
                    requests += self.scratch.requests().len() as u64;
                    cost.absorb_visit(self.scratch.timeline());
                    if self.scratch.all_ok() {
                        netsim_types::stage!(Stage::Classify);
                        let counts =
                            classify_scratch(&mut self.classifier, &self.scratch, DurationModel::Recorded);
                        accumulator.observe_counts(&counts);
                    } else {
                        // HTTP 421 exclusions: fall back to the full pipeline.
                        netsim_types::stage!(Stage::Classify);
                        let visit = self.scratch.to_page_visit(&env.sites[index], times);
                        accumulator
                            .observe(&classify_site(&site_from_visit(&visit), DurationModel::Recorded));
                    }
                }
                records.push(ShardRecord {
                    mitigation_bits: mitigations.bits() as u64,
                    profile_index: profile_index as u64,
                    accumulator: accumulator.state(),
                    requests,
                    planned_requests,
                    cost,
                });
            }
        }
        drop(chunk_guard);
        netsim_types::profile::flush_local();
        ShardFile {
            fingerprint: config.fingerprint(),
            chunk_index: chunk_index as u64,
            start: start as u64,
            len: len as u64,
            records,
        }
    }
}

/// The answer to one what-if query: the queried slice's classification
/// summary and its priced cost, folded from stored shards (or computed in
/// memory by [`answer_in_memory`] — the two are byte-identical).
#[derive(Clone, Debug, PartialEq)]
pub struct QueryAnswer {
    /// The question.
    pub query: StoreQuery,
    /// The resolved link profile.
    pub profile: LinkProfile,
    /// Chunks folded into the answer.
    pub chunks: usize,
    /// Classification of the slice under the deployment.
    pub summary: DatasetSummary,
    /// Sites the slice covers.
    pub observed_sites: usize,
    /// Requests sent across the slice's visits.
    pub requests: u64,
    /// Requests the slice's sites planned.
    pub planned_requests: u64,
    /// Aggregate visit timelines of the slice under the cell.
    pub cost: CostTotals,
}

/// The shard-merge fold shared by the store path and the in-memory path.
struct QueryFold {
    accumulator: Accumulator,
    requests: u64,
    planned_requests: u64,
    cost: CostTotals,
    chunks: usize,
}

impl QueryFold {
    fn new() -> Self {
        QueryFold {
            accumulator: Accumulator::new(),
            requests: 0,
            planned_requests: 0,
            cost: CostTotals::new(),
            chunks: 0,
        }
    }

    fn absorb(&mut self, record: &ShardRecord) {
        self.accumulator.merge(&Accumulator::from_state(&record.accumulator));
        self.requests += record.requests;
        self.planned_requests += record.planned_requests;
        self.cost.merge(&record.cost);
        self.chunks += 1;
    }

    fn finish(self, config: &StoreConfig, query: &StoreQuery) -> QueryAnswer {
        let observed_sites = self.accumulator.observed_sites();
        QueryAnswer {
            query: *query,
            profile: config.profiles()[query.profile_index].clone(),
            chunks: self.chunks,
            summary: self.accumulator.finish(&query.mitigations.label()),
            observed_sites,
            requests: self.requests,
            planned_requests: self.planned_requests,
            cost: self.cost,
        }
    }
}

/// The record index of a query's (deployment, profile) cell, and the chunk
/// indices its rank slice covers.
fn query_targets(config: &StoreConfig, query: &StoreQuery) -> Result<(usize, Vec<usize>), StoreError> {
    let key = (query.mitigations.bits() as u64, query.profile_index as u64);
    let record_index =
        config.keys().iter().position(|&k| k == key).ok_or_else(|| StoreError::LayoutMismatch {
            path: String::new(),
            message: format!("the store does not price cell ({}, profile {})", query.mitigations, key.1),
        })?;
    let covered = config
        .chunks()
        .iter()
        .enumerate()
        .filter(|&(_, &(start, len))| start as u64 >= query.lo && (start + len) as u64 <= query.hi)
        .map(|(index, _)| index)
        .collect();
    Ok((record_index, covered))
}

/// Answer a query from a persisted store: read each covered chunk's shard
/// (workers verify checksums in parallel) and fold the queried record
/// through the shard-merge monoid as results stream in over the bounded
/// channel. No site is ever re-crawled.
pub fn answer_query(
    store: &ShardStore,
    config: &StoreConfig,
    query: &StoreQuery,
) -> Result<QueryAnswer, StoreError> {
    let (record_index, covered) = query_targets(config, query)?;
    let mut fold = QueryFold::new();
    let mut failure: Option<StoreError> = None;
    run_indexed_streaming(
        config.threads,
        covered.len(),
        config.channel_capacity,
        |_worker| (),
        |_state, task| store.read_chunk(covered[task]),
        |_task, result| match result {
            Ok(shard) => fold.absorb(&shard.records[record_index]),
            Err(error) => {
                if failure.is_none() {
                    failure = Some(error);
                }
            }
        },
    );
    if let Some(error) = failure {
        return Err(error);
    }
    Ok(fold.finish(config, query))
}

/// Answer the same query **without** a store: crawl the covered chunks in
/// memory and fold the identical records. The round-trip tests pin
/// `answer_in_memory(..) == answer_query(..)` byte-for-byte — the store is
/// a cache of this computation, never an approximation of it.
pub fn answer_in_memory(config: &StoreConfig, query: &StoreQuery) -> Result<QueryAnswer, StoreError> {
    let (record_index, covered) = query_targets(config, query)?;
    let chunks = config.chunks();
    let profiles = config.profiles();
    let deployments = DeploymentCache::standard();
    let scratch_pool = ScratchPool::without_netlog();
    let mut fold = QueryFold::new();
    run_indexed_streaming(
        config.threads,
        covered.len(),
        config.channel_capacity,
        |_worker| StoreWorker::from_pool(&scratch_pool),
        |worker, task| {
            worker.run_chunk(config, covered[task], chunks[covered[task]], &deployments, &profiles)
        },
        |_task, shard| fold.absorb(&shard.records[record_index]),
    );
    Ok(fold.finish(config, query))
}

impl QueryAnswer {
    /// Deterministic answer table: the slice's redundancy and its price
    /// under the queried link.
    pub fn render(&self, config: &StoreConfig) -> String {
        let sums = &self.cost.sums;
        let mut table =
            TextTable::new(&format!("What-if: {}", self.query.render(config)), &["metric", "value"]);
        table.push_row(["chunks folded", &format_count(self.chunks)]);
        table.push_row(["sites covered", &format_count(self.observed_sites)]);
        table.push_row(["HTTP/2 sites", &format_count(self.summary.total.sites)]);
        table.push_row(["connections", &format_count(self.summary.total.connections)]);
        table.push_row(["redundant connections", &format_count(self.summary.redundant.connections)]);
        table.push_row(["redundant conn. share", &format_percent(self.summary.redundant_connection_share())]);
        table.push_row(["redundant site share", &format_percent(self.summary.redundant_site_share())]);
        table.push_row([
            "requests sent / planned",
            &format!(
                "{} / {}",
                format_count(self.requests as usize),
                format_count(self.planned_requests as usize)
            ),
        ]);
        table.push_row(["handshake RTTs", &format_count(sums.handshake_rtts as usize)]);
        table.push_row(["handshake volume", &format!("{:.1} KiB", sums.handshake_octets as f64 / 1024.0)]);
        table.push_row(["cold-cwnd RTTs", &format_count(sums.cold_cwnd_rtts as usize)]);
        table.push_row(["DNS walks", &format_count(sums.dns_recursive_walks as usize)]);
        table
            .push_row(["setup time", &format!("{:.2} s", self.cost.setup_time(&self.profile).as_secs_f64())]);
        table.push_row(["mean page-load time", &format!("{:.1} ms", self.cost.mean_plt_millis())]);
        table.render()
    }
}

/// One full service round: build (or refresh) the store, then answer the
/// queries from disk. Shared by the `store` experiment and the
/// `connreuse-serve` bin, so the CI smoke can diff the bin's output against
/// the experiment's golden snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct StoreRunReport {
    /// What the build did.
    pub build: BuildReport,
    /// One answer per query, in query order.
    pub answers: Vec<QueryAnswer>,
}

impl StoreRunReport {
    /// Render the build summary followed by every answer.
    pub fn render(&self) -> String {
        let mut out = self.build.render();
        for answer in &self.answers {
            out.push('\n');
            out.push_str(&answer.render(&self.build.config));
        }
        out
    }
}

/// Build/refresh the store at `dir` and answer `queries` from it.
pub fn run_store(
    config: &StoreConfig,
    dir: &Path,
    queries: &[StoreQuery],
) -> Result<StoreRunReport, StoreError> {
    let build = build_store(config, dir)?;
    let store = open_store(config, dir)?;
    let mut answers = Vec::with_capacity(queries.len());
    for query in queries {
        answers.push(answer_query(&store, config, query)?);
    }
    Ok(StoreRunReport { build, answers })
}

/// The `store` experiment: build a fresh demo store in a scratch directory,
/// answer the demo queries, and render the whole round. The directory is
/// unique per call and removed afterwards, so the output is identical on
/// every run (the build always reports a full rewrite).
pub fn run_store_demo(config: &StoreConfig) -> String {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static DEMOS: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "connreuse-store-demo-{}-{}",
        std::process::id(),
        DEMOS.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let report = run_store(config, &dir, &config.demo_queries())
        .unwrap_or_else(|error| panic!("store demo build failed: {error}"));
    let _ = std::fs::remove_dir_all(&dir);
    report.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> StoreConfig {
        StoreConfig {
            sites: 36,
            chunk_sites: 12,
            seed: 7,
            threads: 2,
            mitigations: StoreConfig::demo_mitigations(),
            ..StoreConfig::default()
        }
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("connreuse-exp-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn layout_covers_the_population_with_all_keys() {
        let config = tiny();
        let layout = config.layout();
        assert_eq!(layout.chunks, vec![(0, 12), (12, 12), (24, 12)]);
        assert_eq!(layout.keys.len(), 3 * 3);
        assert_eq!(layout.keys[0], (0, 0));
        assert_eq!(layout.keys[8], (MitigationSet::all().bits() as u64, 2));
        assert_eq!(layout.sites(), 36);
    }

    #[test]
    fn fingerprint_ignores_scale_knobs_but_tracks_content_knobs() {
        let base = tiny();
        let fingerprint = base.fingerprint();
        assert_eq!(StoreConfig { sites: 999, ..base.clone() }.fingerprint(), fingerprint);
        assert_eq!(StoreConfig { threads: 9, ..base.clone() }.fingerprint(), fingerprint);
        assert_eq!(StoreConfig { channel_capacity: 99, ..base.clone() }.fingerprint(), fingerprint);
        assert_ne!(StoreConfig { seed: 8, ..base.clone() }.fingerprint(), fingerprint);
        assert_ne!(StoreConfig { chunk_sites: 6, ..base.clone() }.fingerprint(), fingerprint);
        assert_ne!(StoreConfig { zipf_exponent: 0.5, ..base.clone() }.fingerprint(), fingerprint);
        assert_ne!(
            StoreConfig { mitigations: vec![MitigationSet::empty()], ..base.clone() }.fingerprint(),
            fingerprint
        );
    }

    #[test]
    fn quick_config_matches_the_quick_scenario() {
        // The CI smoke diffs `connreuse-serve --quick` against the golden
        // snapshot rendered under ScenarioConfig::quick(); the two configs
        // must stay fingerprint-identical.
        assert_eq!(
            StoreConfig::quick().fingerprint(),
            StoreConfig::from_scenario(&ScenarioConfig::quick()).fingerprint()
        );
        assert_eq!(StoreConfig::quick().sites, ScenarioConfig::quick().alexa_sites);
    }

    #[test]
    fn built_store_answers_queries_identically_to_memory() {
        let config = tiny();
        let dir = temp_dir("roundtrip");
        let report = run_store(&config, &dir, &config.demo_queries()).unwrap();
        assert_eq!(report.build.rewritten, 3);
        assert_eq!(report.build.reused, 0);
        for (query, stored) in config.demo_queries().iter().zip(&report.answers) {
            let computed = answer_in_memory(&config, query).unwrap();
            assert_eq!(stored, &computed, "stored answer diverged for {}", query.render(&config));
            assert_eq!(stored.render(&config), computed.render(&config));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn second_build_rewrites_zero_shards() {
        let config = tiny();
        let dir = temp_dir("idempotent");
        build_store(&config, &dir).unwrap();
        let again = build_store(&config, &dir).unwrap();
        assert_eq!(again.rewritten, 0);
        assert_eq!(again.reused, 3);
        assert!(again.render().contains("shards rewritten: 0"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rank_slices_fold_only_their_chunks() {
        let config = tiny();
        let dir = temp_dir("slice");
        build_store(&config, &dir).unwrap();
        let store = open_store(&config, &dir).unwrap();
        let full = StoreQuery { mitigations: MitigationSet::all(), profile_index: 1, lo: 0, hi: 36 };
        let head = StoreQuery { lo: 0, hi: 12, ..full };
        let tail = StoreQuery { lo: 12, hi: 36, ..full };
        let full = answer_query(&store, &config, &full).unwrap();
        let head = answer_query(&store, &config, &head).unwrap();
        let tail = answer_query(&store, &config, &tail).unwrap();
        assert_eq!(head.chunks, 1);
        assert_eq!(tail.chunks, 2);
        assert_eq!(head.observed_sites + tail.observed_sites, full.observed_sites);
        assert_eq!(head.requests + tail.requests, full.requests);
        assert_eq!(
            head.cost.sums.handshake_rtts + tail.cost.sums.handshake_rtts,
            full.cost.sums.handshake_rtts
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn query_grammar_round_trips_and_rejects_bad_input() {
        let config = tiny();
        let query =
            StoreQuery::parse("mitigations=COALESCE-CERT profile=lossy-cellular ranks=12..36", &config)
                .unwrap();
        assert_eq!(query.mitigations, MitigationSet::single(Mitigation::CertificateCoalescing));
        assert_eq!(query.profile_index, 2);
        assert_eq!((query.lo, query.hi), (12, 36));
        assert_eq!(StoreQuery::parse(&query.render(&config), &config).unwrap(), query);

        // Defaults: broadband, the whole store.
        let default = StoreQuery::parse("mitigations=none", &config).unwrap();
        assert_eq!(default.profile_index, 1);
        assert_eq!((default.lo, default.hi), (0, 36));

        for bad in [
            "profile=broadband",               // no deployment
            "mitigations=WARP-DRIVE",          // unknown label
            "mitigations=ORIGIN",              // known label, not stored
            "mitigations=none profile=dialup", // unknown profile
            "mitigations=none ranks=5..36",    // misaligned lo
            "mitigations=none ranks=0..13",    // misaligned hi
            "mitigations=none ranks=24..12",   // reversed
            "mitigations=none ranks=0..99",    // beyond the store
            "mitigations=none speed=11",       // unknown key
            "gibberish",                       // not key=value
        ] {
            assert!(StoreQuery::parse(bad, &config).is_err(), "'{bad}' should not parse");
        }
    }

    #[test]
    fn demo_queries_are_valid_against_their_config() {
        for config in [tiny(), StoreConfig::quick()] {
            for query in config.demo_queries() {
                let echoed = query.render(&config);
                assert_eq!(StoreQuery::parse(&echoed, &config).unwrap(), query, "{echoed}");
            }
        }
    }

    #[test]
    fn demo_render_is_stable_and_names_every_query() {
        let config = tiny();
        let first = run_store_demo(&config);
        let second = run_store_demo(&config);
        assert_eq!(first, second, "demo render must be deterministic across runs");
        assert!(first.contains("Shard store"));
        assert!(first.contains("shards rewritten: 3"));
        for query in config.demo_queries() {
            assert!(first.contains(&query.render(&config)), "missing {}", query.render(&config));
        }
    }
}
