//! Rendering and serialising the hotpath profiler's stage tables.
//!
//! The collector lives in [`netsim_types::profile`]; this module is the
//! reporting side `connreuse-atlas --profile` uses:
//!
//! * [`render_stage_table`] — the human-readable per-stage table, printed to
//!   **stderr** next to the throughput metrics (stage timings are wall-clock
//!   and machine-dependent, so they must never contaminate the deterministic
//!   stdout report — the same rule `AtlasMetrics` follows),
//! * [`ProfileFile`] — the machine-readable `--profile-json` schema the
//!   bench guard's per-stage budget check reads. Budgets live in the
//!   committed `BENCH_stages.json` baseline: one `max_share` per stage name,
//!   compared against each fresh record's `share` field (see
//!   `scripts/bench_guard.sh` and the PERF.md runbook).
//!
//! Shares are of [`StageTable::measured_total_nanos`] — the non-scaffold
//! stages only. The scaffold `chunk-loop` row still appears in both outputs
//! (its total is the wall-clock envelope, its share is reported as the
//! *coverage* of the measured stages within it), but it carries no budget.

use crate::render::TextTable;
use netsim_types::profile::{Stage, StageTable};
use serde::{Deserialize, Serialize};

/// Schema version of [`ProfileFile`]. Version 1: `stages` rows with
/// `stage` / `count` / `total_nanos` / `min_nanos` / `max_nanos` /
/// `mean_nanos` / `share` fields.
pub const PROFILE_SCHEMA: u32 = 1;

/// One stage's aggregate, flattened for serialisation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProfileRecord {
    /// Stable stage name ([`Stage::name`]) — the budget key.
    pub stage: String,
    /// Times the stage scope ran.
    pub count: u64,
    /// Total nanoseconds across all entries.
    pub total_nanos: u64,
    /// Fastest single entry.
    pub min_nanos: u64,
    /// Slowest single entry.
    pub max_nanos: u64,
    /// Mean nanoseconds per entry.
    pub mean_nanos: f64,
    /// Share of the measured (non-scaffold) total, in `[0, 1]`; `0` for
    /// scaffold rows.
    pub share: f64,
}

/// The `--profile-json` file: every stage that recorded at least once.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProfileFile {
    /// Schema version ([`PROFILE_SCHEMA`]).
    pub schema: u32,
    /// Per-stage records, in [`Stage::ALL`] order, empty rows omitted.
    pub stages: Vec<ProfileRecord>,
}

impl ProfileFile {
    /// Flatten a merged stage table into the serialisable schema.
    pub fn from_table(table: &StageTable) -> Self {
        let stages = table
            .iter()
            .filter(|(_, stats)| stats.count > 0)
            .map(|(stage, stats)| ProfileRecord {
                stage: stage.name().to_string(),
                count: stats.count,
                total_nanos: stats.total_nanos,
                min_nanos: stats.min_nanos,
                max_nanos: stats.max_nanos,
                mean_nanos: stats.mean_nanos(),
                share: table.share_of_measured(stage),
            })
            .collect();
        ProfileFile { schema: PROFILE_SCHEMA, stages }
    }
}

/// Render the merged stage table as a human-readable text table (one row
/// per stage that ran, plus a coverage line relating the measured stages to
/// the scaffold envelope). Returns a diagnostic hint instead when the table
/// is empty — typically a build without the `hotpath-profile` feature.
pub fn render_stage_table(table: &StageTable) -> String {
    if table.is_empty() {
        return if netsim_types::profile::enabled() {
            "profile: no stages recorded (nothing ran inside instrumented scopes)\n".to_string()
        } else {
            "profile: this build carries no instrumentation — rebuild with \
             `--features hotpath-profile` to collect stage timings\n"
                .to_string()
        };
    }

    let mut text_table = TextTable::new(
        "Hotpath stages (wall-clock, merged across workers)",
        &["stage", "count", "total ms", "mean µs", "min µs", "max µs", "share"],
    );
    for (stage, stats) in table.iter() {
        if stats.count == 0 {
            continue;
        }
        let share = if stage.is_scaffold() {
            "—".to_string()
        } else {
            format!("{:.1} %", table.share_of_measured(stage) * 100.0)
        };
        text_table.push_row([
            stage.name().to_string(),
            stats.count.to_string(),
            format!("{:.2}", stats.total_nanos as f64 / 1e6),
            format!("{:.2}", stats.mean_nanos() / 1e3),
            format!("{:.2}", stats.min_nanos as f64 / 1e3),
            format!("{:.2}", stats.max_nanos as f64 / 1e3),
            share,
        ]);
    }

    let mut out = text_table.render();
    let envelope = table.stats(Stage::ChunkLoop).total_nanos;
    if envelope > 0 {
        out.push_str(&format!(
            "measured stages cover {:.1} % of the chunk-loop envelope (rest: generation, \
             scheduling, unprofiled glue)\n",
            table.measured_total_nanos() as f64 / envelope as f64 * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> StageTable {
        let mut table = StageTable::new();
        for nanos in [1_000, 3_000] {
            table.record(Stage::DnsWalk, nanos);
        }
        table.record(Stage::Handshake, 6_000);
        table.record(Stage::ChunkLoop, 20_000);
        table
    }

    #[test]
    fn profile_file_flattens_non_empty_rows_with_shares() {
        let file = ProfileFile::from_table(&sample_table());
        assert_eq!(file.schema, PROFILE_SCHEMA);
        let names: Vec<&str> = file.stages.iter().map(|row| row.stage.as_str()).collect();
        assert_eq!(names, vec!["dns-walk", "handshake", "chunk-loop"]);
        let dns = &file.stages[0];
        assert_eq!((dns.count, dns.total_nanos, dns.min_nanos, dns.max_nanos), (2, 4_000, 1_000, 3_000));
        assert_eq!(dns.mean_nanos, 2_000.0);
        assert_eq!(dns.share, 0.4);
        // The scaffold envelope is recorded but budget-free.
        assert_eq!(file.stages[2].share, 0.0);
    }

    #[test]
    fn profile_json_round_trips() {
        let file = ProfileFile::from_table(&sample_table());
        let json = serde_json::to_string_pretty(&file).unwrap();
        let back: ProfileFile = serde_json::from_str(&json).unwrap();
        assert_eq!(back, file);
    }

    #[test]
    fn rendered_table_names_every_recorded_stage() {
        let text = render_stage_table(&sample_table());
        assert!(text.contains("dns-walk"));
        assert!(text.contains("handshake"));
        assert!(text.contains("chunk-loop"));
        assert!(text.contains("40.0 %"), "dns-walk share of the measured total:\n{text}");
        assert!(text.contains("cover 50.0 %"), "coverage of the scaffold envelope:\n{text}");
    }

    #[test]
    fn empty_table_renders_a_hint_not_a_table() {
        let text = render_stage_table(&StageTable::new());
        assert!(text.starts_with("profile:"));
        // The hint names the feature whenever this build lacks it.
        if !netsim_types::profile::enabled() {
            assert!(text.contains("hotpath-profile"));
        }
    }
}
