//! The mitigation sweep engine: the full 2^4 what-if matrix over the
//! deployable fixes the paper's conclusion proposes.
//!
//! The single `whatif` experiment spot-checks three deployments; the sweep
//! runs the *entire grid*: every combination of [`Mitigation::OriginFrames`],
//! [`Mitigation::SynchronizedDns`], [`Mitigation::CertificateCoalescing`]
//! and [`Mitigation::CredentialPooling`] — 16 cells. Each cell generates an
//! Alexa-shaped population deployed under its mitigation set (same sites,
//! same request plans; only DNS/PKI deployment differs), crawls it with the
//! matching browser policy, classifies the redundancy, and the report
//! compares:
//!
//! * per-cell measurements (connections opened, classified redundancy,
//!   per-cause counts),
//! * each mitigation's **solo** savings (that mitigation alone vs. the
//!   measured web),
//! * each mitigation's **marginal** savings (averaged over all 8 cells it
//!   can be added to — the grid makes interaction effects visible),
//! * the **combined** savings of the full set.
//!
//! The headline metric is **connections saved**: how many connections the
//! browser did not have to open under the deployment. Classified redundancy
//! is reported per cell but is *not* monotone under mitigation — e.g.
//! synchronizing DNS moves third parties that were unavoidable (different
//! address, disjunct certificates) onto shared addresses, where the
//! classifier now counts them as `CERT` coalescing potential. Fewer real
//! connections, more visible potential; the report footer calls this out.
//!
//! ## Sharding and determinism
//!
//! Cells are independent, so the runner shards the grid across worker
//! threads in fixed-size chunks (cell index = mitigation bits). Every
//! stochastic choice inside a cell flows from RNG streams forked off the
//! root seed by *stable labels* (site index, visit index), never from shard
//! or thread identity — so `threads = 1` and `threads = 8` produce
//! byte-identical reports (asserted in `tests/determinism.rs`). All cells
//! deliberately share the same population and crawl seeds: a cell differs
//! from the baseline only by its deployment, which is what makes the
//! per-mitigation deltas meaningful.

use crate::render::{format_count, format_percent, TextTable};
use crate::scenario::{ScenarioConfig, ALEXA_CRAWL_SEED_OFFSET, ALEXA_POPULATION_SEED_OFFSET};
use connreuse_core::{classify_dataset, dataset_from_crawl, Cause, DatasetSummary, DurationModel};
use netsim_browser::{BrowserConfig, Crawler};
use netsim_types::{Mitigation, MitigationSet};
use netsim_web::{PopulationBuilder, PopulationProfile};
use serde::{Deserialize, Serialize};

/// Sizing and seeding of one sweep run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Sites per cell population (Alexa-shaped).
    pub sites: usize,
    /// Root seed; cells share it so that only the deployment differs.
    pub seed: u64,
    /// Worker threads the 16 cells are sharded across.
    pub threads: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        let scenario = ScenarioConfig::default();
        SweepConfig { sites: scenario.alexa_sites, seed: scenario.seed, threads: scenario.threads }
    }
}

impl SweepConfig {
    /// A small configuration for tests, examples and the CI smoke run.
    pub fn quick() -> Self {
        SweepConfig { sites: 120, ..SweepConfig::default() }
    }

    /// The sweep that matches a scenario: same Alexa population size, same
    /// seed, same thread budget — so the sweep's baseline cell reproduces
    /// the scenario's own Alexa measurement.
    pub fn from_scenario(config: &ScenarioConfig) -> Self {
        SweepConfig { sites: config.alexa_sites, seed: config.seed, threads: config.threads }
    }
}

/// One cell of the sweep grid: a mitigation combination and the classified
/// summary of the crawl measured under it.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepCell {
    /// The deployed mitigation combination.
    pub mitigations: MitigationSet,
    /// Classified redundancy of the cell's crawl (recorded durations).
    pub summary: DatasetSummary,
}

/// The completed sweep: all 16 cells, ordered by mitigation bits (cell 0 is
/// the measured web, cell 15 the full deployment).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// The configuration the sweep ran with.
    pub config: SweepConfig,
    /// One cell per mitigation combination, indexed by [`MitigationSet::bits`].
    pub cells: Vec<SweepCell>,
}

/// Run the full mitigation sweep: all 16 cells, sharded across
/// `config.threads` worker threads.
pub fn run_sweep(config: &SweepConfig) -> SweepReport {
    let combos = MitigationSet::all_combinations();
    let mut cells: Vec<Option<SweepCell>> = Vec::new();
    cells.resize_with(combos.len(), || None);

    let threads = config.threads.clamp(1, combos.len());
    if threads <= 1 {
        for (cell, combo) in cells.iter_mut().zip(&combos) {
            *cell = Some(run_cell(config, *combo));
        }
    } else {
        let chunk = combos.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for (slot, shard) in cells.chunks_mut(chunk).zip(combos.chunks(chunk)) {
                scope.spawn(move || {
                    for (cell, combo) in slot.iter_mut().zip(shard) {
                        *cell = Some(run_cell(config, *combo));
                    }
                });
            }
        });
    }

    SweepReport { config: *config, cells: cells.into_iter().map(|c| c.expect("every cell ran")).collect() }
}

/// Measure one cell: population deployed under the mitigations, crawled with
/// the matching browser policy, classified with recorded durations.
///
/// The seeds reuse [`crate::scenario::Scenario::build`]'s Alexa offsets, so
/// the baseline cell equals the scenario's own Alexa run (asserted in the
/// tests below). Crawls are single-threaded here — the parallelism lives at
/// the cell level, and visit results are independent of crawl threading
/// anyway.
fn run_cell(config: &SweepConfig, mitigations: MitigationSet) -> SweepCell {
    let env = PopulationBuilder::new(
        PopulationProfile::alexa(),
        config.sites,
        config.seed + ALEXA_POPULATION_SEED_OFFSET,
    )
    .with_mitigations(mitigations)
    .build();
    let label = mitigations.label();
    let report = Crawler::new(
        &label,
        BrowserConfig::with_mitigations(mitigations),
        config.seed + ALEXA_CRAWL_SEED_OFFSET,
    )
    .crawl(&env);
    let dataset = dataset_from_crawl(&report);
    let summary =
        DatasetSummary::from_classifications(&label, &classify_dataset(&dataset, DurationModel::Recorded));
    SweepCell { mitigations, summary }
}

impl SweepReport {
    /// The cell measuring one mitigation combination.
    pub fn cell(&self, mitigations: MitigationSet) -> &SweepCell {
        &self.cells[mitigations.bits() as usize]
    }

    /// The measured-web cell (no mitigation deployed).
    pub fn baseline(&self) -> &SweepCell {
        self.cell(MitigationSet::empty())
    }

    /// Connections the deployment avoided opening, vs. the measured web.
    /// Every avoided connection was a redundant one (the request rode an
    /// existing session instead).
    pub fn connections_saved(&self, mitigations: MitigationSet) -> usize {
        let baseline = self.baseline().summary.total.connections;
        baseline.saturating_sub(self.cell(mitigations).summary.total.connections)
    }

    /// Connection savings of a combination vs. the baseline, as a share of
    /// all baseline connections (the metric the `whatif` experiment quotes).
    pub fn savings(&self, mitigations: MitigationSet) -> f64 {
        let baseline = self.baseline().summary.total.connections;
        if baseline == 0 {
            return 0.0;
        }
        self.connections_saved(mitigations) as f64 / baseline as f64
    }

    /// Savings when only `mitigation` is deployed.
    pub fn solo_savings(&self, mitigation: Mitigation) -> f64 {
        self.savings(MitigationSet::single(mitigation))
    }

    /// Marginal savings of `mitigation`: the mean drop in opened connections
    /// (relative to baseline connections) over all 8 combinations it can be
    /// added to. Solo and marginal together separate a mitigation's own
    /// effect from overlap with the others.
    pub fn marginal_savings(&self, mitigation: Mitigation) -> f64 {
        let baseline = self.baseline().summary.total.connections;
        if baseline == 0 {
            return 0.0;
        }
        let mut total = 0.0;
        let mut count = 0usize;
        for combo in MitigationSet::all_combinations() {
            if combo.contains(mitigation) {
                continue;
            }
            let without = self.cell(combo).summary.total.connections as f64;
            let with = self.cell(combo.with(mitigation)).summary.total.connections as f64;
            total += (without - with) / baseline as f64;
            count += 1;
        }
        total / count as f64
    }

    /// Savings of the full deployment (all four mitigations).
    pub fn combined_savings(&self) -> f64 {
        self.savings(MitigationSet::all())
    }

    /// Classified-redundancy change of a combination vs. the baseline
    /// (positive = fewer connections classified redundant). Unlike
    /// [`SweepReport::savings`] this can go *negative*: a mitigation can
    /// expose coalescing potential the baseline deployment hid (see the
    /// module docs).
    pub fn redundant_reduction(&self, mitigations: MitigationSet) -> f64 {
        let baseline = self.baseline().summary.redundant.connections;
        if baseline == 0 {
            return 0.0;
        }
        1.0 - self.cell(mitigations).summary.redundant.connections as f64 / baseline as f64
    }

    /// Render the comparison report: the 16-cell grid, the per-mitigation
    /// effect table and the combined-deployment summary line.
    pub fn render(&self) -> String {
        let baseline = &self.baseline().summary;
        let mut grid = TextTable::new(
            &format!(
                "Mitigation sweep: connections per deployment ({} sites, seed {}, recorded durations)",
                self.config.sites, self.config.seed
            ),
            &["deployment", "conns.", "saved", "redundant", "red. sites", "IP", "CRED", "CERT"],
        );
        for cell in &self.cells {
            grid.push_row([
                cell.mitigations.label(),
                format_count(cell.summary.total.connections),
                format_percent(self.savings(cell.mitigations)),
                format_count(cell.summary.redundant.connections),
                format_percent(cell.summary.redundant_site_share()),
                format_count(cell.summary.cause(Cause::Ip).connections),
                format_count(cell.summary.cause(Cause::Cred).connections),
                format_count(cell.summary.cause(Cause::Cert).connections),
            ]);
        }

        let mut effects = TextTable::new(
            "Per-mitigation effect (connections saved vs. the measured web)",
            &["mitigation", "solo", "marginal (mean over 8 pairs)", "what it deploys"],
        );
        for mitigation in Mitigation::ALL {
            effects.push_row([
                mitigation.label().to_string(),
                format_percent(self.solo_savings(mitigation)),
                format_percent(self.marginal_savings(mitigation)),
                mitigation.description().to_string(),
            ]);
        }

        format!(
            "{}\n{}\nbaseline: {} redundant of {} connections on {} sites | combined deployment \
             saves {} connections ({}), removing {} of the classified redundancy\nnote: \
             'redundant' counts the classifier's coalescing potential under each deployment; a \
             mitigation can expose potential the measured web hid (e.g. synchronized DNS turns \
             unavoidable third parties into CERT-coalescible pairs), so that column is not \
             monotone — 'saved' is.\n",
            grid.render(),
            effects.render(),
            format_count(baseline.redundant.connections),
            format_count(baseline.total.connections),
            format_count(baseline.total.sites),
            format_count(self.connections_saved(MitigationSet::all())),
            format_percent(self.combined_savings()),
            format_percent(self.redundant_reduction(MitigationSet::all())),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn shared_report() -> &'static SweepReport {
        static REPORT: OnceLock<SweepReport> = OnceLock::new();
        REPORT.get_or_init(|| run_sweep(&SweepConfig { sites: 80, seed: 20_210_420, threads: 8 }))
    }

    #[test]
    fn sweep_covers_the_whole_grid_in_order() {
        let report = shared_report();
        assert_eq!(report.cells.len(), MitigationSet::COMBINATIONS);
        for (index, cell) in report.cells.iter().enumerate() {
            assert_eq!(cell.mitigations.bits() as usize, index);
            assert!(cell.summary.total.connections > 0, "cell {index} measured nothing");
        }
        assert!(report.baseline().summary.redundant.connections > 0);
    }

    #[test]
    fn mitigations_reduce_redundancy_as_the_paper_projects() {
        let report = shared_report();
        // §7: ORIGIN-frame adoption and synchronized DNS each avoid
        // redundant connections.
        let origin = report.solo_savings(Mitigation::OriginFrames);
        let dns = report.solo_savings(Mitigation::SynchronizedDns);
        assert!(origin > 0.0, "ORIGIN frames should save connections, got {origin}");
        assert!(dns > 0.0, "synchronized DNS should save connections, got {dns}");
        // Deploying both does at least as well as either alone.
        let both =
            report.savings(MitigationSet::single(Mitigation::OriginFrames).with(Mitigation::SynchronizedDns));
        assert!(both >= origin && both >= dns, "both={both} origin={origin} dns={dns}");
        // The full deployment dominates every single mitigation.
        let combined = report.combined_savings();
        for m in Mitigation::ALL {
            assert!(combined >= report.solo_savings(m), "combined beats {m}");
        }
        assert!(combined > 0.0);
    }

    #[test]
    fn connection_savings_are_monotone_across_the_whole_grid() {
        // Every mitigation is a pure relaxation (client side) or alignment
        // (deployment side): adding one to any combination never makes the
        // browser open *more* connections.
        let report = shared_report();
        for combo in MitigationSet::all_combinations() {
            for m in Mitigation::ALL {
                if combo.contains(m) {
                    continue;
                }
                let without = report.cell(combo).summary.total.connections;
                let with = report.cell(combo.with(m)).summary.total.connections;
                assert!(
                    with <= without,
                    "adding {m} to {combo} opened more connections ({with} > {without})"
                );
            }
        }
    }

    #[test]
    fn baseline_cell_reproduces_the_scenario_alexa_measurement() {
        use crate::scenario::{Scenario, ScenarioConfig};
        use connreuse_core::classify_dataset;

        let config = ScenarioConfig {
            archive_sites: 30,
            alexa_sites: 40,
            overlap_sites: 16,
            seed: 20_210_420,
            threads: 4,
        };
        let scenario = Scenario::build(config);
        let report = run_sweep(&SweepConfig::from_scenario(&config));
        let alexa = DatasetSummary::from_classifications(
            "none", // match the baseline cell's label so the summaries compare whole
            &classify_dataset(&scenario.alexa, DurationModel::Recorded),
        );
        assert_eq!(report.baseline().summary, alexa);
    }

    #[test]
    fn classified_redundancy_reduction_is_tracked() {
        let report = shared_report();
        assert!(report.redundant_reduction(MitigationSet::empty()).abs() < f64::EPSILON);
        assert!(report.redundant_reduction(MitigationSet::single(Mitigation::OriginFrames)) > 0.0);
        // The full deployment removes at least as much classified redundancy
        // as ORIGIN frames alone (it subsumes them).
        assert!(
            report.redundant_reduction(MitigationSet::all())
                >= report.redundant_reduction(MitigationSet::single(Mitigation::OriginFrames))
        );
    }

    #[test]
    fn credential_pooling_removes_the_cred_cause() {
        let report = shared_report();
        let pooled = report.cell(MitigationSet::single(Mitigation::CredentialPooling));
        assert_eq!(pooled.summary.cause(Cause::Cred).connections, 0);
        assert!(report.baseline().summary.cause(Cause::Cred).connections > 0);
    }

    #[test]
    fn certificate_coalescing_removes_the_cert_cause() {
        let report = shared_report();
        let single = MitigationSet::single(Mitigation::CertificateCoalescing);
        assert!(report.baseline().summary.cause(Cause::Cert).connections > 0);
        assert_eq!(report.cell(single).summary.cause(Cause::Cert).connections, 0);
        // Fewer connections are actually opened, not just re-attributed.
        assert!(report.connections_saved(single) > 0);
    }

    #[test]
    fn report_renders_every_cell_and_effect() {
        let report = shared_report();
        let text = report.render();
        for cell in &report.cells {
            assert!(text.contains(&cell.mitigations.label()), "missing {}", cell.mitigations);
        }
        for m in Mitigation::ALL {
            assert!(text.contains(m.description()));
        }
    }
}
