//! The paper's published reference values.
//!
//! EXPERIMENTS.md and the `repro` binary print these next to the simulated
//! results so the *shape* comparison (who wins, rough ratios, orderings) is
//! visible at a glance. Absolute counts are not expected to match — the
//! populations are scaled down — but the percentages and rankings should.

use serde::Serialize;

/// Reference percentages from Table 1 (relative to the HTTP/2 site and
/// connection totals of each dataset).
///
/// Not `Deserialize`: the dataset label is a `&'static str`, which cannot be
/// deserialized from owned input.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct PaperTable1Reference {
    /// Dataset label used in the paper.
    pub dataset: &'static str,
    /// Fraction of sites affected by CERT.
    pub cert_sites: f64,
    /// Fraction of connections affected by CERT.
    pub cert_connections: f64,
    /// Fraction of sites affected by IP.
    pub ip_sites: f64,
    /// Fraction of connections affected by IP.
    pub ip_connections: f64,
    /// Fraction of sites affected by CRED.
    pub cred_sites: f64,
    /// Fraction of connections affected by CRED.
    pub cred_connections: f64,
    /// Fraction of sites with at least one redundant connection.
    pub redundant_sites: f64,
    /// Fraction of redundant connections.
    pub redundant_connections: f64,
}

/// The Table 1 reference rows (derived from the published absolute counts:
/// HAR endless/immediate over 5.88 M sites and 63.55 M connections, Alexa
/// over 81.55 k sites and 1.65 M connections).
pub fn table1_references() -> Vec<PaperTable1Reference> {
    vec![
        PaperTable1Reference {
            dataset: "HAR Endless",
            cert_sites: 592_950.0 / 5_880_000.0,
            cert_connections: 885_400.0 / 63_550_000.0,
            ip_sites: 4_100_000.0 / 5_880_000.0,
            ip_connections: 13_850_000.0 / 63_550_000.0,
            cred_sites: 2_540_000.0 / 5_880_000.0,
            cred_connections: 3_910_000.0 / 63_550_000.0,
            redundant_sites: 4_490_000.0 / 5_880_000.0,
            redundant_connections: 17_330_000.0 / 63_550_000.0,
        },
        PaperTable1Reference {
            dataset: "HAR Immediate",
            cert_sites: 299_710.0 / 5_880_000.0,
            cert_connections: 390_560.0 / 63_550_000.0,
            ip_sites: 1_730_000.0 / 5_880_000.0,
            ip_connections: 4_590_000.0 / 63_550_000.0,
            cred_sites: 1_350_000.0 / 5_880_000.0,
            cred_connections: 1_650_000.0 / 63_550_000.0,
            redundant_sites: 2_260_000.0 / 5_880_000.0,
            redundant_connections: 6_420_000.0 / 63_550_000.0,
        },
        PaperTable1Reference {
            dataset: "Alexa",
            cert_sites: 14_130.0 / 81_550.0,
            cert_connections: 23_630.0 / 1_650_000.0,
            ip_sites: 71_860.0 / 81_550.0,
            ip_connections: 458_460.0 / 1_650_000.0,
            cred_sites: 64_830.0 / 81_550.0,
            cred_connections: 132_670.0 / 1_650_000.0,
            redundant_sites: 77_880.0 / 81_550.0,
            redundant_connections: 574_850.0 / 1_650_000.0,
        },
        PaperTable1Reference {
            dataset: "Alexa w/o Fetch",
            cert_sites: 13_880.0 / 81_550.0,
            cert_connections: 19_300.0 / 1_500_000.0,
            ip_sites: 71_350.0 / 81_550.0,
            ip_connections: 416_910.0 / 1_500_000.0,
            cred_sites: 0.0,
            cred_connections: 0.0,
            redundant_sites: 71_700.0 / 81_550.0,
            redundant_connections: 429_440.0 / 1_500_000.0,
        },
    ]
}

/// The top `IP`-cause origins of Table 2 in paper rank order.
pub const TABLE2_TOP_ORIGINS: [&str; 4] = [
    "www.google-analytics.com",
    "www.facebook.com",
    "googleads.g.doubleclick.net",
    "pagead2.googlesyndication.com",
];

/// The top `CERT` issuers of Table 3 in paper rank order (HTTP Archive).
pub const TABLE3_TOP_ISSUERS: [&str; 3] = ["Let's Encrypt", "Google Trust Services", "DigiCert Inc"];

/// The top `CERT` domains of Table 4 (HTTP Archive order).
pub const TABLE4_TOP_DOMAINS: [&str; 3] =
    ["fast.a.klaviyo.com", "adservice.google.com", "googleads.g.doubleclick.net"];

/// The top ASes of Table 6 (HTTP Archive order).
pub const TABLE6_TOP_ASES: [&str; 3] = ["GOOGLE", "AMAZON-02", "FACEBOOK"];

/// §5.1 headline values.
pub mod headline {
    /// Fraction of HTTP-Archive HTTP/2 sites with redundancy (endless model).
    pub const HAR_ENDLESS_REDUNDANT_SITES: f64 = 0.76;
    /// Fraction of HTTP-Archive HTTP/2 sites with redundancy (immediate).
    pub const HAR_IMMEDIATE_REDUNDANT_SITES: f64 = 0.38;
    /// Fraction of Alexa sites with redundancy.
    pub const ALEXA_REDUNDANT_SITES: f64 = 0.95;
    /// Share of connections that closed before the measurement ended.
    pub const CLOSED_CONNECTION_SHARE: f64 = 0.035;
    /// Median lifetime (seconds) of those early-closing connections.
    pub const MEDIAN_LIFETIME_SECS: f64 = 122.2;
    /// Redundancy reduction when the Fetch credentials flag is ignored.
    pub const WITHOUT_FETCH_REDUCTION: f64 = 0.25;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_percentages_match_the_published_prose() {
        let rows = table1_references();
        let har_endless = &rows[0];
        assert!((har_endless.redundant_sites - 0.76).abs() < 0.02);
        assert!((har_endless.ip_sites - 0.70).abs() < 0.02);
        assert!((har_endless.cred_sites - 0.43).abs() < 0.02);
        assert!((har_endless.cert_sites - 0.10).abs() < 0.02);
        assert!((har_endless.ip_connections - 0.22).abs() < 0.02);
        let alexa = &rows[2];
        assert!((alexa.redundant_sites - 0.95).abs() < 0.02);
        assert!((alexa.ip_sites - 0.88).abs() < 0.02);
        assert!((alexa.cred_sites - 0.79).abs() < 0.02);
        assert!((alexa.cert_sites - 0.17).abs() < 0.02);
        let patched = &rows[3];
        assert_eq!(patched.cred_sites, 0.0);
    }
}
