//! The chaos grid: what deterministic faults cost each deployment, and what
//! recovery buys back.
//!
//! The fleet prices the redundancy tax of the *healthy* web. This engine
//! prices its mirror image: connection reuse and coalescing concentrate a
//! page on fewer connections, so one mid-transfer reset, dead pooled
//! connection or GOAWAY has a larger blast radius — while sharded
//! deployments spread the damage. Every cell drives the same warm
//! multi-page session trace as the fleet (default pool policy, TLS tickets,
//! session DNS cache) under a seeded [`netsim_browser::FaultProfile`] whose
//! five failure processes (DNS SERVFAIL, TLS dial failure, mid-transfer
//! reset, dead-on-reuse, GOAWAY) all run at one *failure level*:
//!
//! | level | per-process rate |
//! |---|---|
//! | `calm` | 0 ppm — the fault layer draws nothing |
//! | `degraded` | 10 000 ppm (1 %) |
//! | `hostile` | 50 000 ppm (5 %) |
//!
//! The grid is the 2^4 mitigation matrix × the three levels × the three
//! [`LinkProfile`]s (faults hurt most where retries are dearest), plus one
//! **hedged-dial** cell — the unmitigated web on hostile × lossy cellular
//! with [`netsim_browser::RetryPolicy::hedged_dials`] — quantifying the
//! "low latency via redundancy" trade: fewer backoff stalls bought with
//! extra handshake bytes.
//!
//! ## Sharding and determinism
//!
//! Mitigation combinations shard across worker threads exactly like the cost
//! sweep's (one population build per combination, nine cells crawled from
//! it). Every fault draw comes from a per-visit `fork("fault")` stream of
//! the session RNGs, which fork off the global session index — never a
//! worker id — so reports are byte-identical at any `--threads` value and
//! the calm cells are *provably* fault-free (pinned in the golden). The
//! navigation trace replays identically in all 145 cells: cells differ only
//! in deployment, failure level, link and retry policy.

use crate::fleet::choose_site;
use crate::render::{format_count, format_percent, TextTable};
use crate::scenario::{ScenarioConfig, ALEXA_POPULATION_SEED_OFFSET};
use netsim_browser::{
    Browser, BrowserConfig, FaultProfile, PoolConfig, PoolLifecycleStats, RetryPolicy, UserSession,
    VisitScratch,
};
use netsim_cost::{LinkProfile, SessionTotals};
use netsim_types::{Duration, Instant, MitigationSet, SimClock, SimRng};
use netsim_web::{PopulationBuilder, PopulationProfile, WebEnvironment};
use serde::{Deserialize, Serialize};

/// Seed offset of the chaos session streams (population uses
/// [`ALEXA_POPULATION_SEED_OFFSET`]; crawl/fleet offsets stay clear).
const CHAOS_SESSION_SEED_OFFSET: u64 = 50;

/// Identifier spacing between sessions so connection/request ids never
/// collide across a cell (mirrors the fleet's stride).
const ID_STRIDE: u64 = 1_000_000;

/// Simulated spacing between consecutive session start times.
const SESSION_SPACING_SECS: u64 = 900;

/// The failure levels: every fault process runs at the same ppm rate.
/// `calm` doubles as the 0-ppm control — its cells must count zero faults,
/// zero retries and zero degraded pages (pinned in the golden report).
pub const FAULT_LEVELS: [(&str, u32); 3] = [("calm", 0), ("degraded", 10_000), ("hostile", 50_000)];

/// Sizing and seeding of one chaos run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// Sites per cell population (Alexa-shaped, shared navigation universe).
    pub sites: usize,
    /// User sessions per cell (each 2–7 pages).
    pub sessions: usize,
    /// Root seed; cells share it so that only deployment, level, link and
    /// retry policy differ.
    pub seed: u64,
    /// Worker threads the mitigation combinations are sharded across.
    pub threads: usize,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig::from_scenario(&ScenarioConfig::default())
    }
}

impl ChaosConfig {
    /// A small configuration for tests, golden snapshots and the CI smoke
    /// run.
    pub fn quick() -> Self {
        ChaosConfig { sites: 40, sessions: 10, ..ChaosConfig::default() }
    }

    /// The chaos grid matching a scenario: the Alexa population size and
    /// seed, with one session per fifteen sites (the grid has 145 cells, so
    /// runtime stays comparable to the fleet's 29).
    pub fn from_scenario(config: &ScenarioConfig) -> Self {
        ChaosConfig {
            sites: config.alexa_sites,
            sessions: (config.alexa_sites / 15).max(1),
            seed: config.seed,
            threads: config.threads,
        }
    }
}

/// One cell of the chaos grid: a mitigation deployment driven through warm
/// sessions at one failure level, under one link profile and retry policy.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChaosCell {
    /// The deployed mitigation combination.
    pub mitigations: MitigationSet,
    /// Index into [`FAULT_LEVELS`] (0 = calm, 1 = degraded, 2 = hostile).
    pub level: usize,
    /// Index into [`ChaosReport::profiles`].
    pub profile: usize,
    /// `true` for the hedged-dial cell (appended after the grid).
    pub hedged: bool,
    /// Cross-page cost aggregate over every session of the cell.
    pub totals: SessionTotals,
    /// Pool lifecycle counters (dead-on-reuse churn shows up here too).
    pub lifecycle: PoolLifecycleStats,
    /// Pages that ended [`netsim_browser::VisitOutcome::Degraded`] — at
    /// least one resource exhausted its retry budget.
    pub degraded_pages: u64,
}

/// The completed chaos run: the mitigation × level × link grid plus the
/// hedged-dial cell, all over the same navigation trace.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChaosReport {
    /// The configuration the grid ran with.
    pub config: ChaosConfig,
    /// The link profiles, in [`LinkProfile::presets`] order.
    pub profiles: Vec<LinkProfile>,
    /// Cells indexed by `mitigations.bits() × 9 + level × 3 + profile`,
    /// followed by the hedged cell.
    pub cells: Vec<ChaosCell>,
}

/// Run the chaos grid: every mitigation combination builds its population
/// once and crawls the nine (level × profile) cells from it, sharded across
/// `config.threads` worker threads; the hedged cell runs last.
pub fn run_chaos(config: &ChaosConfig) -> ChaosReport {
    let profiles = LinkProfile::presets();
    let combos = MitigationSet::all_combinations();
    let mut rows: Vec<Option<Vec<ChaosCell>>> = Vec::new();
    rows.resize_with(combos.len(), || None);

    let threads = config.threads.clamp(1, combos.len());
    if threads <= 1 {
        for (row, combo) in rows.iter_mut().zip(&combos) {
            *row = Some(run_combo(config, *combo, &profiles));
        }
    } else {
        let chunk = combos.len().div_ceil(threads);
        let profiles = &profiles;
        std::thread::scope(|scope| {
            for (slot, shard) in rows.chunks_mut(chunk).zip(combos.chunks(chunk)) {
                scope.spawn(move || {
                    for (row, combo) in slot.iter_mut().zip(shard) {
                        *row = Some(run_combo(config, *combo, profiles));
                    }
                });
            }
        });
    }

    let mut cells: Vec<ChaosCell> =
        rows.into_iter().flat_map(|row| row.expect("every combination ran")).collect();
    cells.push(run_hedged_cell(config, &profiles));
    ChaosReport { config: *config, profiles, cells }
}

/// Crawl one mitigation combination's nine cells (level-major,
/// profile-minor) from a single population build.
fn run_combo(config: &ChaosConfig, mitigations: MitigationSet, profiles: &[LinkProfile]) -> Vec<ChaosCell> {
    // One combination is the chaos grid's chunk: a scaffold-stage envelope
    // around every session page of its nine cells, flushed to the
    // process-wide profile table before the worker moves on.
    let combo_guard = netsim_types::profile::enter(netsim_types::profile::Stage::ChunkLoop);
    let env = PopulationBuilder::new(
        PopulationProfile::alexa(),
        config.sites,
        config.seed + ALEXA_POPULATION_SEED_OFFSET,
    )
    .with_mitigations(mitigations)
    .build();

    let mut cells = Vec::with_capacity(FAULT_LEVELS.len() * profiles.len());
    for (level, (_, ppm)) in FAULT_LEVELS.iter().enumerate() {
        for (profile_index, profile) in profiles.iter().enumerate() {
            let browser_config = BrowserConfig {
                faults: FaultProfile::uniform(*ppm),
                ..BrowserConfig::with_mitigations(mitigations).over_link(profile)
            };
            let (totals, lifecycle, degraded_pages) = run_sessions(config, &env, &browser_config);
            cells.push(ChaosCell {
                mitigations,
                level,
                profile: profile_index,
                hedged: false,
                totals,
                lifecycle,
                degraded_pages,
            });
        }
    }
    drop(combo_guard);
    netsim_types::profile::flush_local();
    cells
}

/// The hedged-dial cell: the unmitigated web at the hostile level on lossy
/// cellular, dialing redundantly instead of backing off.
fn run_hedged_cell(config: &ChaosConfig, profiles: &[LinkProfile]) -> ChaosCell {
    let cell_guard = netsim_types::profile::enter(netsim_types::profile::Stage::ChunkLoop);
    let env = PopulationBuilder::new(
        PopulationProfile::alexa(),
        config.sites,
        config.seed + ALEXA_POPULATION_SEED_OFFSET,
    )
    .build();
    let level = FAULT_LEVELS.len() - 1;
    let profile_index = profiles.len() - 1;
    let browser_config = BrowserConfig {
        faults: FaultProfile::uniform(FAULT_LEVELS[level].1),
        retry: RetryPolicy { hedged_dials: true, ..RetryPolicy::default() },
        ..BrowserConfig::with_mitigations(MitigationSet::empty()).over_link(&profiles[profile_index])
    };
    let (totals, lifecycle, degraded_pages) = run_sessions(config, &env, &browser_config);
    drop(cell_guard);
    netsim_types::profile::flush_local();
    ChaosCell {
        mitigations: MitigationSet::empty(),
        level,
        profile: profile_index,
        hedged: true,
        totals,
        lifecycle,
        degraded_pages,
    }
}

/// Drive `config.sessions` warm multi-page sessions under `browser_config`.
/// The navigation trace (sites, page counts, dwells, simulated instants) is
/// identical in every cell; only the fault stream's consequences differ.
fn run_sessions(
    config: &ChaosConfig,
    env: &WebEnvironment,
    browser_config: &BrowserConfig,
) -> (SessionTotals, PoolLifecycleStats, u64) {
    let mut scratch = VisitScratch::without_netlog();
    let mut totals = SessionTotals::new();
    let mut session = UserSession::new(PoolConfig::default());
    let mut visited: Vec<usize> = Vec::new();
    let mut degraded_pages = 0u64;

    for session_index in 0..config.sessions as u64 {
        let mut nav_rng =
            SimRng::new(config.seed + CHAOS_SESSION_SEED_OFFSET).fork_indexed("chaos-nav", session_index);
        let visit_streams =
            SimRng::new(config.seed + CHAOS_SESSION_SEED_OFFSET).fork_indexed("chaos-visit", session_index);
        let mut clock =
            SimClock::starting_at(Instant::EPOCH + Duration::from_secs(SESSION_SPACING_SECS * session_index));
        let mut browser = Browser::with_id_base(browser_config.clone(), session_index * ID_STRIDE);
        visited.clear();

        let pages = nav_rng.in_range(2..=7usize);
        for page in 0..pages as u64 {
            let site_index = choose_site(&mut nav_rng, &visited, config.sites);
            visited.push(site_index);
            let mut page_rng = visit_streams.fork_indexed("page", page);
            let site = &env.sites[site_index];
            browser.load_session_page_into(&mut scratch, &mut session, env, site, &mut clock, &mut page_rng);
            totals.absorb_page(scratch.timeline());
            if !scratch.outcome().is_complete() {
                degraded_pages += 1;
            }
            let dwell = nav_rng.in_range(5..=120u64);
            clock.advance(Duration::from_secs(dwell));
        }
        session.end(&mut scratch, clock.now());
        totals.end_session();
    }

    (totals, session.take_stats(), degraded_pages)
}

impl ChaosReport {
    /// Cells per mitigation combination (levels × profiles).
    fn cells_per_combo(&self) -> usize {
        FAULT_LEVELS.len() * self.profiles.len()
    }

    /// The cell measuring `mitigations` at failure `level` under profile
    /// index `profile`.
    pub fn cell(&self, level: usize, profile: usize, mitigations: MitigationSet) -> &ChaosCell {
        &self.cells
            [mitigations.bits() as usize * self.cells_per_combo() + level * self.profiles.len() + profile]
    }

    /// The hedged-dial cell (always last).
    pub fn hedged(&self) -> &ChaosCell {
        self.cells.last().expect("the hedged cell is always appended")
    }

    /// The hedged cell's backoff twin: same deployment, level and link, but
    /// the default retry policy.
    pub fn hedged_twin(&self) -> &ChaosCell {
        let hedged = self.hedged();
        self.cell(hedged.level, hedged.profile, hedged.mitigations)
    }

    /// Mean-PLT inflation of a faulted cell over its calm twin (same
    /// deployment and link at level 0) — the blast radius in time.
    pub fn plt_inflation(&self, level: usize, profile: usize, mitigations: MitigationSet) -> f64 {
        let calm = self.cell(0, profile, mitigations).totals.totals.mean_plt_millis();
        if calm == 0.0 {
            return 0.0;
        }
        self.cell(level, profile, mitigations).totals.totals.mean_plt_millis() / calm - 1.0
    }

    /// Share of a cell's pages that degraded (exhausted a retry budget).
    pub fn degraded_share(cell: &ChaosCell) -> f64 {
        let pages = cell.totals.pages();
        if pages == 0 {
            return 0.0;
        }
        cell.degraded_pages as f64 / pages as f64
    }

    /// Faults injected and retries spent across every calm (0 ppm) cell —
    /// the control total the golden pins at zero.
    pub fn calm_totals(&self) -> (u64, u64) {
        let mut faults = 0;
        let mut retries = 0;
        for cell in self.cells.iter().filter(|cell| cell.level == 0 && !cell.hedged) {
            faults += cell.totals.totals.sums.faults_injected;
            retries += cell.totals.totals.sums.retries;
        }
        (faults, retries)
    }

    /// Render the report: one grid per (non-calm level × profile), the
    /// blast-radius summary, the hedged-dial comparison and the calm
    /// control line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (level, (level_name, ppm)) in FAULT_LEVELS.iter().enumerate().skip(1) {
            for (profile_index, profile) in self.profiles.iter().enumerate() {
                let mut grid = TextTable::new(
                    &format!(
                        "Chaos — {} ({:.1} % per process) × {} ({} sessions, {} pages, {} sites, seed {})",
                        level_name,
                        *ppm as f64 / 10_000.0,
                        profile.name,
                        format_count(self.config.sessions),
                        format_count(
                            self.cell(level, profile_index, MitigationSet::empty()).totals.pages() as usize
                        ),
                        format_count(self.config.sites),
                        self.config.seed
                    ),
                    &[
                        "deployment",
                        "conns.",
                        "faults",
                        "retries",
                        "backoff ms",
                        "dead reuse",
                        "goaways",
                        "degr. pages",
                        "failed res.",
                        "mean PLT ms",
                        "PLT infl.",
                    ],
                );
                for combo in MitigationSet::all_combinations() {
                    let cell = self.cell(level, profile_index, combo);
                    let sums = &cell.totals.totals.sums;
                    grid.push_row([
                        combo.label(),
                        format_count(sums.connections_opened as usize),
                        format_count(sums.faults_injected as usize),
                        format_count(sums.retries as usize),
                        format_count(sums.retry_backoff_millis as usize),
                        format_count(sums.dead_on_reuse as usize),
                        format_count(sums.goaways_received as usize),
                        format_count(cell.degraded_pages as usize),
                        format_count(sums.failed_resources as usize),
                        format!("{:.1}", cell.totals.totals.mean_plt_millis()),
                        format_percent(self.plt_inflation(level, profile_index, combo)),
                    ]);
                }
                out.push_str(&grid.render());
                out.push('\n');
            }
        }

        let mut blast = TextTable::new(
            "Blast radius — faulted vs. calm twin (same deployment, same link)",
            &["level", "profile", "deployment", "calm PLT ms", "PLT ms", "PLT infl.", "degr. share"],
        );
        for (level, (level_name, _)) in FAULT_LEVELS.iter().enumerate().skip(1) {
            for (profile_index, profile) in self.profiles.iter().enumerate() {
                for combo in [MitigationSet::empty(), MitigationSet::all()] {
                    let cell = self.cell(level, profile_index, combo);
                    blast.push_row([
                        level_name.to_string(),
                        profile.name.clone(),
                        combo.label(),
                        format!("{:.1}", self.cell(0, profile_index, combo).totals.totals.mean_plt_millis()),
                        format!("{:.1}", cell.totals.totals.mean_plt_millis()),
                        format_percent(self.plt_inflation(level, profile_index, combo)),
                        format_percent(Self::degraded_share(cell)),
                    ]);
                }
            }
        }
        out.push_str(&blast.render());
        out.push('\n');

        let hedged = self.hedged();
        let twin = self.hedged_twin();
        let hedged_sums = &hedged.totals.totals.sums;
        let twin_sums = &twin.totals.totals.sums;
        out.push_str(&format!(
            "hedged dials (no mitigation, hostile × {}): backoff {} -> {} ms | hedged dials {} | \
             handshake KiB {} -> {} | mean PLT {:.1} -> {:.1} ms | degraded pages {} -> {}\n",
            self.profiles[hedged.profile].name,
            format_count(twin_sums.retry_backoff_millis as usize),
            format_count(hedged_sums.retry_backoff_millis as usize),
            format_count(hedged_sums.hedged_dials as usize),
            format_count((twin_sums.handshake_octets / 1024) as usize),
            format_count((hedged_sums.handshake_octets / 1024) as usize),
            twin.totals.totals.mean_plt_millis(),
            hedged.totals.totals.mean_plt_millis(),
            format_count(twin.degraded_pages as usize),
            format_count(hedged.degraded_pages as usize),
        ));
        let (calm_faults, calm_retries) = self.calm_totals();
        out.push_str(&format!(
            "calm control: {} faults injected, {} retries across all 48 calm cells — at 0 ppm the \
             fault layer draws nothing and charges nothing\n",
            format_count(calm_faults as usize),
            format_count(calm_retries as usize),
        ));
        out.push_str(
            "note: every cell replays the identical navigation trace (same pages, same simulated \
             instants); cells differ only in deployment, failure level, link profile and retry \
             policy. Coalesced deployments concentrate pages on fewer connections, so each fault \
             has a larger blast radius; retries and backoff are charged to the virtual clock.\n",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn shared_report() -> &'static ChaosReport {
        static REPORT: OnceLock<ChaosReport> = OnceLock::new();
        REPORT
            .get_or_init(|| run_chaos(&ChaosConfig { sites: 24, sessions: 8, seed: 20_210_420, threads: 8 }))
    }

    #[test]
    fn chaos_grid_covers_every_cell_in_order() {
        let report = shared_report();
        assert_eq!(report.profiles.len(), 3);
        assert_eq!(report.cells.len(), MitigationSet::COMBINATIONS * 9 + 1);
        let pages = report.cell(0, 0, MitigationSet::empty()).totals.pages();
        assert!(pages > 0);
        for combo in MitigationSet::all_combinations() {
            for level in 0..FAULT_LEVELS.len() {
                for profile in 0..report.profiles.len() {
                    let cell = report.cell(level, profile, combo);
                    assert_eq!(cell.mitigations, combo);
                    assert_eq!(cell.level, level);
                    assert_eq!(cell.profile, profile);
                    assert!(!cell.hedged);
                    // The navigation trace is invariant across the grid.
                    assert_eq!(cell.totals.pages(), pages);
                    assert_eq!(cell.totals.sessions, report.config.sessions as u64);
                }
            }
        }
        assert!(report.hedged().hedged);
        assert_eq!(report.hedged().totals.pages(), pages);
    }

    #[test]
    fn calm_cells_are_fault_free() {
        let report = shared_report();
        let (faults, retries) = report.calm_totals();
        assert_eq!(faults, 0, "0 ppm must draw nothing");
        assert_eq!(retries, 0);
        for combo in MitigationSet::all_combinations() {
            for profile in 0..report.profiles.len() {
                let cell = report.cell(0, profile, combo);
                let sums = &cell.totals.totals.sums;
                assert_eq!(sums.retry_backoff_millis, 0);
                assert_eq!(sums.failed_resources, 0);
                assert_eq!(sums.goaways_received, 0);
                assert_eq!(sums.dead_on_reuse, 0);
                assert_eq!(sums.hedged_dials, 0);
                assert_eq!(cell.degraded_pages, 0);
                assert_eq!(cell.lifecycle.dead_on_reuse, 0);
            }
        }
    }

    #[test]
    fn hostile_cells_inject_faults_and_recover() {
        let report = shared_report();
        let hostile = FAULT_LEVELS.len() - 1;
        let mut degraded_total = 0;
        for combo in MitigationSet::all_combinations() {
            for profile in 0..report.profiles.len() {
                let cell = report.cell(hostile, profile, combo);
                let sums = &cell.totals.totals.sums;
                assert!(sums.faults_injected > 0, "hostile cell {combo} must see faults");
                assert!(sums.retries > 0, "hostile cell {combo} must retry");
                assert!(sums.retry_backoff_millis > 0, "retries must pay backoff");
                degraded_total += cell.degraded_pages;
                // Faults cost wall-clock: the faulted run can never beat its
                // calm twin.
                assert!(report.plt_inflation(hostile, profile, combo) >= 0.0);
            }
        }
        assert!(degraded_total > 0, "5 % per process must exhaust some retry budgets");
    }

    #[test]
    fn degraded_level_sits_between_calm_and_hostile() {
        let report = shared_report();
        let mut calm = 0;
        let mut degraded = 0;
        let mut hostile = 0;
        for combo in MitigationSet::all_combinations() {
            for profile in 0..report.profiles.len() {
                calm += report.cell(0, profile, combo).totals.totals.sums.faults_injected;
                degraded += report.cell(1, profile, combo).totals.totals.sums.faults_injected;
                hostile += report.cell(2, profile, combo).totals.totals.sums.faults_injected;
            }
        }
        assert_eq!(calm, 0);
        assert!(degraded > 0);
        assert!(hostile > degraded, "5 % per process must inject more faults than 1 %");
    }

    #[test]
    fn hedged_dials_trade_backoff_for_handshake_bytes() {
        let report = shared_report();
        let hedged = report.hedged();
        let twin = report.hedged_twin();
        assert!(!twin.hedged);
        assert_eq!(twin.mitigations, hedged.mitigations);
        assert_eq!((twin.level, twin.profile), (hedged.level, hedged.profile));
        let hedged_sums = &hedged.totals.totals.sums;
        let twin_sums = &twin.totals.totals.sums;
        assert!(hedged_sums.hedged_dials > 0, "the hedged cell must dial redundantly");
        assert_eq!(twin_sums.hedged_dials, 0, "the default policy never hedges");
        assert_eq!(hedged_sums.retry_backoff_millis, 0, "hedged dials never back off");
        assert!(twin_sums.retry_backoff_millis > 0);
        assert!(
            hedged_sums.handshake_octets > twin_sums.handshake_octets,
            "redundant dials must cost extra handshake bytes"
        );
    }

    #[test]
    fn chaos_is_thread_invariant() {
        let config = ChaosConfig { sites: 16, sessions: 4, seed: 20_210_420, threads: 1 };
        let sequential = run_chaos(&config);
        let sharded = run_chaos(&ChaosConfig { threads: 8, ..config });
        assert_eq!(sequential.cells, sharded.cells);
        assert_eq!(sequential.render(), sharded.render());
    }

    #[test]
    fn report_renders_every_grid_and_summary() {
        let report = shared_report();
        let text = report.render();
        for profile in &report.profiles {
            assert!(text.contains(&profile.name), "missing profile {}", profile.name);
        }
        for combo in MitigationSet::all_combinations() {
            assert!(text.contains(&combo.label()), "missing {combo}");
        }
        assert!(text.contains("Chaos — degraded"));
        assert!(text.contains("Chaos — hostile"));
        assert!(text.contains("Blast radius"));
        assert!(text.contains("hedged dials"));
        assert!(text.contains("calm control: 0 faults injected, 0 retries"));
    }
}
