//! Plain-text table rendering and CSV export.

use serde::{Deserialize, Serialize};

/// A simple column-aligned text table.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TextTable {
    /// Table title (printed above the header).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells; ragged rows are padded with empty cells when rendered.
    pub rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given title and headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        TextTable {
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn push_row<I, S>(&mut self, row: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(row.into_iter().map(Into::into).collect());
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let columns = self.headers.len().max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; columns];
        for (index, header) in self.headers.iter().enumerate() {
            widths[index] = widths[index].max(header.len());
        }
        for row in &self.rows {
            for (index, cell) in row.iter().enumerate() {
                widths[index] = widths[index].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        out.push_str(&render_row(&self.headers, &widths));
        out.push_str(&render_separator(&widths));
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
        }
        out
    }

    /// Render as CSV (title omitted).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&csv_row(&self.headers));
        for row in &self.rows {
            out.push_str(&csv_row(row));
        }
        out
    }
}

fn render_row(cells: &[String], widths: &[usize]) -> String {
    let mut line = String::new();
    for (index, width) in widths.iter().enumerate() {
        let cell = cells.get(index).map(String::as_str).unwrap_or("");
        line.push_str(&format!("{cell:<width$}  "));
    }
    line.trim_end().to_string() + "\n"
}

fn render_separator(widths: &[usize]) -> String {
    let mut line = String::new();
    for width in widths {
        line.push_str(&"-".repeat(*width));
        line.push_str("  ");
    }
    line.trim_end().to_string() + "\n"
}

fn csv_row(cells: &[String]) -> String {
    let escaped: Vec<String> = cells
        .iter()
        .map(|cell| {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.clone()
            }
        })
        .collect();
    escaped.join(",") + "\n"
}

/// Format a count with thousands separators (the tables in the paper use
/// human-readable magnitudes).
pub fn format_count(value: usize) -> String {
    let digits: Vec<char> = value.to_string().chars().rev().collect();
    let mut out = String::new();
    for (index, digit) in digits.iter().enumerate() {
        if index > 0 && index % 3 == 0 {
            out.push(',');
        }
        out.push(*digit);
    }
    out.chars().rev().collect()
}

/// Format a fraction as a percentage with no decimals (the paper rounds to
/// integer percentages).
pub fn format_percent(fraction: f64) -> String {
    format!("{:.0} %", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut table = TextTable::new("Demo", &["Origin", "Conns."]);
        table.push_row(["www.google-analytics.com", "2,250,000"]);
        table.push_row(["www.facebook.com", "1,520,000"]);
        let rendered = table.render();
        assert!(rendered.starts_with("## Demo\n"));
        assert!(rendered.contains("Origin"));
        assert!(rendered.contains("www.facebook.com"));
        assert_eq!(table.row_count(), 2);
        // Aligned: both data lines have the count starting at the same column.
        let lines: Vec<&str> = rendered.lines().collect();
        let position_a = lines[3].find("2,250,000").unwrap();
        let position_b = lines[4].find("1,520,000").unwrap();
        assert_eq!(position_a, position_b);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut table = TextTable::new("Demo", &["a", "b"]);
        table.push_row(["1,5", "say \"hi\""]);
        let csv = table.to_csv();
        assert!(csv.contains("\"1,5\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn count_and_percent_formatting() {
        assert_eq!(format_count(0), "0");
        assert_eq!(format_count(1_234), "1,234");
        assert_eq!(format_count(6_242_688), "6,242,688");
        assert_eq!(format_percent(0.758), "76 %");
        assert_eq!(format_percent(0.0), "0 %");
    }
}
