//! The fleet: multi-page user sessions over a first-class connection-pool
//! lifecycle.
//!
//! Every other engine in this workspace prices redundancy on *cold*
//! single-page visits — the paper's measurement methodology (caches reset
//! between visits). The fleet prices it where it accrues for real users:
//! across the pages of a browsing session, where a warm
//! [`netsim_browser::ConnectionPool`] (idle timeouts, LRU capacity, server
//! lifetime churn), carried TLS session tickets and a per-session DNS cache
//! amortise setup cost over many navigations.
//!
//! Three families of cells share one deterministic navigation trace:
//!
//! 1. **the cold baseline** — the same sessions driven through the
//!    per-visit path ([`netsim_browser::Browser::load_page_into`]), caches
//!    reset on every page: what the paper's methodology would charge these
//!    users,
//! 2. **the 2^4 mitigation grid** — every mitigation combination, each
//!    session driven through
//!    [`netsim_browser::Browser::load_session_page_into`] with the default
//!    pool policy: how much redundancy tax *remains* per deployment once
//!    cross-page reuse is allowed,
//! 3. **the pool-policy sweep** — pool capacities × idle timeouts on the
//!    unmitigated web: what the browser's own pool knobs buy.
//!
//! ## Sharding and determinism
//!
//! Cells are independent and shard across worker threads exactly like the
//! cost sweep's. Within a cell, every stochastic choice forks off the global
//! *session* index (`fork_indexed("fleet-nav", session)` for the navigation
//! trace, `fork_indexed("fleet-visit", session)` for in-visit lifetime
//! draws), never off a worker id — rule 1 of the determinism contract — and
//! the navigation RNG is consumed identically in every cell, so all 29 cells
//! replay the *same pages at the same simulated instants* and differ only in
//! deployment and pool policy. Reports are byte-identical at any `--threads`
//! value (asserted in `tests/determinism.rs`).

use crate::render::{format_count, format_percent, TextTable};
use crate::scenario::{ScenarioConfig, ALEXA_POPULATION_SEED_OFFSET};
use netsim_browser::{Browser, BrowserConfig, PoolConfig, PoolLifecycleStats, UserSession, VisitScratch};
use netsim_cost::SessionTotals;
use netsim_types::{Duration, Instant, MitigationSet, SimClock, SimRng};
use netsim_web::{PopulationBuilder, PopulationProfile};
use serde::{Deserialize, Serialize};

/// Seed offset of the fleet's session streams (population uses
/// [`ALEXA_POPULATION_SEED_OFFSET`]; crawl offsets stay clear of both).
const FLEET_SESSION_SEED_OFFSET: u64 = 40;

/// Identifier spacing between sessions so connection/request ids never
/// collide across a cell (mirrors the crawler's per-site stride).
const ID_STRIDE: u64 = 1_000_000;

/// Simulated spacing between consecutive session start times.
const SESSION_SPACING_SECS: u64 = 900;

/// Probability that a navigation revisits a page already seen this session.
const REVISIT_PROBABILITY: f64 = 0.4;

/// Pool capacities the policy sweep explores.
const POOL_SIZES: [usize; 4] = [2, 4, 8, 16];

/// Idle timeouts (seconds) the policy sweep explores.
const IDLE_TIMEOUT_SECS: [u64; 3] = [10, 60, 300];

/// Sizing and seeding of one fleet run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Sites per cell population (Alexa-shaped, shared navigation universe).
    pub sites: usize,
    /// User sessions per cell (each 2–7 pages).
    pub sessions: usize,
    /// Root seed; cells share it so that only deployment and policy differ.
    pub seed: u64,
    /// Worker threads the cells are sharded across.
    pub threads: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig::from_scenario(&ScenarioConfig::default())
    }
}

impl FleetConfig {
    /// A small configuration for tests, golden snapshots and the CI smoke
    /// run.
    pub fn quick() -> Self {
        FleetConfig { sites: 60, sessions: 40, ..FleetConfig::default() }
    }

    /// The fleet matching a scenario: the Alexa population size and seed,
    /// with one session per five sites so runtime stays comparable to the
    /// cost sweep's.
    pub fn from_scenario(config: &ScenarioConfig) -> Self {
        FleetConfig {
            sites: config.alexa_sites,
            sessions: (config.alexa_sites / 5).max(1),
            seed: config.seed,
            threads: config.threads,
        }
    }
}

/// One cell of the fleet grid: a mitigation deployment driven either cold
/// (`pool: None`) or through warm sessions under one pool policy.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FleetCell {
    /// The deployed mitigation combination.
    pub mitigations: MitigationSet,
    /// The session pool policy, or `None` for the cold per-visit baseline.
    pub pool: Option<PoolConfig>,
    /// Cross-page cost aggregate over every session of the cell.
    pub totals: SessionTotals,
    /// Pool lifecycle counters (all zero for the cold baseline).
    pub lifecycle: PoolLifecycleStats,
}

/// The completed fleet run: cold baseline + warm mitigation grid + pool
/// policy sweep, all over the same navigation trace.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// The configuration the fleet ran with.
    pub config: FleetConfig,
    /// Cells in fixed plan order: cold, then the 16 warm mitigation
    /// combinations, then the pool-policy sweep.
    pub cells: Vec<FleetCell>,
}

/// The deterministic cell layout: index 0 is the cold baseline, `1 + bits`
/// the warm mitigation cells, and the tail the pool-policy sweep
/// (capacity-major).
fn cell_plans() -> Vec<(MitigationSet, Option<PoolConfig>)> {
    let mut plans = vec![(MitigationSet::empty(), None)];
    for combo in MitigationSet::all_combinations() {
        plans.push((combo, Some(PoolConfig::default())));
    }
    for size in POOL_SIZES {
        for secs in IDLE_TIMEOUT_SECS {
            plans.push((
                MitigationSet::empty(),
                Some(PoolConfig { max_connections: size, idle_timeout: Duration::from_secs(secs) }),
            ));
        }
    }
    plans
}

/// Run the fleet: every cell replays the same session trace, sharded across
/// `config.threads` worker threads.
pub fn run_fleet(config: &FleetConfig) -> FleetReport {
    let plans = cell_plans();
    let mut rows: Vec<Option<FleetCell>> = Vec::new();
    rows.resize_with(plans.len(), || None);

    let threads = config.threads.clamp(1, plans.len());
    if threads <= 1 {
        for (row, plan) in rows.iter_mut().zip(&plans) {
            *row = Some(run_cell(config, plan.0, plan.1));
        }
    } else {
        let chunk = plans.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for (slot, shard) in rows.chunks_mut(chunk).zip(plans.chunks(chunk)) {
                scope.spawn(move || {
                    for (row, plan) in slot.iter_mut().zip(shard) {
                        *row = Some(run_cell(config, plan.0, plan.1));
                    }
                });
            }
        });
    }

    FleetReport { config: *config, cells: rows.into_iter().map(|row| row.expect("every cell ran")).collect() }
}

/// Pick the next page of a session: revisit a page already seen with
/// probability [`REVISIT_PROBABILITY`], otherwise navigate somewhere new.
/// Consumes the same RNG draws in every cell (the trace is cell-invariant;
/// the chaos grid shares this navigation model).
pub(crate) fn choose_site(rng: &mut SimRng, visited: &[usize], sites: usize) -> usize {
    if !visited.is_empty() && rng.chance(REVISIT_PROBABILITY) {
        *rng.pick(visited).expect("visited is non-empty")
    } else {
        rng.in_range(0..sites)
    }
}

/// Run one cell: `config.sessions` multi-page sessions over the deployment's
/// population, warm through a [`UserSession`] or cold through the per-visit
/// path when `pool` is `None`.
fn run_cell(config: &FleetConfig, mitigations: MitigationSet, pool: Option<PoolConfig>) -> FleetCell {
    // One fleet cell is the fleet's chunk: a scaffold-stage envelope around
    // every session page it replays, flushed to the process-wide profile
    // table before the worker thread moves on (or dies with the scope).
    let cell_guard = netsim_types::profile::enter(netsim_types::profile::Stage::ChunkLoop);
    let env = PopulationBuilder::new(
        PopulationProfile::alexa(),
        config.sites,
        config.seed + ALEXA_POPULATION_SEED_OFFSET,
    )
    .with_mitigations(mitigations)
    .build();
    let browser_config = BrowserConfig::with_mitigations(mitigations);

    let mut scratch = VisitScratch::without_netlog();
    let mut totals = SessionTotals::new();
    let mut lifecycle = PoolLifecycleStats::default();
    let mut session_state = pool.map(UserSession::new);
    let mut visited: Vec<usize> = Vec::new();

    for session_index in 0..config.sessions as u64 {
        let mut nav_rng =
            SimRng::new(config.seed + FLEET_SESSION_SEED_OFFSET).fork_indexed("fleet-nav", session_index);
        let visit_streams =
            SimRng::new(config.seed + FLEET_SESSION_SEED_OFFSET).fork_indexed("fleet-visit", session_index);
        let mut clock =
            SimClock::starting_at(Instant::EPOCH + Duration::from_secs(SESSION_SPACING_SECS * session_index));
        let mut browser = Browser::with_id_base(browser_config.clone(), session_index * ID_STRIDE);
        visited.clear();

        let pages = nav_rng.in_range(2..=7usize);
        for page in 0..pages as u64 {
            let site_index = choose_site(&mut nav_rng, &visited, config.sites);
            visited.push(site_index);
            let mut page_rng = visit_streams.fork_indexed("page", page);
            let site = &env.sites[site_index];
            match session_state.as_mut() {
                Some(session) => {
                    browser.load_session_page_into(
                        &mut scratch,
                        session,
                        &env,
                        site,
                        &mut clock,
                        &mut page_rng,
                    );
                }
                None => {
                    browser.load_page_into(&mut scratch, &env, site, &mut clock, &mut page_rng);
                }
            }
            totals.absorb_page(scratch.timeline());
            // Dwell before the next navigation (drawn even after the last
            // page so the trace stays cell-invariant).
            let dwell = nav_rng.in_range(5..=120u64);
            clock.advance(Duration::from_secs(dwell));
        }
        if let Some(session) = session_state.as_mut() {
            session.end(&mut scratch, clock.now());
        }
        totals.end_session();
    }

    if let Some(session) = session_state.as_mut() {
        lifecycle.merge(&session.take_stats());
    }
    drop(cell_guard);
    netsim_types::profile::flush_local();
    FleetCell { mitigations, pool, totals, lifecycle }
}

impl FleetReport {
    /// The cold per-visit baseline (no pool, no mitigation).
    pub fn cold_baseline(&self) -> &FleetCell {
        &self.cells[0]
    }

    /// The warm cell measuring `mitigations` under the default pool policy.
    pub fn warm(&self, mitigations: MitigationSet) -> &FleetCell {
        &self.cells[1 + mitigations.bits() as usize]
    }

    /// The pool-policy cells (capacity-major), after the mitigation grid.
    pub fn policy_cells(&self) -> &[FleetCell] {
        &self.cells[1 + MitigationSet::COMBINATIONS..]
    }

    /// Connections the warm pool saves vs. the cold baseline on the
    /// unmitigated web.
    pub fn opens_saved(&self) -> u64 {
        self.cold_baseline()
            .totals
            .totals
            .sums
            .connections_opened
            .saturating_sub(self.warm(MitigationSet::empty()).totals.totals.sums.connections_opened)
    }

    /// Share of the cold baseline's opens the warm pool removes.
    pub fn opens_saved_share(&self) -> f64 {
        let cold = self.cold_baseline().totals.totals.sums.connections_opened;
        if cold == 0 {
            return 0.0;
        }
        self.opens_saved() as f64 / cold as f64
    }

    /// Render the report: the warm mitigation grid, the pool-policy sweep
    /// and the warm-vs-cold redundancy-tax summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let cold = self.cold_baseline();

        let mut grid = TextTable::new(
            &format!(
                "Fleet — warm sessions per deployment (default pool {} conns / {} s idle; {} sessions, {} pages, {} sites, seed {})",
                PoolConfig::default().max_connections,
                PoolConfig::default().idle_timeout.as_millis() / 1000,
                format_count(self.config.sessions),
                format_count(cold.totals.pages() as usize),
                format_count(self.config.sites),
                self.config.seed
            ),
            &[
                "deployment",
                "conns.",
                "opens/session",
                "resumed hs",
                "pool lent",
                "hs RTTs",
                "cwnd RTTs",
                "DNS walks",
                "mean PLT ms",
            ],
        );
        for combo in MitigationSet::all_combinations() {
            let cell = self.warm(combo);
            let sums = &cell.totals.totals.sums;
            grid.push_row([
                combo.label(),
                format_count(sums.connections_opened as usize),
                format!("{:.1}", cell.totals.mean_opens_per_session()),
                format_count(sums.resumed_handshakes as usize),
                format_count(cell.lifecycle.lent as usize),
                format_count(sums.handshake_rtts as usize),
                format_count(sums.cold_cwnd_rtts as usize),
                format_count(sums.dns_recursive_walks as usize),
                format!("{:.1}", cell.totals.totals.mean_plt_millis()),
            ]);
        }
        out.push_str(&grid.render());
        out.push('\n');

        let mut policy = TextTable::new(
            "Pool policy sweep — capacities × idle timeouts on the unmitigated web",
            &[
                "pool policy",
                "conns.",
                "pool lent",
                "idle-expired",
                "cap-evicted",
                "churned",
                "session-end",
                "mean PLT ms",
            ],
        );
        for cell in self.policy_cells() {
            let pool = cell.pool.expect("policy cells have a pool");
            policy.push_row([
                format!(
                    "{:>2} conns / {:>3} s idle",
                    pool.max_connections,
                    pool.idle_timeout.as_millis() / 1000
                ),
                format_count(cell.totals.totals.sums.connections_opened as usize),
                format_count(cell.lifecycle.lent as usize),
                format_count(cell.lifecycle.idle_expired as usize),
                format_count(cell.lifecycle.capacity_evicted as usize),
                format_count(cell.lifecycle.lifetime_churned as usize),
                format_count(cell.lifecycle.session_closed as usize),
                format!("{:.1}", cell.totals.totals.mean_plt_millis()),
            ]);
        }
        out.push_str(&policy.render());
        out.push('\n');

        let warm = self.warm(MitigationSet::empty());
        let warm_sums = &warm.totals.totals.sums;
        let cold_sums = &cold.totals.totals.sums;
        out.push_str(&format!(
            "warm vs cold (no mitigation, default pool): opens {} -> {} ({} saved) | \
             resumed handshakes {} of warm opens | mean PLT {:.1} -> {:.1} ms | \
             {:.1} pages/session over {} sessions\n",
            format_count(cold_sums.connections_opened as usize),
            format_count(warm_sums.connections_opened as usize),
            format_percent(self.opens_saved_share()),
            format_percent(if warm_sums.connections_opened == 0 {
                0.0
            } else {
                warm_sums.resumed_handshakes as f64 / warm_sums.connections_opened as f64
            }),
            cold.totals.totals.mean_plt_millis(),
            warm.totals.totals.mean_plt_millis(),
            cold.totals.mean_pages_per_session(),
            format_count(cold.totals.sessions as usize),
        ));
        out.push_str(
            "note: every cell replays the identical navigation trace (same pages, same simulated \
             instants); cells differ only in deployment and pool policy. The cold baseline resets \
             all caches per page — the paper's single-visit methodology applied to session traffic.\n",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn shared_report() -> &'static FleetReport {
        static REPORT: OnceLock<FleetReport> = OnceLock::new();
        REPORT
            .get_or_init(|| run_fleet(&FleetConfig { sites: 30, sessions: 12, seed: 20_210_420, threads: 8 }))
    }

    #[test]
    fn fleet_grid_covers_every_cell_in_order() {
        let report = shared_report();
        assert_eq!(
            report.cells.len(),
            1 + MitigationSet::COMBINATIONS + POOL_SIZES.len() * IDLE_TIMEOUT_SECS.len()
        );
        assert_eq!(report.cold_baseline().pool, None);
        for combo in MitigationSet::all_combinations() {
            let cell = report.warm(combo);
            assert_eq!(cell.mitigations, combo);
            assert_eq!(cell.pool, Some(PoolConfig::default()));
            // Every cell replays the same navigation trace.
            assert_eq!(cell.totals.pages(), report.cold_baseline().totals.pages());
            assert_eq!(cell.totals.sessions, report.config.sessions as u64);
        }
        for cell in report.policy_cells() {
            assert_eq!(cell.mitigations, MitigationSet::empty());
            assert!(cell.pool.is_some());
            assert_eq!(cell.totals.pages(), report.cold_baseline().totals.pages());
        }
    }

    #[test]
    fn warm_sessions_open_fewer_connections_and_resume() {
        let report = shared_report();
        let cold = report.cold_baseline();
        let warm = report.warm(MitigationSet::empty());
        assert!(
            warm.totals.totals.sums.connections_opened < cold.totals.totals.sums.connections_opened,
            "a warm pool must remove cross-page re-opens"
        );
        assert!(warm.totals.totals.sums.resumed_handshakes > 0, "revisits must resume TLS sessions");
        assert_eq!(cold.totals.totals.sums.resumed_handshakes, 0, "cold visits never resume");
        assert_eq!(cold.lifecycle, PoolLifecycleStats::default(), "the cold path has no pool");
        assert!(warm.lifecycle.lent > 0);
        assert!(report.opens_saved() > 0);
        assert!(report.opens_saved_share() > 0.0);
    }

    #[test]
    fn pool_policy_extremes_order_as_expected() {
        let report = shared_report();
        let policies = report.policy_cells();
        // Capacity-major layout: first cell is the tightest policy
        // (2 conns / 10 s), last is the roomiest (16 conns / 300 s).
        let tight = &policies[0];
        let roomy = &policies[policies.len() - 1];
        assert_eq!(tight.pool.unwrap().max_connections, 2);
        assert_eq!(roomy.pool.unwrap().max_connections, 16);
        assert!(
            roomy.totals.totals.sums.connections_opened < tight.totals.totals.sums.connections_opened,
            "a roomy patient pool must keep more connections warm than a tiny impatient one"
        );
        for cell in policies {
            let pool = cell.pool.unwrap();
            // An impatient pool (10 s idle vs. 5–120 s dwell) mostly expires
            // between pages; patient policies must actually lend.
            if pool.idle_timeout >= Duration::from_secs(60) {
                assert!(cell.lifecycle.lent > 0, "a patient pool must lend connections: {pool:?}");
            } else {
                assert!(cell.lifecycle.idle_expired > 0, "an impatient pool must expire idle entries");
            }
            let stats = &cell.lifecycle;
            assert!(
                stats.closed() <= stats.inserted,
                "a pool can only close connections it once inserted: {stats:?}"
            );
        }
    }

    #[test]
    fn fleet_is_thread_invariant() {
        let config = FleetConfig { sites: 20, sessions: 6, seed: 20_210_420, threads: 1 };
        let sequential = run_fleet(&config);
        let sharded = run_fleet(&FleetConfig { threads: 5, ..config });
        assert_eq!(sequential.cells, sharded.cells);
        assert_eq!(sequential.render(), sharded.render());
    }

    #[test]
    fn report_renders_every_cell_family() {
        let report = shared_report();
        let text = report.render();
        for combo in MitigationSet::all_combinations() {
            assert!(text.contains(&combo.label()), "missing {combo}");
        }
        assert!(text.contains("Pool policy sweep"));
        assert!(text.contains("warm vs cold"));
        assert!(text.contains("16 conns / 300 s idle"));
    }
}
