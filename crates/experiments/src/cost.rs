//! The cost sweep: what every mitigation *buys* in RTTs, bytes and
//! page-load time, per network profile.
//!
//! The mitigation sweep ([`crate::sweep`]) answers "how many connections
//! does each fix remove". This engine answers the question operators act on:
//! **what does each fix buy** — the round trips, handshake bytes and
//! page-load-time inflation attributable to the redundant connections it
//! removes. It runs the same 2^4 mitigation grid, but each cell is crawled
//! under three [`LinkProfile`]s (datacenter / broadband / lossy cellular per
//! Goel et al.), with the browser's zero-allocation visit fast path
//! accumulating a [`netsim_cost::VisitTimeline`] per visit and a streaming
//! [`CostTotals`] per cell:
//!
//! * **handshake RTTs / octets** — TCP + TLS flights of every opened
//!   connection (`netsim_tls::HandshakeConfig`), resumption-aware,
//! * **cold-cwnd RTTs** — slow-start rounds the opened connections paid for
//!   their bytes (`netsim_h2::cwnd`),
//! * **DNS walks** — recursive resolutions and their authority queries
//!   (cache hits are free),
//! * **page-load time** — the simulated visit duration under the profile's
//!   RTT, bandwidth and loss (lossy links retransmission-inflate every
//!   handshake, so redundancy hurts most exactly where Goel et al. measured
//!   it).
//!
//! ## Sharding and determinism
//!
//! Mitigation cells are independent; the 16 of them are sharded across
//! worker threads exactly like the sweep's. One population is generated per
//! cell and crawled under all three profiles (the population depends only on
//! the mitigation deployment, never on the link). Every stochastic choice
//! flows from RNG streams forked off the root seed by stable labels, so
//! `threads = 1` and `threads = 8` render byte-identical reports (asserted
//! in `tests/determinism.rs`). Costs are integer counts plus integer
//! simulated milliseconds — nothing machine-dependent enters the report.

use crate::atlas::classify_scratch;
use crate::render::{format_count, format_percent, TextTable};
use crate::scenario::{ScenarioConfig, ALEXA_CRAWL_SEED_OFFSET, ALEXA_POPULATION_SEED_OFFSET};
use connreuse_core::{classify_site, site_from_visit, Accumulator, DurationModel, FastVisitClassifier};
use netsim_browser::{BrowserConfig, Crawler, VisitScratch};
use netsim_cost::{CostTotals, LinkProfile};
use netsim_types::MitigationSet;
use netsim_web::{PopulationBuilder, PopulationProfile};
use serde::{Deserialize, Serialize};

/// Sizing and seeding of one cost sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostConfig {
    /// Sites per cell population (Alexa-shaped, shared by every profile).
    pub sites: usize,
    /// Root seed; cells share it so that only deployment and link differ.
    pub seed: u64,
    /// Worker threads the 16 mitigation cells are sharded across.
    pub threads: usize,
}

impl Default for CostConfig {
    fn default() -> Self {
        let scenario = ScenarioConfig::default();
        CostConfig { sites: scenario.alexa_sites, seed: scenario.seed, threads: scenario.threads }
    }
}

impl CostConfig {
    /// A small configuration for tests, golden snapshots and the CI smoke
    /// run.
    pub fn quick() -> Self {
        CostConfig { sites: 120, ..CostConfig::default() }
    }

    /// The cost sweep matching a scenario: same Alexa population size, seed
    /// and thread budget, so the broadband baseline cell reproduces the
    /// scenario's own Alexa crawl.
    pub fn from_scenario(config: &ScenarioConfig) -> Self {
        CostConfig { sites: config.alexa_sites, seed: config.seed, threads: config.threads }
    }
}

/// One cell of the cost grid: a mitigation combination crawled under one
/// link profile.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostCell {
    /// The deployed mitigation combination.
    pub mitigations: MitigationSet,
    /// Index into [`CostReport::profiles`].
    pub profile: usize,
    /// Streaming aggregate of the per-visit cost timelines.
    pub totals: CostTotals,
    /// Connections the classifier counted redundant under this deployment.
    pub redundant_connections: usize,
    /// Response-body octets the population plans (page weight; identical
    /// across profiles of one cell).
    pub planned_octets: u64,
}

/// The completed cost sweep: 16 mitigation cells × the three link profiles.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostReport {
    /// The configuration the sweep ran with.
    pub config: CostConfig,
    /// The link profiles, in [`LinkProfile::presets`] order.
    pub profiles: Vec<LinkProfile>,
    /// Cells indexed by `mitigations.bits() × profiles.len() + profile`.
    pub cells: Vec<CostCell>,
}

/// Run the cost sweep: every mitigation combination crawled under every
/// link profile, sharded across `config.threads` worker threads.
pub fn run_cost(config: &CostConfig) -> CostReport {
    let profiles = LinkProfile::presets();
    let combos = MitigationSet::all_combinations();
    let mut rows: Vec<Option<Vec<CostCell>>> = Vec::new();
    rows.resize_with(combos.len(), || None);

    let threads = config.threads.clamp(1, combos.len());
    if threads <= 1 {
        for (row, combo) in rows.iter_mut().zip(&combos) {
            *row = Some(run_cell(config, *combo, &profiles));
        }
    } else {
        let chunk = combos.len().div_ceil(threads);
        let profiles = &profiles;
        std::thread::scope(|scope| {
            for (slot, shard) in rows.chunks_mut(chunk).zip(combos.chunks(chunk)) {
                scope.spawn(move || {
                    for (row, combo) in slot.iter_mut().zip(shard) {
                        *row = Some(run_cell(config, *combo, profiles));
                    }
                });
            }
        });
    }

    CostReport {
        config: *config,
        profiles,
        cells: rows.into_iter().flat_map(|row| row.expect("every cell ran")).collect(),
    }
}

/// Measure one mitigation cell under every profile: the population is built
/// once (it depends on the deployment, not the link) and crawled per
/// profile through the zero-allocation scratch, folding each visit's
/// timeline and streamed classification as it completes.
fn run_cell(config: &CostConfig, mitigations: MitigationSet, profiles: &[LinkProfile]) -> Vec<CostCell> {
    let env = PopulationBuilder::new(
        PopulationProfile::alexa(),
        config.sites,
        config.seed + ALEXA_POPULATION_SEED_OFFSET,
    )
    .with_mitigations(mitigations)
    .build();
    let planned_octets = env.total_planned_octets();
    let label = mitigations.label();

    let mut scratch = VisitScratch::without_netlog();
    let mut classifier = FastVisitClassifier::new();
    profiles
        .iter()
        .enumerate()
        .map(|(profile_index, profile)| {
            let crawler = Crawler::new(
                &label,
                BrowserConfig::with_mitigations(mitigations).over_link(profile),
                config.seed + ALEXA_CRAWL_SEED_OFFSET,
            );
            let mut totals = CostTotals::new();
            let mut accumulator = Accumulator::new();
            for index in 0..env.sites.len() {
                let times = crawler.visit_site_into(&mut scratch, &env, index);
                totals.absorb_visit(scratch.timeline());
                if scratch.all_ok() {
                    let counts = classify_scratch(&mut classifier, &scratch, DurationModel::Recorded);
                    accumulator.observe_counts(&counts);
                } else {
                    // HTTP 421 exclusions: fall back to the full pipeline.
                    let visit = scratch.to_page_visit(&env.sites[index], times);
                    accumulator.observe(&classify_site(&site_from_visit(&visit), DurationModel::Recorded));
                }
            }
            CostCell {
                mitigations,
                profile: profile_index,
                totals,
                redundant_connections: accumulator.finish(&label).redundant.connections,
                planned_octets,
            }
        })
        .collect()
}

impl CostReport {
    /// The cell measuring `mitigations` under profile index `profile`.
    pub fn cell(&self, profile: usize, mitigations: MitigationSet) -> &CostCell {
        &self.cells[mitigations.bits() as usize * self.profiles.len() + profile]
    }

    /// The measured-web cell (no mitigation) under the given profile.
    pub fn baseline(&self, profile: usize) -> &CostCell {
        self.cell(profile, MitigationSet::empty())
    }

    /// Setup round trips (handshakes + cold-cwnd growth) a deployment saves
    /// vs. the measured web, under the given profile.
    pub fn setup_rtts_saved(&self, profile: usize, mitigations: MitigationSet) -> u64 {
        self.baseline(profile)
            .totals
            .sums
            .setup_rtts()
            .saturating_sub(self.cell(profile, mitigations).totals.sums.setup_rtts())
    }

    /// Handshake octets a deployment saves vs. the measured web.
    pub fn handshake_octets_saved(&self, profile: usize, mitigations: MitigationSet) -> u64 {
        self.baseline(profile)
            .totals
            .sums
            .handshake_octets
            .saturating_sub(self.cell(profile, mitigations).totals.sums.handshake_octets)
    }

    /// Mean page-load-time reduction of a deployment vs. the measured web
    /// (positive = faster pages under the deployment).
    pub fn plt_saved(&self, profile: usize, mitigations: MitigationSet) -> f64 {
        let baseline = self.baseline(profile).totals.mean_plt_millis();
        if baseline == 0.0 {
            return 0.0;
        }
        1.0 - self.cell(profile, mitigations).totals.mean_plt_millis() / baseline
    }

    /// Page-load-time inflation the measured web's redundancy costs under
    /// the given profile: how much slower the baseline loads than the full
    /// deployment (all four mitigations).
    pub fn plt_inflation(&self, profile: usize) -> f64 {
        let full = self.cell(profile, MitigationSet::all()).totals.mean_plt_millis();
        if full == 0.0 {
            return 0.0;
        }
        self.baseline(profile).totals.mean_plt_millis() / full - 1.0
    }

    /// Render the report: one per-profile grid plus the redundancy-tax
    /// summary across profiles.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (profile_index, profile) in self.profiles.iter().enumerate() {
            let mut grid = TextTable::new(
                &format!(
                    "Cost sweep — {} ({} ms RTT, {:.1} kB/ms, {:.1} % loss; {} sites, seed {})",
                    profile.name,
                    profile.rtt_ms,
                    profile.bandwidth_bytes_per_ms as f64 / 1_000.0,
                    profile.loss_ppm as f64 / 10_000.0,
                    self.config.sites,
                    self.config.seed
                ),
                &[
                    "deployment",
                    "conns.",
                    "redundant",
                    "hs RTTs",
                    "hs KiB",
                    "cwnd RTTs",
                    "DNS walks",
                    "setup s",
                    "mean PLT ms",
                    "PLT saved",
                    "RTTs saved",
                    "KiB saved",
                ],
            );
            for combo in MitigationSet::all_combinations() {
                let cell = self.cell(profile_index, combo);
                let sums = &cell.totals.sums;
                grid.push_row([
                    combo.label(),
                    format_count(sums.connections_opened as usize),
                    format_count(cell.redundant_connections),
                    format_count(sums.handshake_rtts as usize),
                    format_count((sums.handshake_octets / 1024) as usize),
                    format_count(sums.cold_cwnd_rtts as usize),
                    format_count(sums.dns_recursive_walks as usize),
                    format!("{:.1}", cell.totals.setup_time(profile).as_secs_f64()),
                    format!("{:.1}", cell.totals.mean_plt_millis()),
                    format_percent(self.plt_saved(profile_index, combo)),
                    format_count(self.setup_rtts_saved(profile_index, combo) as usize),
                    format_count((self.handshake_octets_saved(profile_index, combo) / 1024) as usize),
                ]);
            }
            out.push_str(&grid.render());
            out.push('\n');
        }

        let mut tax = TextTable::new(
            "Redundancy tax: the measured web vs. the full deployment, per profile",
            &["profile", "extra setup RTTs", "extra hs KiB", "extra setup s", "PLT inflation"],
        );
        for (profile_index, profile) in self.profiles.iter().enumerate() {
            let all = MitigationSet::all();
            let extra_setup = self
                .baseline(profile_index)
                .totals
                .setup_time(profile)
                .saturating_sub(self.cell(profile_index, all).totals.setup_time(profile));
            tax.push_row([
                profile.name.clone(),
                format_count(self.setup_rtts_saved(profile_index, all) as usize),
                format_count((self.handshake_octets_saved(profile_index, all) / 1024) as usize),
                format!("{:.1}", extra_setup.as_secs_f64()),
                format_percent(self.plt_inflation(profile_index)),
            ]);
        }
        out.push_str(&tax.render());

        let baseline = self.baseline(0);
        out.push_str(&format!(
            "\npage weight: {} planned KiB across {} sites | every cell crawls the same plans — \
             cells differ only in deployment (rows) and path (tables)\nnote: 'redundant' is the \
             classifier's coalescing potential under each deployment (not monotone; see the sweep \
             report); the saved columns compare against the measured web on the same profile.\n",
            format_count((baseline.planned_octets / 1024) as usize),
            format_count(self.config.sites),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim_types::Mitigation;
    use std::sync::OnceLock;

    fn shared_report() -> &'static CostReport {
        static REPORT: OnceLock<CostReport> = OnceLock::new();
        REPORT.get_or_init(|| run_cost(&CostConfig { sites: 60, seed: 20_210_420, threads: 8 }))
    }

    #[test]
    fn cost_grid_covers_every_cell_in_order() {
        let report = shared_report();
        assert_eq!(report.profiles.len(), 3);
        assert_eq!(report.cells.len(), MitigationSet::COMBINATIONS * 3);
        for combo in MitigationSet::all_combinations() {
            for profile in 0..report.profiles.len() {
                let cell = report.cell(profile, combo);
                assert_eq!(cell.mitigations, combo);
                assert_eq!(cell.profile, profile);
                assert!(cell.totals.visits as usize == report.config.sites);
                assert!(cell.totals.sums.connections_opened > 0);
            }
        }
    }

    #[test]
    fn baseline_pays_more_than_the_full_deployment() {
        let report = shared_report();
        for profile in 0..report.profiles.len() {
            assert!(report.setup_rtts_saved(profile, MitigationSet::all()) > 0);
            assert!(report.handshake_octets_saved(profile, MitigationSet::all()) > 0);
            assert!(report.plt_inflation(profile) >= 0.0);
        }
    }

    #[test]
    fn setup_cost_is_monotone_across_the_whole_grid() {
        // The cost mirror of the sweep's connection-savings monotonicity:
        // adding any mitigation to any combination never increases the
        // setup price (handshake RTTs + octets + cold-cwnd rounds), on any
        // link profile.
        let report = shared_report();
        for profile in 0..report.profiles.len() {
            for combo in MitigationSet::all_combinations() {
                for m in Mitigation::ALL {
                    if combo.contains(m) {
                        continue;
                    }
                    let without = &report.cell(profile, combo).totals.sums;
                    let with = &report.cell(profile, combo.with(m)).totals.sums;
                    assert!(
                        with.setup_rtts() <= without.setup_rtts(),
                        "adding {m} to {combo} on profile {profile} raised setup RTTs"
                    );
                    assert!(
                        with.handshake_octets <= without.handshake_octets,
                        "adding {m} to {combo} on profile {profile} raised handshake octets"
                    );
                }
            }
        }
    }

    #[test]
    fn lossier_profiles_pay_a_higher_redundancy_tax_in_time() {
        // The same saved round trips are worth more milliseconds on worse
        // links: the full deployment's setup-time saving must increase from
        // datacenter to broadband to lossy cellular.
        let report = shared_report();
        let all = MitigationSet::all();
        let saving = |profile_index: usize| {
            let profile = &report.profiles[profile_index];
            report
                .baseline(profile_index)
                .totals
                .setup_time(profile)
                .saturating_sub(report.cell(profile_index, all).totals.setup_time(profile))
        };
        assert!(saving(0) < saving(1), "broadband must tax more than datacenter");
        assert!(saving(1) < saving(2), "lossy cellular must tax more than broadband");
    }

    #[test]
    fn broadband_baseline_matches_the_sweep_measurement() {
        // The cost sweep's broadband baseline runs the exact crawl the
        // mitigation sweep's baseline cell runs (same seeds, same link
        // parameters), so the two engines must count the same connections.
        let config = CostConfig { sites: 40, seed: 20_210_420, threads: 4 };
        let cost = run_cost(&config);
        let sweep = crate::sweep::run_sweep(&crate::sweep::SweepConfig {
            sites: config.sites,
            seed: config.seed,
            threads: config.threads,
        });
        let broadband = 1;
        assert_eq!(cost.profiles[broadband].name, "broadband");
        assert_eq!(
            cost.baseline(broadband).totals.sums.connections_opened as usize,
            sweep.baseline().summary.total.connections,
        );
        assert_eq!(
            cost.baseline(broadband).redundant_connections,
            sweep.baseline().summary.redundant.connections,
        );
    }

    #[test]
    fn every_request_is_accounted_opened_or_reused() {
        let report = shared_report();
        for cell in &report.cells {
            let sums = &cell.totals.sums;
            assert_eq!(sums.connections_opened + sums.connections_reused, sums.requests);
            assert!(sums.handshake_rtts >= 2 * sums.connections_opened);
            assert!(sums.dns_authority_queries >= sums.dns_recursive_walks);
            // The measurement methodology resets caches between visits, so
            // no handshake is ever charged under the resumption discount.
            assert_eq!(sums.resumed_handshakes, 0);
        }
    }

    #[test]
    fn report_renders_every_profile_and_cell() {
        let report = shared_report();
        let text = report.render();
        for profile in &report.profiles {
            assert!(text.contains(&profile.name), "missing profile {}", profile.name);
        }
        for combo in MitigationSet::all_combinations() {
            assert!(text.contains(&combo.label()), "missing {combo}");
        }
        assert!(text.contains("Redundancy tax"));
    }
}
