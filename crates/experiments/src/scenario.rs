//! Scenario construction: populations, crawls and datasets shared by every
//! experiment.

use connreuse_core::{dataset_from_crawl, dataset_from_har, Dataset};
use netsim_browser::{BrowserConfig, Crawler};
use netsim_har::{ArchivePipeline, FilterStatistics};
use netsim_web::{PopulationBuilder, PopulationProfile, WebEnvironment};
use serde::{Deserialize, Serialize};

/// Seed offset of the Alexa-shaped population relative to the root seed.
/// Shared with the mitigation sweep so its baseline cell reproduces the
/// scenario's own Alexa measurement.
pub const ALEXA_POPULATION_SEED_OFFSET: u64 = 1;

/// Seed offset of the Alexa crawls (stock and patched) relative to the root
/// seed. Shared with the mitigation sweep and the `whatif` experiment.
pub const ALEXA_CRAWL_SEED_OFFSET: u64 = 10;

/// Sizing and seeding of the simulated measurement campaign.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Number of sites in the HTTP-Archive-shaped population (paper: 6.24 M).
    pub archive_sites: usize,
    /// Number of sites in the Alexa-shaped population (paper: 100 k).
    pub alexa_sites: usize,
    /// Number of sites in the shared "overlap" population (paper: 29.53 k
    /// sites common to both lists).
    pub overlap_sites: usize,
    /// Root seed for all stochastic choices.
    pub seed: u64,
    /// Worker threads for the crawls.
    pub threads: usize,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            archive_sites: 3_000,
            alexa_sites: 1_500,
            overlap_sites: 600,
            seed: 20_210_420,
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
        }
    }
}

impl ScenarioConfig {
    /// A small configuration for tests and micro-benchmarks.
    pub fn quick() -> Self {
        ScenarioConfig {
            archive_sites: 300,
            alexa_sites: 180,
            overlap_sites: 80,
            ..ScenarioConfig::default()
        }
    }
}

/// Everything the experiments operate on: the generated environments and the
/// four measured datasets (plus the two overlap crawls).
#[derive(Debug)]
pub struct Scenario {
    /// The configuration the scenario was built with.
    pub config: ScenarioConfig,
    /// The HTTP-Archive-shaped population.
    pub archive_env: WebEnvironment,
    /// The Alexa-shaped population.
    pub alexa_env: WebEnvironment,
    /// The shared population used for the overlap analysis.
    pub overlap_env: WebEnvironment,
    /// The HAR corpus of the archive population, after the §4.3 filter.
    pub har: Dataset,
    /// Filter bookkeeping of the HAR corpus.
    pub har_filter_statistics: FilterStatistics,
    /// The own-measurement crawl of the Alexa population (stock Chromium).
    pub alexa: Dataset,
    /// The patched crawl of the Alexa population (Fetch credentials ignored).
    pub alexa_without_fetch: Dataset,
    /// The overlap population measured through the HAR pipeline.
    pub overlap_har: Dataset,
    /// The overlap population measured like the own Alexa crawl.
    pub overlap_alexa: Dataset,
}

impl Scenario {
    /// Build the full scenario: three populations, four crawls, two HAR
    /// pipelines.
    pub fn build(config: ScenarioConfig) -> Scenario {
        let archive_env =
            PopulationBuilder::new(PopulationProfile::archive(), config.archive_sites, config.seed).build();
        let alexa_env = PopulationBuilder::new(
            PopulationProfile::alexa(),
            config.alexa_sites,
            config.seed + ALEXA_POPULATION_SEED_OFFSET,
        )
        .build();
        let overlap_env =
            PopulationBuilder::new(PopulationProfile::alexa(), config.overlap_sites, config.seed + 2).build();

        let mut har_corpus = ArchivePipeline::new(config.seed).with_threads(config.threads).run(&archive_env);
        let har_filter_statistics = har_corpus.filter();
        let har = dataset_from_har(&har_corpus, "HAR");

        let alexa_report =
            Crawler::new("Alexa", BrowserConfig::alexa_measurement(), config.seed + ALEXA_CRAWL_SEED_OFFSET)
                .with_threads(config.threads)
                .crawl(&alexa_env);
        let alexa = dataset_from_crawl(&alexa_report);

        let patched_report = Crawler::new(
            "Alexa w/o Fetch",
            BrowserConfig::alexa_without_fetch(),
            config.seed + ALEXA_CRAWL_SEED_OFFSET,
        )
        .with_threads(config.threads)
        .crawl(&alexa_env);
        let alexa_without_fetch = dataset_from_crawl(&patched_report);

        let mut overlap_har_corpus =
            ArchivePipeline::new(config.seed + 20).with_threads(config.threads).run(&overlap_env);
        overlap_har_corpus.filter();
        let overlap_har = dataset_from_har(&overlap_har_corpus, "HAR Overlap");

        let overlap_report =
            Crawler::new("Alexa Overlap", BrowserConfig::alexa_measurement(), config.seed + 21)
                .with_threads(config.threads)
                .crawl(&overlap_env);
        let overlap_alexa = dataset_from_crawl(&overlap_report);

        Scenario {
            config,
            archive_env,
            alexa_env,
            overlap_env,
            har,
            har_filter_statistics,
            alexa,
            alexa_without_fetch,
            overlap_har,
            overlap_alexa,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scenario_builds_consistent_datasets() {
        let scenario = Scenario::build(ScenarioConfig::quick());
        assert_eq!(scenario.har.sites.len(), scenario.config.archive_sites);
        assert_eq!(scenario.alexa.sites.len(), scenario.config.alexa_sites);
        assert_eq!(scenario.alexa_without_fetch.sites.len(), scenario.config.alexa_sites);
        assert_eq!(scenario.overlap_har.sites.len(), scenario.config.overlap_sites);
        assert_eq!(scenario.overlap_alexa.sites.len(), scenario.config.overlap_sites);
        assert!(scenario.har_filter_statistics.total_entries > 0);
        assert!(scenario.alexa.total_connections() > scenario.alexa.http2_site_count());
        // The patched crawl never opens more connections than the stock one.
        assert!(scenario.alexa_without_fetch.total_connections() <= scenario.alexa.total_connections());
        // Both overlap crawls cover the same sites.
        let har_sites: std::collections::BTreeSet<_> =
            scenario.overlap_har.sites.iter().map(|s| s.site).collect();
        let alexa_sites: std::collections::BTreeSet<_> =
            scenario.overlap_alexa.sites.iter().map(|s| s.site).collect();
        assert_eq!(har_sites, alexa_sites);
    }
}
