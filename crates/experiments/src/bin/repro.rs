//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run -p connreuse-experiments --bin repro --release -- all
//! cargo run -p connreuse-experiments --bin repro --release -- table1 table2 \
//!     --archive-sites 10000 --alexa-sites 4000 --seed 7 --out results/
//! ```
//!
//! Without arguments the binary lists the available experiments.

use connreuse_experiments::{run_experiment, Scenario, ScenarioConfig, EXPERIMENTS};
use std::path::PathBuf;

struct CliOptions {
    experiments: Vec<String>,
    config: ScenarioConfig,
    out_dir: Option<PathBuf>,
}

fn parse_args() -> Result<CliOptions, String> {
    let mut experiments = Vec::new();
    let mut config = ScenarioConfig::default();
    let mut out_dir = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--archive-sites" => config.archive_sites = parse_value(&mut args, &arg)?,
            "--alexa-sites" => config.alexa_sites = parse_value(&mut args, &arg)?,
            "--overlap-sites" => config.overlap_sites = parse_value(&mut args, &arg)?,
            "--seed" => config.seed = parse_value(&mut args, &arg)?,
            "--threads" => config.threads = parse_value(&mut args, &arg)?,
            "--quick" => {
                let quick = ScenarioConfig::quick();
                config.archive_sites = quick.archive_sites;
                config.alexa_sites = quick.alexa_sites;
                config.overlap_sites = quick.overlap_sites;
            }
            "--out" => {
                let value = args.next().ok_or("--out requires a directory")?;
                out_dir = Some(PathBuf::from(value));
            }
            "--help" | "-h" => {
                experiments.clear();
                experiments.push("help".to_string());
                return Ok(CliOptions { experiments, config, out_dir });
            }
            other if other.starts_with("--") => return Err(format!("unknown option {other}")),
            other => experiments.push(other.to_string()),
        }
    }
    Ok(CliOptions { experiments, config, out_dir })
}

fn parse_value<T: std::str::FromStr>(
    args: &mut impl Iterator<Item = String>,
    flag: &str,
) -> Result<T, String> {
    let value = args.next().ok_or_else(|| format!("{flag} requires a value"))?;
    value.parse().map_err(|_| format!("invalid value for {flag}: {value}"))
}

fn print_usage() {
    println!("repro — regenerate the tables and figures of 'Sharding and HTTP/2 Connection Reuse Revisited'");
    println!();
    println!("usage: repro [EXPERIMENT ...|all] [options]");
    println!();
    println!("experiments: {}", EXPERIMENTS.join(", "));
    println!();
    println!("options:");
    println!("  --archive-sites N   size of the HTTP-Archive-shaped population (default 3000)");
    println!("  --alexa-sites N     size of the Alexa-shaped population (default 1500)");
    println!("  --overlap-sites N   size of the shared overlap population (default 600)");
    println!("  --seed N            root seed (default 20210420)");
    println!("  --threads N         crawl worker threads (default: available parallelism)");
    println!("  --quick             use the small test-sized populations");
    println!("  --out DIR           also write each experiment's report to DIR/<name>.txt");
    println!();
    println!("exit status: 0 on success, 1 on experiment/IO failure, 2 on bad arguments");
}

fn main() {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            print_usage();
            std::process::exit(2);
        }
    };
    if options.experiments.is_empty() || options.experiments.iter().any(|e| e == "help") {
        print_usage();
        return;
    }
    let selected: Vec<String> = if options.experiments.iter().any(|e| e == "all") {
        EXPERIMENTS.iter().map(|s| s.to_string()).collect()
    } else {
        options.experiments.clone()
    };

    eprintln!(
        "building scenario: archive={} alexa={} overlap={} seed={} threads={}",
        options.config.archive_sites,
        options.config.alexa_sites,
        options.config.overlap_sites,
        options.config.seed,
        options.config.threads
    );
    let start = std::time::Instant::now();
    let scenario = Scenario::build(options.config);
    eprintln!("scenario ready in {:.1}s", start.elapsed().as_secs_f64());

    if let Some(dir) = &options.out_dir {
        if let Err(error) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create {}: {error}", dir.display());
            std::process::exit(1);
        }
    }

    let mut failures = 0;
    for name in &selected {
        match run_experiment(name, &scenario) {
            Ok(output) => {
                println!("{}", output.text);
                if let Some(dir) = &options.out_dir {
                    let path = dir.join(format!("{name}.txt"));
                    if let Err(error) = std::fs::write(&path, &output.text) {
                        eprintln!("error: cannot write {}: {error}", path.display());
                        failures += 1;
                    }
                }
            }
            Err(message) => {
                eprintln!("error: {message}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
