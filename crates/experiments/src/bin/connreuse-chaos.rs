//! `connreuse-chaos` — deterministic fault injection over warm session
//! traffic: failure levels × mitigation deployments × link profiles, plus
//! the hedged-dial mitigation.
//!
//! ```text
//! cargo run -p connreuse-experiments --bin connreuse-chaos --release
//! cargo run -p connreuse-experiments --bin connreuse-chaos --release -- --quick
//! cargo run -p connreuse-experiments --bin connreuse-chaos --release -- \
//!     --sites 4000 --sessions 200 --seed 7 --threads 8 --out results/chaos.txt
//! cargo run -p connreuse-experiments --bin connreuse-chaos --release -- \
//!     --quick --check-threads 1,2
//! ```

use connreuse_experiments::chaos::{run_chaos, ChaosConfig};
use std::path::PathBuf;

struct CliOptions {
    config: ChaosConfig,
    out: Option<PathBuf>,
    check_threads: Vec<usize>,
    help: bool,
}

fn parse_args() -> Result<CliOptions, String> {
    let mut config = ChaosConfig::default();
    let mut out = None;
    let mut check_threads = Vec::new();
    let mut help = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--sites" => config.sites = parse_value(&mut args, &arg)?,
            "--sessions" => config.sessions = parse_value(&mut args, &arg)?,
            "--seed" => config.seed = parse_value(&mut args, &arg)?,
            "--threads" => config.threads = parse_value(&mut args, &arg)?,
            "--quick" => {
                let quick = ChaosConfig::quick();
                config.sites = quick.sites;
                config.sessions = quick.sessions;
            }
            "--check-threads" => {
                let value = args.next().ok_or("--check-threads requires a comma-separated list")?;
                check_threads = value
                    .split(',')
                    .map(|part| part.trim().parse::<usize>())
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(|_| format!("invalid value for --check-threads: {value}"))?;
                if check_threads.len() < 2 {
                    return Err("--check-threads needs at least two thread counts".to_string());
                }
            }
            "--out" => {
                let value = args.next().ok_or("--out requires a file path")?;
                out = Some(PathBuf::from(value));
            }
            "--help" | "-h" => help = true,
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(CliOptions { config, out, check_threads, help })
}

fn parse_value<T: std::str::FromStr>(
    args: &mut impl Iterator<Item = String>,
    flag: &str,
) -> Result<T, String> {
    let value = args.next().ok_or_else(|| format!("{flag} requires a value"))?;
    value.parse().map_err(|_| format!("invalid value for {flag}: {value}"))
}

fn print_usage() {
    println!("connreuse-chaos — fault injection over warm session traffic");
    println!();
    println!("usage: connreuse-chaos [options]");
    println!();
    println!("options:");
    println!("  --sites N            sites per cell population (default 1500)");
    println!("  --sessions N         user sessions per cell (default sites/15)");
    println!("  --seed N             root seed shared by every cell (default 20210420)");
    println!("  --threads N          worker threads the mitigation combos shard across");
    println!("  --quick              use the small test-sized run (40 sites, 10 sessions)");
    println!("  --check-threads A,B  run at each thread count and assert byte-identical reports");
    println!("  --out FILE           also write the report to FILE");
    println!();
    println!("exit status: 0 on success, 1 on check/IO failure, 2 on bad arguments");
}

fn main() {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            print_usage();
            std::process::exit(2);
        }
    };
    if options.help {
        print_usage();
        return;
    }

    // Determinism check: the same grid sharded over different thread counts
    // must render byte-identically (the shard-merge contract).
    if !options.check_threads.is_empty() {
        let mut reference: Option<(usize, String)> = None;
        for &threads in &options.check_threads {
            let config = ChaosConfig { threads, ..options.config };
            let start = std::time::Instant::now();
            let text = run_chaos(&config).render();
            eprintln!("threads={threads}: chaos done in {:.1}s", start.elapsed().as_secs_f64());
            match &reference {
                None => reference = Some((threads, text)),
                Some((base, expected)) => {
                    if *expected != text {
                        eprintln!("error: report at --threads {threads} differs from --threads {base}");
                        std::process::exit(1);
                    }
                    eprintln!("threads={threads}: byte-identical to threads={base}");
                }
            }
        }
        println!("{}", reference.expect("at least two runs").1);
        return;
    }

    eprintln!(
        "injecting faults into {} sessions per cell over {} sites: seed={} threads={}",
        options.config.sessions, options.config.sites, options.config.seed, options.config.threads
    );
    let start = std::time::Instant::now();
    let report = run_chaos(&options.config);
    eprintln!("chaos done in {:.1}s", start.elapsed().as_secs_f64());

    let text = report.render();
    println!("{text}");
    if let Some(path) = &options.out {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            if let Err(error) = std::fs::create_dir_all(parent) {
                eprintln!("error: cannot create {}: {error}", parent.display());
                std::process::exit(1);
            }
        }
        if let Err(error) = std::fs::write(path, &text) {
            eprintln!("error: cannot write {}: {error}", path.display());
            std::process::exit(1);
        }
    }
}
