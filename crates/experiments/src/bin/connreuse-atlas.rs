//! `connreuse-atlas` — run the 100 k-site atlas scale scenario and print the
//! redundancy report plus throughput/peak-RSS metrics.
//!
//! ```text
//! cargo run -p connreuse-experiments --bin connreuse-atlas --release
//! cargo run -p connreuse-experiments --bin connreuse-atlas --release -- --quick
//! cargo run -p connreuse-experiments --bin connreuse-atlas --release -- \
//!     --sites 100000 --chunk 1000 --threads 8 --out results/atlas.txt
//! ```

use connreuse_experiments::atlas::{run_atlas, AtlasConfig};
use std::path::PathBuf;

struct CliOptions {
    config: AtlasConfig,
    out: Option<PathBuf>,
    help: bool,
}

fn parse_args() -> Result<CliOptions, String> {
    let mut config = AtlasConfig::full();
    let mut out = None;
    let mut help = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--sites" => config.sites = parse_value(&mut args, &arg)?,
            "--chunk" => config.chunk_sites = parse_value(&mut args, &arg)?,
            "--seed" => config.seed = parse_value(&mut args, &arg)?,
            "--threads" => config.threads = parse_value(&mut args, &arg)?,
            "--zipf" => config.zipf_exponent = parse_value(&mut args, &arg)?,
            "--quick" => {
                let quick = AtlasConfig::quick();
                config.sites = quick.sites;
                config.chunk_sites = quick.chunk_sites;
            }
            "--out" => {
                let value = args.next().ok_or("--out requires a file path")?;
                out = Some(PathBuf::from(value));
            }
            "--help" | "-h" => help = true,
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(CliOptions { config, out, help })
}

fn parse_value<T: std::str::FromStr>(
    args: &mut impl Iterator<Item = String>,
    flag: &str,
) -> Result<T, String> {
    let value = args.next().ok_or_else(|| format!("{flag} requires a value"))?;
    value.parse().map_err(|_| format!("invalid value for {flag}: {value}"))
}

fn print_usage() {
    println!("connreuse-atlas — crawl + classify a paper-scale population with bounded memory");
    println!();
    println!("usage: connreuse-atlas [options]");
    println!();
    println!("options:");
    println!("  --sites N    population size (default 100000, the paper's own crawl)");
    println!("  --chunk N    sites per generation/crawl chunk (default 1000; bounds memory)");
    println!("  --seed N     root seed (default 20210420)");
    println!("  --threads N  worker threads the chunks shard across");
    println!("  --zipf X     Zipf exponent of the head/tail profile mix (default 0.35)");
    println!("  --quick      use the small test-sized population (400 sites)");
    println!("  --out FILE   also write the report to FILE");
}

fn main() {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            print_usage();
            std::process::exit(2);
        }
    };
    if options.help {
        print_usage();
        return;
    }

    eprintln!(
        "atlas: sites={} chunk={} seed={} threads={} zipf={}",
        options.config.sites,
        options.config.chunk_sites,
        options.config.seed,
        options.config.threads,
        options.config.zipf_exponent
    );
    let report = run_atlas(&options.config);

    let text = report.render();
    println!("{text}");
    // Metrics go to stderr so `--out` files and piped stdout stay
    // deterministic for a given config.
    eprintln!("{}", report.metrics.render());
    if let Some(path) = &options.out {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            if let Err(error) = std::fs::create_dir_all(parent) {
                eprintln!("error: cannot create {}: {error}", parent.display());
                std::process::exit(1);
            }
        }
        if let Err(error) = std::fs::write(path, &text) {
            eprintln!("error: cannot write {}: {error}", path.display());
            std::process::exit(1);
        }
    }
}
