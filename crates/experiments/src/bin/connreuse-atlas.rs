//! `connreuse-atlas` — run the atlas scale scenario (100 k sites by default,
//! 1 M with `--million`) and print the redundancy report plus
//! throughput/peak-RSS metrics.
//!
//! ```text
//! cargo run -p connreuse-experiments --bin connreuse-atlas --release
//! cargo run -p connreuse-experiments --bin connreuse-atlas --release -- --quick
//! cargo run -p connreuse-experiments --bin connreuse-atlas --release -- --million --threads 8
//! cargo run -p connreuse-experiments --bin connreuse-atlas --release -- \
//!     --sites 100000 --chunk 1000 --threads 8 --out results/atlas.txt
//! cargo run -p connreuse-experiments --bin connreuse-atlas --release -- \
//!     --million --bench-threads 1,8 --bench-json
//! ```
//!
//! `--bench-threads` runs the identical population once per thread count,
//! **asserts the rendered reports are byte-identical** (the executor's
//! determinism contract), and emits one record per run into the
//! `--bench-json` file — the scaling-curve workflow PERF.md describes.

use connreuse_experiments::atlas::{run_atlas, AtlasConfig, AtlasReport, BenchFile};
use connreuse_experiments::profile::{render_stage_table, ProfileFile};
use std::path::PathBuf;

/// Default file the `--bench-json` flag writes the machine-readable record
/// to when no explicit path follows it. The committed copy at the repo root
/// is the full-run baseline — point quick/CI runs somewhere else so they do
/// not clobber it.
const BENCH_JSON_PATH: &str = "BENCH_atlas.json";

/// Default file `--profile-json` writes the per-stage table to. The
/// committed per-stage *budgets* live in `BENCH_stages.json` at the repo
/// root; fresh profiles go under `ci-artifacts/` where the bench guard's
/// stage check picks them up.
const PROFILE_JSON_PATH: &str = "ci-artifacts/PROFILE_atlas.json";

struct CliOptions {
    config: AtlasConfig,
    out: Option<PathBuf>,
    bench_json: Option<PathBuf>,
    bench_threads: Option<Vec<usize>>,
    profile: bool,
    profile_json: Option<PathBuf>,
    help: bool,
}

fn parse_args() -> Result<CliOptions, String> {
    let mut config = AtlasConfig::full();
    let mut out = None;
    let mut bench_json = None;
    let mut bench_threads = None;
    let mut profile = false;
    let mut profile_json = None;
    let mut quick = false;
    let mut help = false;
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--sites" => config.sites = parse_value(&mut args, &arg)?,
            "--chunk" => config.chunk_sites = parse_value(&mut args, &arg)?,
            "--seed" => config.seed = parse_value(&mut args, &arg)?,
            "--threads" => config.threads = parse_value(&mut args, &arg)?,
            "--zipf" => config.zipf_exponent = parse_value(&mut args, &arg)?,
            "--quick" => {
                quick = true;
                let sizes = AtlasConfig::quick();
                config.sites = sizes.sites;
                config.chunk_sites = sizes.chunk_sites;
            }
            "--million" => {
                let sizes = AtlasConfig::million();
                config.sites = sizes.sites;
                config.chunk_sites = sizes.chunk_sites;
            }
            "--bench-threads" => {
                let value = args.next().ok_or("--bench-threads requires a comma-separated list")?;
                let counts: Result<Vec<usize>, _> =
                    value.split(',').map(|item| item.trim().parse::<usize>()).collect();
                let counts = counts.map_err(|_| format!("invalid value for --bench-threads: {value}"))?;
                if counts.is_empty() || counts.contains(&0) {
                    return Err(format!("--bench-threads needs positive thread counts, got {value}"));
                }
                bench_threads = Some(counts);
            }
            "--out" => {
                let value = args.next().ok_or("--out requires a file path")?;
                out = Some(PathBuf::from(value));
            }
            "--bench-json" => {
                // Optional file operand: `--bench-json results/run.json`.
                let explicit = args.peek().filter(|next| !next.starts_with('-')).is_some();
                bench_json = Some(if explicit {
                    PathBuf::from(args.next().expect("peeked operand"))
                } else {
                    PathBuf::from(BENCH_JSON_PATH)
                });
            }
            "--profile" => profile = true,
            "--profile-json" => {
                // Optional file operand: `--profile-json results/stages.json`.
                let explicit = args.peek().filter(|next| !next.starts_with('-')).is_some();
                profile_json = Some(if explicit {
                    PathBuf::from(args.next().expect("peeked operand"))
                } else {
                    PathBuf::from(PROFILE_JSON_PATH)
                });
                profile = true;
            }
            "--help" | "-h" => help = true,
            other => return Err(format!("unknown option {other}")),
        }
    }
    if quick && bench_json.as_deref().is_some_and(resolves_to_default_baseline) {
        return Err(format!(
            "--quick refuses to write the default {BENCH_JSON_PATH} (the committed copy is the \
             full-run baseline); pass an explicit file, e.g. --bench-json quick-bench.json"
        ));
    }
    Ok(CliOptions { config, out, bench_json, bench_threads, profile, profile_json, help })
}

/// `true` if `path` denotes the committed baseline file in the current
/// directory, under any spelling (`BENCH_atlas.json`, `./BENCH_atlas.json`,
/// an absolute path, …) — the guard canonicalises the parent directory so a
/// creative spelling cannot slip a quick record over the baseline.
fn resolves_to_default_baseline(path: &std::path::Path) -> bool {
    if path.file_name() != Some(std::ffi::OsStr::new(BENCH_JSON_PATH)) {
        return false;
    }
    let parent = match path.parent() {
        Some(parent) if !parent.as_os_str().is_empty() => parent,
        _ => std::path::Path::new("."),
    };
    match (std::fs::canonicalize(parent), std::fs::canonicalize(".")) {
        (Ok(target_dir), Ok(cwd)) => target_dir == cwd,
        // An unresolvable parent cannot be the current directory.
        _ => false,
    }
}

fn parse_value<T: std::str::FromStr>(
    args: &mut impl Iterator<Item = String>,
    flag: &str,
) -> Result<T, String> {
    let value = args.next().ok_or_else(|| format!("{flag} requires a value"))?;
    value.parse().map_err(|_| format!("invalid value for {flag}: {value}"))
}

fn print_usage() {
    println!("connreuse-atlas — crawl + classify a paper-scale population with bounded memory");
    println!();
    println!("usage: connreuse-atlas [options]");
    println!();
    println!("options:");
    println!("  --sites N    population size (default 100000, the paper's own crawl)");
    println!("  --chunk N    sites per generation/crawl chunk (default 1000; bounds memory)");
    println!("  --seed N     root seed (default 20210420)");
    println!("  --threads N  worker threads the work-stealing executor uses");
    println!("  --zipf X     Zipf exponent of the head/tail profile mix (default 0.35)");
    println!("  --quick      use the small test-sized population (400 sites)");
    println!("  --million    use the million-site population (1000000 sites, 2000-site chunks)");
    println!("  --bench-threads L  run once per thread count in the comma list (e.g. 1,2,8),");
    println!("               assert the reports are byte-identical, and record each run");
    println!("  --out FILE   also write the report to FILE");
    println!("  --bench-json [FILE]  write machine-readable run metrics (default {BENCH_JSON_PATH};");
    println!("               the committed copy is the full-run baseline — quick runs should");
    println!("               pass an explicit FILE)");
    println!("  --profile    print the per-stage hotpath table to stderr (needs a build with");
    println!("               --features hotpath-profile to record anything)");
    println!("  --profile-json [FILE]  also write the stage table as JSON (default");
    println!("               {PROFILE_JSON_PATH}; implies --profile)");
    println!();
    println!("exit status: 0 on success, 1 on determinism-check/IO failure, 2 on bad arguments");
}

fn main() {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            print_usage();
            std::process::exit(2);
        }
    };
    if options.help {
        print_usage();
        return;
    }

    if options.profile {
        // Drain whatever a previous in-process run may have left behind so
        // the reported table covers exactly the runs below.
        let _ = netsim_types::profile::take_global();
        if !netsim_types::profile::enabled() {
            eprintln!(
                "profile: this build carries no instrumentation — rebuild with \
                 `--features hotpath-profile` to collect stage timings"
            );
        }
    }

    let thread_counts = options.bench_threads.clone().unwrap_or_else(|| vec![options.config.threads]);
    let mut records = Vec::new();
    let mut first: Option<AtlasReport> = None;
    for &threads in &thread_counts {
        let config = AtlasConfig { threads, ..options.config };
        eprintln!(
            "atlas: sites={} chunk={} seed={} threads={} zipf={}",
            config.sites, config.chunk_sites, config.seed, config.threads, config.zipf_exponent
        );
        let report = run_atlas(&config);
        // Metrics go to stderr so `--out` files and piped stdout stay
        // deterministic for a given config.
        eprintln!("{}", report.metrics.render());
        records.push(report.bench_record());
        match &first {
            None => first = Some(report),
            Some(reference) => {
                // The executor's determinism contract, checked on the real
                // workload: any thread count, the identical report.
                if reference.render() != report.render() {
                    eprintln!(
                        "error: report at threads={} diverges from threads={} — the run is not \
                         thread-count deterministic",
                        threads, thread_counts[0]
                    );
                    std::process::exit(1);
                }
                eprintln!("report at threads={} is byte-identical to threads={}", threads, thread_counts[0]);
            }
        }
    }
    let report = first.expect("at least one run");

    if options.profile {
        // Merged across every worker and every run above. Stage timings are
        // wall-clock, so like the throughput metrics they go to stderr only.
        let table = netsim_types::profile::take_global();
        eprint!("{}", render_stage_table(&table));
        if let Some(path) = &options.profile_json {
            let file = ProfileFile::from_table(&table);
            let json = match serde_json::to_string_pretty(&file) {
                Ok(json) => json,
                Err(error) => {
                    eprintln!("error: cannot serialise stage profile: {error}");
                    std::process::exit(1);
                }
            };
            if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                if let Err(error) = std::fs::create_dir_all(parent) {
                    eprintln!("error: cannot create {}: {error}", parent.display());
                    std::process::exit(1);
                }
            }
            if let Err(error) = std::fs::write(path, format!("{json}\n")) {
                eprintln!("error: cannot write {}: {error}", path.display());
                std::process::exit(1);
            }
            eprintln!("stage profile written to {}", path.display());
        }
    }

    let text = report.render();
    println!("{text}");
    if let Some(path) = &options.out {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            if let Err(error) = std::fs::create_dir_all(parent) {
                eprintln!("error: cannot create {}: {error}", parent.display());
                std::process::exit(1);
            }
        }
        if let Err(error) = std::fs::write(path, &text) {
            eprintln!("error: cannot write {}: {error}", path.display());
            std::process::exit(1);
        }
    }
    if let Some(path) = &options.bench_json {
        let file = BenchFile::new(records);
        let json = match serde_json::to_string_pretty(&file) {
            Ok(json) => json,
            Err(error) => {
                eprintln!("error: cannot serialise bench records: {error}");
                std::process::exit(1);
            }
        };
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            if let Err(error) = std::fs::create_dir_all(parent) {
                eprintln!("error: cannot create {}: {error}", parent.display());
                std::process::exit(1);
            }
        }
        if let Err(error) = std::fs::write(path, format!("{json}\n")) {
            eprintln!("error: cannot write {}: {error}", path.display());
            std::process::exit(1);
        }
        eprintln!("bench records written to {}", path.display());
    }
}
