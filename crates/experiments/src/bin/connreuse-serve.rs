//! `connreuse-serve` — the persistent what-if service: build a shard store
//! once, answer priced mitigation queries from it without re-crawling.
//!
//! ```text
//! cargo run -p connreuse-experiments --bin connreuse-serve --release -- \
//!     --store target/store --quick --build
//! cargo run -p connreuse-experiments --bin connreuse-serve --release -- \
//!     --store target/store --quick \
//!     --query "mitigations=all profile=lossy-cellular ranks=0..90"
//! cargo run -p connreuse-experiments --bin connreuse-serve --release -- \
//!     --store target/store-full --full --build --threads 8
//! printf 'mitigations=none\nmitigations=all profile=datacenter\n' | \
//!     cargo run -p connreuse-experiments --bin connreuse-serve --release -- \
//!     --store target/store --quick --serve
//! ```
//!
//! The store is incremental: `--build` on an up-to-date store reports
//! `shards rewritten: 0` and touches nothing. Without `--build`, the store
//! must already exist and carry the configuration's fingerprint — a
//! mismatch is refused (exit 1) instead of serving numbers from a different
//! experiment.

use connreuse_experiments::store::{
    answer_query, open_store, run_store, BuildReport, StoreConfig, StoreQuery, StoreRunReport,
};
use std::io::BufRead;
use std::path::PathBuf;

struct CliOptions {
    config: StoreConfig,
    store: PathBuf,
    build: bool,
    serve: bool,
    queries: Vec<String>,
    out: Option<PathBuf>,
    help: bool,
}

fn parse_args() -> Result<CliOptions, String> {
    let mut config = StoreConfig::quick();
    let mut store = None;
    let mut build = false;
    let mut serve = false;
    let mut queries = Vec::new();
    let mut out = None;
    let mut help = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--store" => {
                let value = args.next().ok_or("--store requires a directory path")?;
                store = Some(PathBuf::from(value));
            }
            "--build" => build = true,
            "--serve" => serve = true,
            "--quick" => config = StoreConfig::quick(),
            "--full" => config = StoreConfig::full(),
            "--sites" => config.sites = parse_value(&mut args, &arg)?,
            "--chunk-sites" => config.chunk_sites = parse_value(&mut args, &arg)?,
            "--seed" => config.seed = parse_value(&mut args, &arg)?,
            "--threads" => config.threads = parse_value(&mut args, &arg)?,
            "--query" => {
                queries.push(args.next().ok_or("--query requires a query string")?);
            }
            "--out" => {
                let value = args.next().ok_or("--out requires a file path")?;
                out = Some(PathBuf::from(value));
            }
            "--help" | "-h" => help = true,
            other => return Err(format!("unknown option {other}")),
        }
    }
    let store = match store {
        Some(store) => store,
        None if help => PathBuf::new(),
        None => return Err("--store DIR is required".to_string()),
    };
    Ok(CliOptions { config, store, build, serve, queries, out, help })
}

fn parse_value<T: std::str::FromStr>(
    args: &mut impl Iterator<Item = String>,
    flag: &str,
) -> Result<T, String> {
    let value = args.next().ok_or_else(|| format!("{flag} requires a value"))?;
    value.parse().map_err(|_| format!("invalid value for {flag}: {value}"))
}

fn print_usage() {
    println!("connreuse-serve — persistent shard store + priced what-if queries");
    println!();
    println!("usage: connreuse-serve --store DIR [options]");
    println!();
    println!("options:");
    println!("  --store DIR          store directory (required)");
    println!("  --build              build or incrementally refresh the store first");
    println!("  --quick              the small test-sized configuration (default)");
    println!("  --full               the paper-scale store: 100k sites, all 16 deployments");
    println!("  --sites N            population size (growth only appends chunks)");
    println!("  --chunk-sites N      sites per shard (changes the fingerprint)");
    println!("  --seed N             root seed (changes the fingerprint)");
    println!("  --threads N          worker threads for building and query folds");
    println!("  --query Q            answer Q (repeatable); default: the demo query set");
    println!("                       grammar: mitigations=<label> [profile=<name>] [ranks=<lo>..<hi>]");
    println!("  --serve              after the flag queries, answer one query per stdin line");
    println!("  --out FILE           also write the build/answer report to FILE");
    println!();
    println!("exit status: 0 on success, 1 on check/IO failure, 2 on bad arguments");
}

fn main() {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            print_usage();
            std::process::exit(2);
        }
    };
    if options.help {
        print_usage();
        return;
    }

    // Bad query grammar is an argument error (exit 2), caught before any
    // build work starts.
    let queries = if options.queries.is_empty() {
        options.config.demo_queries()
    } else {
        match options.queries.iter().map(|q| StoreQuery::parse(q, &options.config)).collect() {
            Ok(queries) => queries,
            Err(message) => {
                eprintln!("error: {message}");
                std::process::exit(2);
            }
        }
    };

    let start = std::time::Instant::now();
    let report = if options.build {
        run_store(&options.config, &options.store, &queries)
    } else {
        // Serve-only: the store must already exist and match the config;
        // nothing on disk is touched.
        open_store(&options.config, &options.store).and_then(|store| {
            let mut answers = Vec::with_capacity(queries.len());
            for query in &queries {
                answers.push(answer_query(&store, &options.config, query)?);
            }
            let build = BuildReport {
                config: options.config.clone(),
                fingerprint: store.manifest().fingerprint,
                chunk_count: store.chunk_count(),
                records_per_shard: store.manifest().keys.len(),
                rewritten: 0,
                reused: store.chunk_count(),
                removed: 0,
            };
            Ok(StoreRunReport { build, answers })
        })
    };
    let report = match report {
        Ok(report) => report,
        Err(error) => {
            eprintln!("error: {error}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "store at {} ready in {:.1}s ({} shards rewritten, {} reused)",
        options.store.display(),
        start.elapsed().as_secs_f64(),
        report.build.rewritten,
        report.build.reused
    );

    let text = report.render();
    println!("{text}");
    if let Some(path) = &options.out {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            if let Err(error) = std::fs::create_dir_all(parent) {
                eprintln!("error: cannot create {}: {error}", parent.display());
                std::process::exit(1);
            }
        }
        if let Err(error) = std::fs::write(path, &text) {
            eprintln!("error: cannot write {}: {error}", path.display());
            std::process::exit(1);
        }
    }

    if options.serve {
        serve_stdin(&options);
    }
}

/// The long-running loop: one query per stdin line, one answer per query.
/// Malformed queries get an `error:` line and the loop continues; store
/// corruption discovered mid-read is fatal (exit 1) — better down than
/// wrong.
fn serve_stdin(options: &CliOptions) {
    let store = match open_store(&options.config, &options.store) {
        Ok(store) => store,
        Err(error) => {
            eprintln!("error: {error}");
            std::process::exit(1);
        }
    };
    eprintln!("serving queries from stdin (one per line; EOF ends the session)");
    for line in std::io::stdin().lock().lines() {
        let line = match line {
            Ok(line) => line,
            Err(error) => {
                eprintln!("error: stdin: {error}");
                std::process::exit(1);
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        match StoreQuery::parse(&line, &options.config) {
            Err(message) => println!("error: {message}"),
            Ok(query) => match answer_query(&store, &options.config, &query) {
                Ok(answer) => println!("{}", answer.render(&options.config)),
                Err(error) => {
                    eprintln!("error: {error}");
                    std::process::exit(1);
                }
            },
        }
    }
}
