//! `connreuse-cost` — price the 2^4 mitigation matrix in RTTs, handshake
//! bytes and page-load time under three link profiles.
//!
//! ```text
//! cargo run -p connreuse-experiments --bin connreuse-cost --release
//! cargo run -p connreuse-experiments --bin connreuse-cost --release -- --quick
//! cargo run -p connreuse-experiments --bin connreuse-cost --release -- \
//!     --sites 4000 --seed 7 --threads 8 --out results/cost.txt
//! ```

use connreuse_experiments::cost::{run_cost, CostConfig};
use std::path::PathBuf;

struct CliOptions {
    config: CostConfig,
    out: Option<PathBuf>,
    help: bool,
}

fn parse_args() -> Result<CliOptions, String> {
    let mut config = CostConfig::default();
    let mut out = None;
    let mut help = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--sites" => config.sites = parse_value(&mut args, &arg)?,
            "--seed" => config.seed = parse_value(&mut args, &arg)?,
            "--threads" => config.threads = parse_value(&mut args, &arg)?,
            "--quick" => config.sites = CostConfig::quick().sites,
            "--out" => {
                let value = args.next().ok_or("--out requires a file path")?;
                out = Some(PathBuf::from(value));
            }
            "--help" | "-h" => help = true,
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(CliOptions { config, out, help })
}

fn parse_value<T: std::str::FromStr>(
    args: &mut impl Iterator<Item = String>,
    flag: &str,
) -> Result<T, String> {
    let value = args.next().ok_or_else(|| format!("{flag} requires a value"))?;
    value.parse().map_err(|_| format!("invalid value for {flag}: {value}"))
}

fn print_usage() {
    println!("connreuse-cost — price the mitigation matrix in RTTs, bytes and page-load time");
    println!();
    println!("usage: connreuse-cost [options]");
    println!();
    println!("options:");
    println!("  --sites N    sites per cell population (default 1500)");
    println!("  --seed N     root seed shared by every cell (default 20210420)");
    println!("  --threads N  worker threads the 16 mitigation cells shard across");
    println!("  --quick      use the small test-sized population (120 sites)");
    println!("  --out FILE   also write the report to FILE");
    println!();
    println!("exit status: 0 on success, 1 on IO failure, 2 on bad arguments");
}

fn main() {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            print_usage();
            std::process::exit(2);
        }
    };
    if options.help {
        print_usage();
        return;
    }

    eprintln!(
        "pricing 16 mitigation cells under 3 link profiles: sites={} seed={} threads={}",
        options.config.sites, options.config.seed, options.config.threads
    );
    let start = std::time::Instant::now();
    let report = run_cost(&options.config);
    eprintln!("cost sweep done in {:.1}s", start.elapsed().as_secs_f64());

    let text = report.render();
    println!("{text}");
    if let Some(path) = &options.out {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            if let Err(error) = std::fs::create_dir_all(parent) {
                eprintln!("error: cannot create {}: {error}", parent.display());
                std::process::exit(1);
            }
        }
        if let Err(error) = std::fs::write(path, &text) {
            eprintln!("error: cannot write {}: {error}", path.display());
            std::process::exit(1);
        }
    }
}
