//! The experiment implementations: one function per table / figure.

use crate::paper;
use crate::render::{format_count, format_percent, TextTable};
use crate::scenario::Scenario;
use connreuse_core::attribution::{
    asn_for_ip_cause, cert_domains, cert_issuers, issuer_share, top_origins_for_cause,
};
use connreuse_core::lifetime::lifetime_statistics;
use connreuse_core::overlap;
use connreuse_core::{
    classify_dataset, Cause, CdfSeries, Dataset, DatasetSummary, DurationModel, SiteClassification,
};
use connreuse_probe::{ProbeConfig, ProbeExperiment};
use netsim_asdb::AsRegistry;
use netsim_types::Duration;
use serde::{Deserialize, Serialize};

/// All experiment names understood by [`run_experiment`], in paper order.
/// `whatif` is not a published table; it quantifies the mitigations the
/// paper's conclusion proposes (ORIGIN-frame adoption, synchronized DNS,
/// dropping the Fetch credentials flag). `sweep` generalizes it to the full
/// 2^4 mitigation matrix (see [`crate::sweep`]).
pub const EXPERIMENTS: &[&str] = &[
    "headline", "figure2", "table1", "table2", "table3", "table4", "table5", "table6", "table7", "table8",
    "table9", "table10", "table11", "table12", "figure3", "filters", "whatif", "sweep", "cost", "atlas",
    "fleet", "chaos", "store",
];

/// The rendered result of one experiment.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExperimentOutput {
    /// Experiment name (one of [`EXPERIMENTS`]).
    pub name: String,
    /// Human-readable report.
    pub text: String,
}

/// Run one experiment by name. Unknown names return an error string.
pub fn run_experiment(name: &str, scenario: &Scenario) -> Result<ExperimentOutput, String> {
    let text = match name {
        "headline" => headline(scenario),
        "figure2" => figure2(scenario),
        "table1" => table1(scenario),
        "table2" => origin_table(scenario, "Table 2: top origins for cause IP", 4),
        "table3" => issuer_table(scenario, "Table 3: top certificate issuers for cause CERT"),
        "table4" => cert_domain_table(scenario, "Table 4: top domains for cause CERT", 5),
        "table5" => table5(scenario),
        "table6" => table6(scenario),
        "table7" => table7(scenario),
        "table8" => table8(scenario),
        "table9" => table9(scenario),
        "table10" => table10(scenario),
        "table11" => table11(),
        "table12" => origin_table(scenario, "Table 12: top 20 domains for the IP case", 20),
        "figure3" => figure3(scenario),
        "filters" => filters(scenario),
        "whatif" => whatif(scenario),
        "sweep" => sweep(scenario),
        "cost" => cost(scenario),
        "atlas" => atlas(scenario),
        "fleet" => fleet(scenario),
        "chaos" => chaos(scenario),
        "store" => store(scenario),
        other => return Err(format!("unknown experiment '{other}'; known: {}", EXPERIMENTS.join(", "))),
    };
    Ok(ExperimentOutput { name: name.to_string(), text })
}

/// Classify a dataset under a duration model (helper shared by experiments).
fn classified(dataset: &Dataset, model: DurationModel) -> Vec<SiteClassification> {
    classify_dataset(dataset, model)
}

fn summary(dataset: &Dataset, model: DurationModel, label: &str) -> DatasetSummary {
    DatasetSummary::from_classifications(label, &classified(dataset, model))
}

/// §5.1 headline numbers, paper vs. measured.
fn headline(scenario: &Scenario) -> String {
    let har_endless = summary(&scenario.har, DurationModel::Endless, "HAR Endless");
    let har_immediate = summary(&scenario.har, DurationModel::Immediate, "HAR Immediate");
    let alexa = summary(&scenario.alexa, DurationModel::Recorded, "Alexa");
    let alexa_endless = summary(&scenario.alexa, DurationModel::Endless, "Alexa Endless");
    let patched = summary(&scenario.alexa_without_fetch, DurationModel::Recorded, "Alexa w/o Fetch");
    let lifetimes = lifetime_statistics(&scenario.alexa);

    let mut table = TextTable::new("Headline (§5.1): paper vs. measured", &["metric", "paper", "measured"]);
    table.push_row([
        "HAR endless: sites with redundant connections".to_string(),
        format_percent(paper::headline::HAR_ENDLESS_REDUNDANT_SITES),
        format_percent(har_endless.redundant_site_share()),
    ]);
    table.push_row([
        "HAR immediate: sites with redundant connections".to_string(),
        format_percent(paper::headline::HAR_IMMEDIATE_REDUNDANT_SITES),
        format_percent(har_immediate.redundant_site_share()),
    ]);
    table.push_row([
        "Alexa: sites with redundant connections".to_string(),
        format_percent(paper::headline::ALEXA_REDUNDANT_SITES),
        format_percent(alexa.redundant_site_share()),
    ]);
    table.push_row([
        "Alexa endless vs recorded: redundant sites delta".to_string(),
        "~0 %".to_string(),
        format_percent(alexa_endless.redundant_site_share() - alexa.redundant_site_share()),
    ]);
    table.push_row([
        "connections closing before test end".to_string(),
        format_percent(paper::headline::CLOSED_CONNECTION_SHARE),
        format_percent(lifetimes.closed_share()),
    ]);
    table.push_row([
        "median lifetime of early-closing connections".to_string(),
        format!("{:.1} s", paper::headline::MEDIAN_LIFETIME_SECS),
        lifetimes
            .median_lifetime
            .map(|d| format!("{:.1} s", d.as_secs_f64()))
            .unwrap_or_else(|| "n/a".to_string()),
    ]);
    let reduction = if alexa.redundant.connections == 0 {
        0.0
    } else {
        1.0 - patched.redundant.connections as f64 / alexa.redundant.connections as f64
    };
    table.push_row([
        "redundancy reduction when ignoring the Fetch flag".to_string(),
        format_percent(paper::headline::WITHOUT_FETCH_REDUCTION),
        format_percent(reduction),
    ]);
    table.render()
}

/// Figure 2: survival function of redundant connections per site.
fn figure2(scenario: &Scenario) -> String {
    let max_k = 15;
    let series = [
        CdfSeries::from_classifications(
            "HTTP Archive Endless",
            &classified(&scenario.har, DurationModel::Endless),
            max_k,
        ),
        CdfSeries::from_classifications(
            "Alexa Top",
            &classified(&scenario.alexa, DurationModel::Recorded),
            max_k,
        ),
        CdfSeries::from_classifications(
            "Alexa w/o Fetch",
            &classified(&scenario.alexa_without_fetch, DurationModel::Recorded),
            max_k,
        ),
    ];
    let mut table = TextTable::new(
        "Figure 2: fraction of sites with >= k redundant connections (1 - CDF)",
        &["k", &series[0].label, &series[1].label, &series[2].label],
    );
    for k in 0..=max_k {
        table.push_row([
            k.to_string(),
            format!("{:.3}", series[0].at_least(k)),
            format!("{:.3}", series[1].at_least(k)),
            format!("{:.3}", series[2].at_least(k)),
        ]);
    }
    let mut text = table.render();
    text.push_str(&format!(
        "\nmedian redundant connections per site: HAR={} Alexa={} (paper: ~2 / ~6)\n",
        series[0].median(),
        series[1].median()
    ));
    text
}

/// Table 1: cause counts per dataset and duration model.
fn table1(scenario: &Scenario) -> String {
    let columns = vec![
        ("HAR Endless", summary(&scenario.har, DurationModel::Endless, "HAR Endless")),
        ("HAR Immediate", summary(&scenario.har, DurationModel::Immediate, "HAR Immediate")),
        ("Alexa Endless", summary(&scenario.alexa, DurationModel::Endless, "Alexa Endless")),
        ("Alexa", summary(&scenario.alexa, DurationModel::Recorded, "Alexa")),
        (
            "Alexa w/o Fetch",
            summary(&scenario.alexa_without_fetch, DurationModel::Recorded, "Alexa w/o Fetch"),
        ),
    ];
    let mut headers: Vec<String> = vec!["Cause".to_string()];
    for (label, _) in &columns {
        headers.push(format!("{label} Sites"));
        headers.push(format!("{label} Conns."));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = TextTable::new("Table 1: causes of redundant connections", &header_refs);
    for cause in Cause::ALL {
        let mut row = vec![cause.label().to_string()];
        for (_, column) in &columns {
            let counts = column.cause(cause);
            row.push(format_count(counts.sites));
            row.push(format_count(counts.connections));
        }
        table.push_row(row);
    }
    let mut redundant_row = vec!["Redund.".to_string()];
    let mut total_row = vec!["Total".to_string()];
    for (_, column) in &columns {
        redundant_row.push(format_count(column.redundant.sites));
        redundant_row.push(format_count(column.redundant.connections));
        total_row.push(format_count(column.total.sites));
        total_row.push(format_count(column.total.connections));
    }
    table.push_row(redundant_row);
    table.push_row(total_row);

    // Percentage comparison against the paper.
    let mut comparison = TextTable::new(
        "Table 1 (shape check): share of sites / connections per cause, paper vs. measured",
        &["dataset", "cause", "paper sites", "measured sites", "paper conns.", "measured conns."],
    );
    let references = paper::table1_references();
    let mapping: Vec<(&str, &DatasetSummary)> = vec![
        ("HAR Endless", &columns[0].1),
        ("HAR Immediate", &columns[1].1),
        ("Alexa", &columns[3].1),
        ("Alexa w/o Fetch", &columns[4].1),
    ];
    for (label, measured) in mapping {
        let Some(reference) = references.iter().find(|r| r.dataset == label) else { continue };
        for cause in Cause::ALL {
            let (paper_sites, paper_conns) = match cause {
                Cause::Cert => (reference.cert_sites, reference.cert_connections),
                Cause::Ip => (reference.ip_sites, reference.ip_connections),
                Cause::Cred => (reference.cred_sites, reference.cred_connections),
            };
            comparison.push_row([
                label.to_string(),
                cause.label().to_string(),
                format_percent(paper_sites),
                format_percent(measured.site_share(cause)),
                format_percent(paper_conns),
                format_percent(measured.connection_share(cause)),
            ]);
        }
        comparison.push_row([
            label.to_string(),
            "Redund.".to_string(),
            format_percent(reference.redundant_sites),
            format_percent(measured.redundant_site_share()),
            format_percent(reference.redundant_connections),
            format_percent(measured.redundant_connection_share()),
        ]);
    }
    format!("{}\n{}", table.render(), comparison.render())
}

/// Tables 2, 8 and 12: top IP-cause origins with their previous origins.
fn origin_table(scenario: &Scenario, title: &str, limit: usize) -> String {
    let mut out = String::new();
    for (dataset, model) in
        [(&scenario.har, DurationModel::Endless), (&scenario.alexa, DurationModel::Recorded)]
    {
        let classifications = classified(dataset, model);
        let rows = top_origins_for_cause(dataset, &classifications, Cause::Ip, limit);
        let mut table = TextTable::new(
            &format!("{title} — {}", dataset.label),
            &["rank", "origin", "conns.", "prev", "prev conns."],
        );
        for (rank, row) in rows.iter().enumerate() {
            let (previous, previous_count) = row
                .top_previous()
                .map(|(domain, count)| (domain.to_string(), format_count(*count)))
                .unwrap_or_else(|| ("-".to_string(), "0".to_string()));
            table.push_row([
                (rank + 1).to_string(),
                row.origin.to_string(),
                format_count(row.connections),
                previous,
                previous_count,
            ]);
        }
        out.push_str(&table.render());
        out.push('\n');
    }
    out.push_str(&format!("paper top origins: {}\n", paper::TABLE2_TOP_ORIGINS.join(", ")));
    out
}

/// Tables 3 and 9: issuers behind CERT redundancy.
fn issuer_table(scenario: &Scenario, title: &str) -> String {
    let mut out = String::new();
    for (dataset, model) in
        [(&scenario.har, DurationModel::Endless), (&scenario.alexa, DurationModel::Recorded)]
    {
        let classifications = classified(dataset, model);
        let rows = cert_issuers(dataset, &classifications, 7);
        let mut table = TextTable::new(
            &format!("{title} — {}", dataset.label),
            &["rank", "issuer", "conns.", "unique domains"],
        );
        for (rank, row) in rows.iter().enumerate() {
            table.push_row([
                (rank + 1).to_string(),
                row.issuer.organization().to_string(),
                format_count(row.connections),
                format_count(row.unique_domains),
            ]);
        }
        out.push_str(&table.render());
        out.push('\n');
    }
    out.push_str(&format!("paper top issuers: {}\n", paper::TABLE3_TOP_ISSUERS.join(", ")));
    out
}

/// Tables 4 and 10: CERT domains with previous origins and issuers.
fn cert_domain_table(scenario: &Scenario, title: &str, limit: usize) -> String {
    let mut out = String::new();
    for (dataset, model) in
        [(&scenario.har, DurationModel::Endless), (&scenario.alexa, DurationModel::Recorded)]
    {
        let classifications = classified(dataset, model);
        let rows = cert_domains(dataset, &classifications, limit);
        let mut table = TextTable::new(
            &format!("{title} — {}", dataset.label),
            &["rank", "domain", "conns.", "prev", "issuer"],
        );
        for (rank, row) in rows.iter().enumerate() {
            let previous =
                row.previous.first().map(|(d, _)| d.to_string()).unwrap_or_else(|| "-".to_string());
            table.push_row([
                (rank + 1).to_string(),
                row.domain.to_string(),
                format_count(row.connections),
                previous,
                row.issuer.short_code().to_string(),
            ]);
        }
        out.push_str(&table.render());
        out.push('\n');
    }
    out.push_str(&format!("paper top CERT domains: {}\n", paper::TABLE4_TOP_DOMAINS.join(", ")));
    out
}

/// Table 5: issuer share over all connections.
fn table5(scenario: &Scenario) -> String {
    let mut out = String::new();
    for dataset in [&scenario.har, &scenario.alexa] {
        let rows = issuer_share(dataset, 10);
        let mut table = TextTable::new(
            &format!("Table 5: top certificate issuers over all connections — {}", dataset.label),
            &["rank", "issuer", "conns.", "unique domains"],
        );
        for (rank, row) in rows.iter().enumerate() {
            table.push_row([
                (rank + 1).to_string(),
                row.issuer.organization().to_string(),
                format_count(row.connections),
                format_count(row.unique_domains),
            ]);
        }
        out.push_str(&table.render());
        out.push('\n');
    }
    out
}

/// Table 6: ASes behind the IP cause.
fn table6(scenario: &Scenario) -> String {
    let mut out = String::new();
    let pairs: [(&Dataset, DurationModel, &AsRegistry); 2] = [
        (&scenario.har, DurationModel::Endless, &scenario.archive_env.registry),
        (&scenario.alexa, DurationModel::Recorded, &scenario.alexa_env.registry),
    ];
    for (dataset, model, registry) in pairs {
        let classifications = classified(dataset, model);
        let rows = asn_for_ip_cause(dataset, &classifications, registry, 10);
        let mut table = TextTable::new(
            &format!("Table 6: top ASes for connections of cause IP — {}", dataset.label),
            &["rank", "AS", "conns.", "unique domains"],
        );
        for (rank, row) in rows.iter().enumerate() {
            table.push_row([
                (rank + 1).to_string(),
                row.system.to_string(),
                format_count(row.connections),
                format_count(row.unique_domains),
            ]);
        }
        out.push_str(&table.render());
        out.push('\n');
    }
    out.push_str(&format!("paper top ASes: {}\n", paper::TABLE6_TOP_ASES.join(", ")));
    out
}

/// Table 7: causes on the overlap datasets.
fn table7(scenario: &Scenario) -> String {
    let (har, alexa) = overlap::intersect(&scenario.overlap_har, &scenario.overlap_alexa);
    let har_summary = summary(&har, DurationModel::Endless, "HAR Overlap Endless");
    let alexa_summary = summary(&alexa, DurationModel::Endless, "Alexa Overlap Endless");
    let mut table = TextTable::new(
        "Table 7: causes on the HTTP-Archive / Alexa overlap",
        &["Cause", "HAR Sites", "HAR Conns.", "Alexa Sites", "Alexa Conns."],
    );
    for cause in Cause::ALL {
        table.push_row([
            cause.label().to_string(),
            format_count(har_summary.cause(cause).sites),
            format_count(har_summary.cause(cause).connections),
            format_count(alexa_summary.cause(cause).sites),
            format_count(alexa_summary.cause(cause).connections),
        ]);
    }
    table.push_row([
        "Redund.".to_string(),
        format_count(har_summary.redundant.sites),
        format_count(har_summary.redundant.connections),
        format_count(alexa_summary.redundant.sites),
        format_count(alexa_summary.redundant.connections),
    ]);
    table.push_row([
        "Total".to_string(),
        format_count(har_summary.total.sites),
        format_count(har_summary.total.connections),
        format_count(alexa_summary.total.sites),
        format_count(alexa_summary.total.connections),
    ]);
    format!(
        "{}\noverlapping sites: {}\n",
        table.render(),
        format_count(overlap::overlap_size(&scenario.overlap_har, &scenario.overlap_alexa))
    )
}

/// Table 8: top IP origins on the overlap.
fn table8(scenario: &Scenario) -> String {
    overlap_attribution(scenario, OverlapTable::Origins)
}

/// Table 9: top CERT issuers on the overlap.
fn table9(scenario: &Scenario) -> String {
    overlap_attribution(scenario, OverlapTable::Issuers)
}

/// Table 10: top CERT domains on the overlap.
fn table10(scenario: &Scenario) -> String {
    overlap_attribution(scenario, OverlapTable::CertDomains)
}

enum OverlapTable {
    Origins,
    Issuers,
    CertDomains,
}

fn overlap_attribution(scenario: &Scenario, which: OverlapTable) -> String {
    let (har, alexa) = overlap::intersect(&scenario.overlap_har, &scenario.overlap_alexa);
    let mut out = String::new();
    for (dataset, model) in [(&har, DurationModel::Endless), (&alexa, DurationModel::Recorded)] {
        let classifications = classified(dataset, model);
        match which {
            OverlapTable::Origins => {
                let rows = top_origins_for_cause(dataset, &classifications, Cause::Ip, 5);
                let mut table = TextTable::new(
                    &format!("Table 8: top origins for cause IP (overlap) — {}", dataset.label),
                    &["rank", "origin", "conns.", "prev"],
                );
                for (rank, row) in rows.iter().enumerate() {
                    let previous =
                        row.top_previous().map(|(d, _)| d.to_string()).unwrap_or_else(|| "-".to_string());
                    table.push_row([
                        (rank + 1).to_string(),
                        row.origin.to_string(),
                        format_count(row.connections),
                        previous,
                    ]);
                }
                out.push_str(&table.render());
            }
            OverlapTable::Issuers => {
                let rows = cert_issuers(dataset, &classifications, 5);
                let mut table = TextTable::new(
                    &format!("Table 9: top CERT issuers (overlap) — {}", dataset.label),
                    &["rank", "issuer", "conns.", "unique domains"],
                );
                for (rank, row) in rows.iter().enumerate() {
                    table.push_row([
                        (rank + 1).to_string(),
                        row.issuer.organization().to_string(),
                        format_count(row.connections),
                        format_count(row.unique_domains),
                    ]);
                }
                out.push_str(&table.render());
            }
            OverlapTable::CertDomains => {
                let rows = cert_domains(dataset, &classifications, 5);
                let mut table = TextTable::new(
                    &format!("Table 10: top CERT domains (overlap) — {}", dataset.label),
                    &["rank", "domain", "conns.", "prev", "issuer"],
                );
                for (rank, row) in rows.iter().enumerate() {
                    let previous =
                        row.previous.first().map(|(d, _)| d.to_string()).unwrap_or_else(|| "-".to_string());
                    table.push_row([
                        (rank + 1).to_string(),
                        row.domain.to_string(),
                        format_count(row.connections),
                        previous,
                        row.issuer.short_code().to_string(),
                    ]);
                }
                out.push_str(&table.render());
            }
        }
        out.push('\n');
    }
    out
}

/// Table 11: the DNS resolver panel.
fn table11() -> String {
    let mut table = TextTable::new(
        "Table 11: DNS resolvers used to analyze DNS-based load balancing",
        &["address", "country", "operator", "vantage"],
    );
    for description in connreuse_probe::resolver_panel() {
        table.push_row([
            description.address.clone(),
            description.country.clone(),
            description.operator.clone(),
            description.vantage.to_string(),
        ]);
    }
    table.render()
}

/// Figure 3: the DNS overlap time series.
fn figure3(scenario: &Scenario) -> String {
    let config = ProbeConfig {
        interval: Duration::from_mins(6),
        duration: Duration::from_days(2),
        pairs: connreuse_probe::default_pairs(),
    };
    let experiment = ProbeExperiment::new(config);
    let matrix = experiment.run(&scenario.alexa_env.authority);
    let mut table = TextTable::new(
        "Figure 3: resolvers with overlapping answers per probed pair (2-day probe, 6-minute interval)",
        &["pair", "mean overlap", "slots with any overlap", "sparkline (hourly max of 14)"],
    );
    for (index, pair) in matrix.pairs.iter().enumerate() {
        table.push_row([
            pair.label(),
            format!("{:.1}", matrix.mean_overlap(index)),
            format_percent(matrix.any_overlap_share(index)),
            sparkline(matrix.row(index), matrix.resolver_count, 10),
        ]);
    }
    format!("{}\nresolver panel size: {}\n", table.render(), matrix.resolver_count)
}

/// Downsample a row of overlap counts into a textual sparkline.
fn sparkline(row: &[u32], max_value: usize, slots_per_bucket: usize) -> String {
    const LEVELS: [char; 5] = [' ', '.', ':', '*', '#'];
    row.chunks(slots_per_bucket.max(1))
        .map(|chunk| {
            let peak = chunk.iter().copied().max().unwrap_or(0) as usize;
            let level = if max_value == 0 { 0 } else { (peak * (LEVELS.len() - 1)).div_ceil(max_value) };
            LEVELS[level.min(LEVELS.len() - 1)]
        })
        .collect()
}

/// §4.3: HAR filter statistics.
fn filters(scenario: &Scenario) -> String {
    let stats = scenario.har_filter_statistics;
    let mut table = TextTable::new("HAR filter statistics (§4.3)", &["defect class", "entries"]);
    table.push_row(["socket id 0", &format_count(stats.zero_socket_id as usize)]);
    table.push_row(["missing IP", &format_count(stats.missing_ip as usize)]);
    table.push_row(["invalid method", &format_count(stats.invalid_method as usize)]);
    table.push_row(["HTTP/1 entries", &format_count(stats.http1 as usize)]);
    table.push_row(["HTTP/3 entries", &format_count(stats.http3 as usize)]);
    table.push_row(["missing certificate", &format_count(stats.missing_certificate as usize)]);
    table.push_row(["bad page reference", &format_count(stats.bad_page_reference as usize)]);
    table.push_row(["retained HTTP/2 entries", &format_count(stats.retained_http2 as usize)]);
    table.push_row(["total entries", &format_count(stats.total_entries as usize)]);
    format!(
        "{}\ndropped share: {}\n",
        table.render(),
        format_percent(stats.dropped() as f64 / stats.total_entries.max(1) as f64)
    )
}

/// What-if analysis of the mitigations discussed in §5.3 and the conclusion:
/// how much redundancy remains if servers announce ORIGIN frames and clients
/// honour them, if providers synchronize their DNS load balancing, if the
/// Fetch credentials flag is dropped, and if all three happen at once.
fn whatif(scenario: &Scenario) -> String {
    use connreuse_core::dataset_from_crawl;
    use netsim_browser::{BrowserConfig, Crawler};
    use netsim_web::{PopulationBuilder, PopulationProfile, ServiceCatalog};

    let config = scenario.config;
    let baseline = summary(&scenario.alexa, DurationModel::Recorded, "baseline");
    let without_fetch = summary(&scenario.alexa_without_fetch, DurationModel::Recorded, "w/o Fetch");

    let crawl = |env: &netsim_web::WebEnvironment, label: &str, browser: BrowserConfig| {
        let report = Crawler::new(label, browser, config.seed + crate::scenario::ALEXA_CRAWL_SEED_OFFSET)
            .with_threads(config.threads)
            .crawl(env);
        summary(&dataset_from_crawl(&report), DurationModel::Recorded, label)
    };

    // ORIGIN-frame adoption on the unchanged web.
    let origin_frames = crawl(&scenario.alexa_env, "ORIGIN frames", BrowserConfig::with_origin_frames());

    // Providers synchronize their DNS (same population size and seed, fixed
    // catalog), measured with stock Chromium.
    let synchronized_env = PopulationBuilder::new(
        PopulationProfile::alexa(),
        config.alexa_sites,
        config.seed + crate::scenario::ALEXA_POPULATION_SEED_OFFSET,
    )
    .with_catalog(ServiceCatalog::standard().with_synchronized_dns())
    .build();
    let synchronized = crawl(&synchronized_env, "synchronized DNS", BrowserConfig::alexa_measurement());

    // Everything at once.
    let all_mitigations = crawl(&synchronized_env, "all mitigations", {
        let mut browser = BrowserConfig::with_origin_frames();
        browser.reuse_policy.follow_fetch_credentials = false;
        browser
    });

    let mut table = TextTable::new(
        "What-if: redundancy under the mitigations the paper proposes (Alexa population, recorded durations)",
        &["deployment", "connections", "redundant conns.", "redundant sites", "IP", "CRED", "CERT"],
    );
    let baseline_connections = baseline.total.connections.max(1);
    for row in [&baseline, &without_fetch, &origin_frames, &synchronized, &all_mitigations] {
        table.push_row([
            row.label.clone(),
            format_count(row.total.connections),
            format_count(row.redundant.connections),
            format_percent(row.redundant_site_share()),
            format_count(row.cause(Cause::Ip).connections),
            format_count(row.cause(Cause::Cred).connections),
            format_count(row.cause(Cause::Cert).connections),
        ]);
    }
    format!(
        "{}\nconnection savings vs. baseline: w/o Fetch {} / ORIGIN frames {} / synchronized DNS {} / all {}\n",
        table.render(),
        format_percent(1.0 - without_fetch.total.connections as f64 / baseline_connections as f64),
        format_percent(1.0 - origin_frames.total.connections as f64 / baseline_connections as f64),
        format_percent(1.0 - synchronized.total.connections as f64 / baseline_connections as f64),
        format_percent(1.0 - all_mitigations.total.connections as f64 / baseline_connections as f64),
    )
}

/// The 2^4 mitigation what-if matrix (see [`crate::sweep`] for the engine).
/// Sized like the scenario's Alexa measurement, so the sweep's baseline cell
/// reproduces the `Alexa` column of Table 1.
fn sweep(scenario: &Scenario) -> String {
    crate::sweep::run_sweep(&crate::sweep::SweepConfig::from_scenario(&scenario.config)).render()
}

/// The mitigation matrix priced in round trips, handshake bytes and
/// page-load time under three link profiles (see [`crate::cost`] for the
/// engine). Sized like the scenario's Alexa measurement, so the broadband
/// baseline cell reproduces the sweep's measured-web crawl.
fn cost(scenario: &Scenario) -> String {
    crate::cost::run_cost(&crate::cost::CostConfig::from_scenario(&scenario.config)).render()
}

/// The atlas scale scenario (see [`crate::atlas`] for the engine): a
/// Zipf-mixed population crawled chunk by chunk with streaming, shard-merged
/// aggregation. Sized from the scenario config; the full 100 k-site run is
/// available via the `connreuse-atlas` bin.
fn atlas(scenario: &Scenario) -> String {
    crate::atlas::run_atlas(&crate::atlas::AtlasConfig::from_scenario(&scenario.config)).render()
}

/// Multi-page user sessions over the connection-pool lifecycle (see
/// [`crate::fleet`] for the engine): the redundancy tax of the measured web
/// when cross-page reuse, TLS resumption and a session DNS cache are allowed
/// to amortise it — versus the paper's cold single-visit methodology.
fn fleet(scenario: &Scenario) -> String {
    crate::fleet::run_fleet(&crate::fleet::FleetConfig::from_scenario(&scenario.config)).render()
}

/// Deterministic fault injection over the fleet's warm session trace (see
/// [`crate::chaos`] for the engine): what faults cost each deployment at
/// each failure level and link, and what bounded retries, backoff and
/// hedged dials buy back.
fn chaos(scenario: &Scenario) -> String {
    crate::chaos::run_chaos(&crate::chaos::ChaosConfig::from_scenario(&scenario.config)).render()
}

/// The persistent shard store: build a demo store, answer the demo what-if
/// queries from disk, render both.
fn store(scenario: &Scenario) -> String {
    crate::store::run_store_demo(&crate::store::StoreConfig::from_scenario(&scenario.config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;
    use std::sync::OnceLock;

    fn shared_scenario() -> &'static Scenario {
        static SCENARIO: OnceLock<Scenario> = OnceLock::new();
        SCENARIO.get_or_init(|| Scenario::build(ScenarioConfig::quick()))
    }

    #[test]
    fn every_experiment_runs_and_produces_output() {
        let scenario = shared_scenario();
        for name in EXPERIMENTS {
            let output = run_experiment(name, scenario).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(&output.name, name);
            assert!(output.text.len() > 40, "{name} produced almost no output");
        }
        assert!(run_experiment("nonsense", scenario).is_err());
    }

    #[test]
    fn table1_shape_matches_the_paper_ordering() {
        let scenario = shared_scenario();
        let har = summary(&scenario.har, DurationModel::Endless, "HAR Endless");
        // IP affects the most connections, CERT the fewest (paper §5.2).
        assert!(har.cause(Cause::Ip).connections > har.cause(Cause::Cred).connections);
        assert!(har.cause(Cause::Cred).connections > har.cause(Cause::Cert).connections);
        // Most sites are affected, with IP the leading cause site-wise.
        assert!(har.redundant_site_share() > 0.5);
        assert!(har.site_share(Cause::Ip) >= har.site_share(Cause::Cert));
        // The immediate model reduces redundancy (it is the lower bound).
        let immediate = summary(&scenario.har, DurationModel::Immediate, "HAR Immediate");
        assert!(immediate.redundant.connections <= har.redundant.connections);
    }

    #[test]
    fn ignoring_fetch_removes_the_cred_cause() {
        let scenario = shared_scenario();
        let patched = summary(&scenario.alexa_without_fetch, DurationModel::Recorded, "Alexa w/o Fetch");
        assert_eq!(patched.cause(Cause::Cred).connections, 0, "CRED must vanish without the Fetch flag");
        let stock = summary(&scenario.alexa, DurationModel::Recorded, "Alexa");
        assert!(stock.cause(Cause::Cred).connections > 0);
        assert!(patched.redundant.connections < stock.redundant.connections);
    }

    #[test]
    fn ip_attribution_is_led_by_the_analytics_and_social_origins() {
        let scenario = shared_scenario();
        let classifications = classified(&scenario.alexa, DurationModel::Recorded);
        let rows = top_origins_for_cause(&scenario.alexa, &classifications, Cause::Ip, 6);
        assert!(!rows.is_empty());
        let names: Vec<String> = rows.iter().map(|r| r.origin.to_string()).collect();
        assert!(
            names.iter().any(|n| n.contains("google") || n.contains("facebook") || n.contains("doubleclick")),
            "expected a Google/Facebook origin among the top IP origins, got {names:?}"
        );
    }
}
