//! The atlas scale scenario: a 100 k-site synthetic population crawled and
//! classified with bounded memory.
//!
//! The paper's headline numbers come from crawling the Alexa Top **100 k**
//! and 6.24 M HTTP-Archive sites; the quick scenario reproduces the shape of
//! those results at a few hundred sites. The atlas engine closes the scale
//! gap: it generates a population the size of the paper's own measurement and
//! pushes every page load through the full dns → tls → h2 → fetch →
//! classification pipeline, without ever holding the population (or its
//! visits) in memory at once.
//!
//! ## How it scales
//!
//! * **Chunked generation** — the population is built in fixed-size chunks
//!   via [`netsim_web::PopulationBuilder::with_site_offset`]. A chunk
//!   environment contains only its slice of sites (plus the shared service
//!   catalog), so memory is bounded by `chunk_sites`, not `sites`.
//! * **Streaming classification** — every visit is converted, classified and
//!   folded into a per-chunk [`connreuse_core::Accumulator`] immediately,
//!   then dropped. Nothing proportional to the population survives a chunk.
//! * **Work-stealing execution** — chunks are scheduled over worker threads
//!   by [`connreuse_executor::run_indexed`]: each worker owns a deque of
//!   chunk indices and steals from a sibling's when its own runs dry, so the
//!   expensive Zipf-head chunks spread over all cores instead of pinning one.
//!   Each worker draws a pooled [`netsim_browser::ScratchPool`] arena and a
//!   streaming classifier once, and reuses them for every chunk it runs.
//! * **Deterministic chunk-ordered merge** — the per-chunk accumulators are
//!   index-addressed by the executor and merged *in chunk order* afterwards.
//!   `Accumulator::merge` is associative and order-insensitive, and every
//!   stochastic choice flows from RNG streams forked off the root seed by
//!   global site index — so `threads = 1` and `threads = 8` produce
//!   byte-identical reports (asserted in `tests/determinism.rs`), at 100 k
//!   and at the million-site scale alike.
//! * **Interned domains** — the per-request hot path copies 24-byte
//!   [`netsim_types::DomainName`] handles instead of cloning strings; the
//!   intern table holds each distinct domain once for the whole run.
//!
//! ## Population shape
//!
//! Sites mix the two calibrated profiles by **Zipf rank**: the site at
//! global rank `r` uses the heavier Alexa profile with probability
//! `(1/(1+r))^zipf_exponent` and the broader HTTP-Archive profile otherwise,
//! mirroring how top-list sites carry more third-party instrumentation than
//! the long tail. Seeds reuse the scenario's Alexa offsets
//! ([`crate::scenario::ALEXA_POPULATION_SEED_OFFSET`] /
//! [`crate::scenario::ALEXA_CRAWL_SEED_OFFSET`]).
//!
//! The deterministic report ([`AtlasReport::render`]) carries the population
//! and redundancy tables; wall-clock throughput and peak RSS are collected
//! separately ([`AtlasMetrics`]) so golden snapshots and thread-invariance
//! checks stay byte-stable.

use crate::render::{format_count, format_percent, TextTable};
use crate::scenario::{ScenarioConfig, ALEXA_CRAWL_SEED_OFFSET, ALEXA_POPULATION_SEED_OFFSET};
use connreuse_core::{
    classify_site, site_from_visit, Accumulator, Cause, DatasetSummary, DurationModel, FastVisitClassifier,
};
use connreuse_executor::run_indexed;
use netsim_browser::{BrowserConfig, Crawler, PooledScratch, ScratchPool, VisitScratch};
use netsim_cost::{CostTotals, LinkProfile};
use netsim_types::profile::Stage;
use netsim_types::{interned_domain_count, interned_domain_octets, MitigationSet};
use netsim_web::{DeploymentCache, PopulationBuilder, PopulationProfile};
use serde::{Deserialize, Serialize};

/// Sizing and seeding of one atlas run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AtlasConfig {
    /// Total population size (the paper's own crawl: 100 k).
    pub sites: usize,
    /// Sites per generation/crawl chunk. Fixed independently of `threads`,
    /// so the chunk layout — and therefore the report — never depends on the
    /// worker count. Memory scales with this, not with `sites`.
    pub chunk_sites: usize,
    /// Root seed; the population and crawl seeds derive from it via the
    /// shared Alexa offsets.
    pub seed: u64,
    /// Worker threads the chunks are sharded across.
    pub threads: usize,
    /// Exponent of the Zipf head-profile mix (0 = every site uses the Alexa
    /// profile; larger = faster decay into the archive-shaped tail).
    pub zipf_exponent: f64,
}

impl Default for AtlasConfig {
    fn default() -> Self {
        AtlasConfig {
            sites: 100_000,
            chunk_sites: 1_000,
            seed: ScenarioConfig::default().seed,
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            zipf_exponent: 0.35,
        }
    }
}

impl AtlasConfig {
    /// The full-scale run: 100 k sites, the paper's own population size.
    pub fn full() -> Self {
        AtlasConfig::default()
    }

    /// A small configuration for tests, golden snapshots and the CI smoke
    /// run.
    pub fn quick() -> Self {
        AtlasConfig { sites: 400, chunk_sites: 80, ..AtlasConfig::default() }
    }

    /// The million-site run: ten times the paper's own crawl, reaching
    /// toward the HTTP-Archive population. Chunks stay at 2 000 sites, so
    /// memory stays bounded exactly like the 100 k run — only the number of
    /// chunks grows.
    pub fn million() -> Self {
        AtlasConfig { sites: 1_000_000, chunk_sites: 2_000, ..AtlasConfig::default() }
    }

    /// A prefix of the million-site run: the same seed, chunk size and Zipf
    /// mix, truncated to the first `sites` sites. Because chunk layout and
    /// per-site RNG streams depend only on the global site index, a prefix
    /// run reproduces the million run's first chunks byte-for-byte — the
    /// determinism tests use this to pin the 1 M configuration at CI size.
    pub fn million_prefix(sites: usize) -> Self {
        AtlasConfig { sites: sites.min(1_000_000), ..AtlasConfig::million() }
    }

    /// The atlas sized to match a scenario: same root seed and thread
    /// budget, population scaled to the scenario's Alexa share.
    pub fn from_scenario(config: &ScenarioConfig) -> Self {
        AtlasConfig {
            sites: config.alexa_sites * 2,
            chunk_sites: (config.alexa_sites / 4).max(1),
            seed: config.seed,
            threads: config.threads,
            ..AtlasConfig::default()
        }
    }

    /// The chunk ranges `[start, start + len)` covering the population.
    fn chunks(&self) -> Vec<(usize, usize)> {
        let chunk = self.chunk_sites.max(1);
        (0..self.sites.div_ceil(chunk))
            .map(|i| {
                let start = i * chunk;
                (start, chunk.min(self.sites - start))
            })
            .collect()
    }
}

/// Deterministic per-chunk tallies beyond the classification counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
struct AtlasTallies {
    /// Requests sent across all visits.
    requests: usize,
    /// Requests planned across all generated sites.
    planned_requests: usize,
}

impl AtlasTallies {
    fn merge(&mut self, other: &AtlasTallies) {
        self.requests += other.requests;
        self.planned_requests += other.planned_requests;
    }
}

/// Non-deterministic run metrics: wall-clock throughput and memory footprint.
/// Kept out of [`AtlasReport::render`] so reports stay byte-identical across
/// thread counts and machines.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct AtlasMetrics {
    /// Wall-clock seconds the run took.
    pub elapsed_secs: f64,
    /// Sites classified per wall-clock second (`sites / elapsed_secs`).
    pub sites_per_second: f64,
    /// Peak resident set size in bytes (`VmHWM` on Linux; 0 where
    /// unavailable).
    pub peak_rss_bytes: u64,
    /// Distinct domain strings in the global intern table after the run.
    pub interned_domains: usize,
    /// Total octets those interned strings occupy (the bounded "leak" the
    /// intern table trades for copyable handles).
    pub interned_octets: usize,
    /// Worker threads the executor actually used (the configured count
    /// clamped to the chunk count).
    pub scheduler_workers: usize,
    /// Chunks that ran on a worker other than the one whose deque initially
    /// held them — the work-stealing balance transfer. Timing-dependent,
    /// like every other field here.
    pub scheduler_steals: u64,
}

impl AtlasMetrics {
    /// Human-readable metrics block (printed by the `connreuse-atlas` bin).
    pub fn render(&self) -> String {
        format!(
            "throughput: {:.1} sites/s ({:.2} s wall) | workers: {} ({} chunks stolen) | peak RSS: \
             {:.1} MiB | interned domains: {} ({:.1} MiB)\n",
            self.sites_per_second,
            self.elapsed_secs,
            self.scheduler_workers,
            self.scheduler_steals,
            self.peak_rss_bytes as f64 / (1024.0 * 1024.0),
            format_count(self.interned_domains),
            self.interned_octets as f64 / (1024.0 * 1024.0),
        )
    }
}

/// The completed atlas run.
///
/// Equality deliberately ignores [`AtlasReport::metrics`]: two runs of the
/// same config are *equal* (byte-identical report) even though their
/// wall-clock and RSS readings differ.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AtlasReport {
    /// The configuration the run used.
    pub config: AtlasConfig,
    /// The classified redundancy of the whole population (recorded
    /// durations, like the scenario's Alexa measurement).
    pub summary: DatasetSummary,
    /// Sites observed (equals `config.sites` — every site is visited).
    pub observed_sites: usize,
    /// Number of generation/crawl chunks the population was split into.
    pub chunk_count: usize,
    /// Total requests sent across all visits.
    pub requests: usize,
    /// Total planned requests across all generated sites.
    pub planned_requests: usize,
    /// Aggregate connection-setup cost of the whole crawl (shard-merged
    /// visit timelines; deterministic).
    pub cost: CostTotals,
    /// Wall-clock / memory metrics (excluded from [`AtlasReport::render`]).
    pub metrics: AtlasMetrics,
}

impl PartialEq for AtlasReport {
    fn eq(&self, other: &Self) -> bool {
        self.config == other.config
            && self.summary == other.summary
            && self.observed_sites == other.observed_sites
            && self.chunk_count == other.chunk_count
            && self.requests == other.requests
            && self.planned_requests == other.planned_requests
            && self.cost == other.cost
    }
}

/// Run the atlas scenario: generate, crawl and classify `config.sites` sites
/// in chunks, streaming everything into shard-merged accumulators.
pub fn run_atlas(config: &AtlasConfig) -> AtlasReport {
    run_atlas_partitioned(config, &config.chunks())
}

/// Run the atlas over an **explicit chunk partition** of `[0, config.sites)`.
///
/// [`run_atlas`] calls this with the uniform layout from the config; the
/// partition proptests call it with arbitrary contiguous partitions to pin
/// the determinism contract: because every site's RNG streams fork off its
/// *global* index and the chunk-ordered merge is associative, **any**
/// partition of the population produces the identical report.
///
/// The chunks must be contiguous, in ascending order, and cover
/// `[0, config.sites)` exactly — the uniform layout trivially satisfies
/// this, and the proptest generator is built to.
pub fn run_atlas_partitioned(config: &AtlasConfig, chunks: &[(usize, usize)]) -> AtlasReport {
    let started = std::time::Instant::now();

    // One memoized service deployment for the whole run: the catalog's
    // zones/certs/prefixes are issued once and shared by every chunk. One
    // scratch pool: each executor worker checks an arena out once and keeps
    // it for every chunk it runs (stolen or not).
    let deployments = DeploymentCache::standard();
    let scratch_pool = ScratchPool::without_netlog();

    // Work-stealing execution with index-addressed results: scheduling moves
    // *chunks between workers*, never sites between chunks, so the merge
    // below sees exactly the same per-chunk values at any thread count.
    let outcome = run_indexed(
        config.threads,
        chunks.len(),
        |_worker| ChunkWorker::from_pool(&scratch_pool),
        |worker, index| worker.run_chunk(config, chunks[index], &deployments),
    );

    // Deterministic merge in chunk order (any order would do — merge is
    // order-insensitive — but fixed order keeps the intent obvious).
    let mut accumulator = Accumulator::new();
    let mut tallies = AtlasTallies::default();
    let mut cost = CostTotals::new();
    for (chunk_accumulator, chunk_tallies, chunk_cost) in &outcome.results {
        accumulator.merge(chunk_accumulator);
        tallies.merge(chunk_tallies);
        cost.merge(chunk_cost);
    }

    let elapsed = started.elapsed().as_secs_f64();
    let observed_sites = accumulator.observed_sites();
    AtlasReport {
        config: *config,
        summary: accumulator.finish("atlas"),
        observed_sites,
        chunk_count: chunks.len(),
        requests: tallies.requests,
        planned_requests: tallies.planned_requests,
        cost,
        metrics: AtlasMetrics {
            elapsed_secs: elapsed,
            sites_per_second: if elapsed > 0.0 { config.sites as f64 / elapsed } else { 0.0 },
            peak_rss_bytes: peak_rss_bytes(),
            interned_domains: interned_domain_count(),
            interned_octets: interned_domain_octets(),
            scheduler_workers: outcome.stats.workers,
            scheduler_steals: outcome.stats.steals,
        },
    }
}

/// A chunk worker's reusable state: the visit scratch arena (checked out of
/// the run's [`ScratchPool`]) and the streaming classifier survive across
/// every chunk the worker processes — including chunks it *stole* — so the
/// steady-state visit loop allocates nothing.
struct ChunkWorker<'pool> {
    scratch: PooledScratch<'pool>,
    classifier: FastVisitClassifier,
}

impl<'pool> ChunkWorker<'pool> {
    fn from_pool(pool: &'pool ScratchPool) -> Self {
        // NetLog events would be dropped unread — the pool hands out
        // recording-disabled arenas so the visit loop stays allocation-free.
        ChunkWorker { scratch: pool.checkout(), classifier: FastVisitClassifier::new() }
    }

    /// Generate, crawl and classify one chunk `[start, start + len)`.
    fn run_chunk(
        &mut self,
        config: &AtlasConfig,
        (start, len): (usize, usize),
        deployments: &DeploymentCache,
    ) -> (Accumulator, AtlasTallies, CostTotals) {
        // The whole chunk is one scaffold-stage scope: its wall-clock total
        // is the envelope the interior visit stages must sum under, and its
        // count is the number of chunks this worker ran.
        let chunk_guard = netsim_types::profile::enter(Stage::ChunkLoop);
        // Both profiles carry the scenario name so generated domains read
        // `atlas-site-000123.<tld>` regardless of which profile a rank draws.
        let mut head = PopulationProfile::alexa();
        head.name = "atlas".to_string();
        let mut tail = PopulationProfile::archive();
        tail.name = "atlas".to_string();

        let env = PopulationBuilder::new(tail, len, config.seed + ALEXA_POPULATION_SEED_OFFSET)
            .with_site_offset(start)
            .with_zipf_profile_mix(head, config.zipf_exponent)
            .with_shared_deployment(deployments.deployment(MitigationSet::empty()))
            .build();

        let crawler =
            Crawler::new("atlas", BrowserConfig::alexa_measurement(), config.seed + ALEXA_CRAWL_SEED_OFFSET);

        let mut accumulator = Accumulator::new();
        let mut tallies = AtlasTallies { requests: 0, planned_requests: env.total_planned_requests() };
        let mut cost = CostTotals::new();
        for index in 0..env.sites.len() {
            // Visit → classify → fold, all through the per-worker scratch:
            // nothing proportional to the page load is allocated, let alone
            // outlives this iteration.
            let times = crawler.visit_site_into(&mut self.scratch, &env, index);
            tallies.requests += self.scratch.requests().len();
            cost.absorb_visit(self.scratch.timeline());
            if self.scratch.all_ok() {
                netsim_types::stage!(Stage::Classify);
                let counts = classify_scratch(&mut self.classifier, &self.scratch, DurationModel::Recorded);
                accumulator.observe_counts(&counts);
            } else {
                // A non-200 response (HTTP 421 exclusion) appeared: fall
                // back to the full observation pipeline for this site.
                netsim_types::stage!(Stage::Classify);
                let visit = self.scratch.to_page_visit(&env.sites[index], times);
                accumulator.observe(&classify_site(&site_from_visit(&visit), DurationModel::Recorded));
            }
        }
        drop(chunk_guard);
        // One mutex hop per chunk: merge this worker's stage table into the
        // process-wide one before the executor moves on (worker threads die
        // with the run, thread-local tables must not die with them).
        netsim_types::profile::flush_local();
        (accumulator, tallies, cost)
    }
}

/// Feed one scratch visit into the streaming classifier and reduce it to the
/// site's cause counts. This is *the* contract between the visit engine and
/// the classifier (the equivalence proptest and the criterion benches reuse
/// it): connections are pushed in establishment order, then the request log
/// is folded in one linear pass to set each connection's last-request time
/// (its establishment time if it carried none, as
/// `ObservedConnection::last_request_at` defines it).
///
/// The caller must have checked [`VisitScratch::all_ok`]; visits with
/// non-200 responses (HTTP 421 exclusions) go through the full
/// `site_from_visit`/`classify_site` pipeline instead.
pub fn classify_scratch(
    classifier: &mut FastVisitClassifier,
    scratch: &VisitScratch,
    model: DurationModel,
) -> connreuse_core::SiteCounts {
    classifier.begin_site();
    let connections = scratch.connections();
    let first_id = connections.first().map(|connection| connection.id.0).unwrap_or(0);
    for (offset, connection) in connections.iter().enumerate() {
        // Connection ids are issued sequentially in establishment order, so
        // a request's connection id maps straight back to its record index.
        debug_assert_eq!(connection.id.0, first_id + offset as u64);
        classifier.push_connection(
            connection.id,
            connection.initial_origin.host,
            connection.remote_ip,
            connection.port,
            connection.established_at,
            connection.closed_at,
            connection.established_at,
            &connection.certificate,
        );
    }
    for request in scratch.requests() {
        classifier.bump_last_request((request.connection.0 - first_id) as usize, request.started_at);
    }
    classifier.classify(model)
}

/// Peak resident set size of this process (`VmHWM`), or 0 if unknown.
fn peak_rss_bytes() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    let kib: u64 = rest.trim().trim_end_matches("kB").trim().parse().unwrap_or(0);
                    return kib * 1024;
                }
            }
        }
    }
    0
}

/// One run's machine-readable benchmark record. Deterministic configuration
/// fields first, then the machine-dependent measurements. Collected into a
/// [`BenchFile`] by `connreuse-atlas --bench-json`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchRecord {
    /// Record format version (2: multi-record files with scheduler fields;
    /// 1 was the single-record schema).
    pub schema: u32,
    /// Scenario name (always "atlas").
    pub scenario: String,
    /// Population size.
    pub sites: usize,
    /// Sites per chunk.
    pub chunk_sites: usize,
    /// Worker threads the run was configured with.
    pub threads: usize,
    /// CPU cores the machine offered (`available_parallelism`); reads of the
    /// parallel records are meaningless without it.
    pub available_cores: usize,
    /// Root seed.
    pub seed: u64,
    /// Zipf head-profile exponent.
    pub zipf_exponent: f64,
    /// Wall-clock seconds.
    pub elapsed_secs: f64,
    /// Sites classified per wall-clock second.
    pub sites_per_second: f64,
    /// Peak resident set size in bytes (0 where unavailable).
    pub peak_rss_bytes: u64,
    /// Distinct interned domain strings after the run.
    pub interned_domains: usize,
    /// Octets those interned strings occupy.
    pub interned_octets: usize,
    /// Chunks the work-stealing executor moved between workers.
    pub scheduler_steals: u64,
}

/// The file `connreuse-atlas --bench-json` writes: one record per run the
/// invocation performed (`--bench-threads 1,8` yields one record per thread
/// count over the identical population). The committed `BENCH_atlas.json`
/// is a `BenchFile`; `scripts/bench_guard.sh` pairs its records with a fresh
/// file's by serial (`threads == 1`) vs parallel (`threads > 1`) role.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchFile {
    /// File format version (2; version 1 files held a single bare record).
    pub schema: u32,
    /// Scenario name (always "atlas").
    pub scenario: String,
    /// One record per run, in execution order.
    pub records: Vec<BenchRecord>,
}

impl BenchFile {
    /// Wrap per-run records into the versioned file format.
    pub fn new(records: Vec<BenchRecord>) -> Self {
        BenchFile { schema: 2, scenario: "atlas".to_string(), records }
    }
}

impl AtlasReport {
    /// The benchmark record for this run.
    pub fn bench_record(&self) -> BenchRecord {
        BenchRecord {
            schema: 2,
            scenario: "atlas".to_string(),
            sites: self.config.sites,
            chunk_sites: self.config.chunk_sites,
            threads: self.config.threads,
            available_cores: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            seed: self.config.seed,
            zipf_exponent: self.config.zipf_exponent,
            elapsed_secs: self.metrics.elapsed_secs,
            sites_per_second: self.metrics.sites_per_second,
            peak_rss_bytes: self.metrics.peak_rss_bytes,
            interned_domains: self.metrics.interned_domains,
            interned_octets: self.metrics.interned_octets,
            scheduler_steals: self.metrics.scheduler_steals,
        }
    }

    /// Fraction of planned requests actually sent (page timeouts can clip
    /// the tail of a plan).
    pub fn request_completion(&self) -> f64 {
        if self.planned_requests == 0 {
            0.0
        } else {
            self.requests as f64 / self.planned_requests as f64
        }
    }

    /// Render the deterministic report: population shape plus the
    /// redundancy summary. Throughput/RSS live in [`AtlasMetrics::render`].
    pub fn render(&self) -> String {
        let mut population = TextTable::new(
            &format!(
                "Atlas: {} sites (Zipf profile mix, exponent {:.2}), seed {}, {} chunks of {}",
                format_count(self.config.sites),
                self.config.zipf_exponent,
                self.config.seed,
                self.chunk_count,
                self.config.chunk_sites,
            ),
            &["metric", "value"],
        );
        population.push_row(["sites visited", &format_count(self.observed_sites)]);
        population.push_row(["HTTP/2 sites", &format_count(self.summary.total.sites)]);
        population.push_row(["connections", &format_count(self.summary.total.connections)]);
        population.push_row(["requests sent", &format_count(self.requests)]);
        population.push_row(["requests planned", &format_count(self.planned_requests)]);

        let mut causes = TextTable::new(
            "Atlas: causes of redundant connections (recorded durations)",
            &["cause", "sites", "site share", "conns.", "conn. share"],
        );
        for cause in Cause::ALL {
            let counts = self.summary.cause(cause);
            causes.push_row([
                cause.label().to_string(),
                format_count(counts.sites),
                format_percent(self.summary.site_share(cause)),
                format_count(counts.connections),
                format_percent(self.summary.connection_share(cause)),
            ]);
        }
        causes.push_row([
            "Redund.".to_string(),
            format_count(self.summary.redundant.sites),
            format_percent(self.summary.redundant_site_share()),
            format_count(self.summary.redundant.connections),
            format_percent(self.summary.redundant_connection_share()),
        ]);
        causes.push_row([
            "Total".to_string(),
            format_count(self.summary.total.sites),
            format_percent(1.0),
            format_count(self.summary.total.connections),
            format_percent(1.0),
        ]);

        // Aggregate connection-setup cost, priced on the broadband profile
        // the atlas crawl runs over. Pure integer sums of the per-visit
        // timelines — byte-identical across thread counts.
        let link = LinkProfile::broadband();
        let sums = &self.cost.sums;
        let mut cost =
            TextTable::new("Atlas: aggregate connection-setup cost (broadband link)", &["metric", "value"]);
        cost.push_row(["handshake RTTs", &format_count(sums.handshake_rtts as usize)]);
        cost.push_row([
            "handshake volume",
            &format!("{:.1} MiB", sums.handshake_octets as f64 / (1024.0 * 1024.0)),
        ]);
        cost.push_row(["cold-cwnd RTTs", &format_count(sums.cold_cwnd_rtts as usize)]);
        cost.push_row([
            "DNS walks / authority queries",
            &format!(
                "{} / {}",
                format_count(sums.dns_recursive_walks as usize),
                format_count(sums.dns_authority_queries as usize)
            ),
        ]);
        cost.push_row(["setup time", &format!("{:.1} s", self.cost.setup_time(&link).as_secs_f64())]);
        cost.push_row(["mean page-load time", &format!("{:.1} ms", self.cost.mean_plt_millis())]);
        cost.push_row(["reused requests", &format_percent(sums.reuse_share())]);

        format!(
            "{}\n{}\n{}\nredundant sites: {} | redundant connections: {} | request completion: {}\n",
            population.render(),
            causes.render(),
            cost.render(),
            format_percent(self.summary.redundant_site_share()),
            format_percent(self.summary.redundant_connection_share()),
            format_percent(self.request_completion()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> AtlasConfig {
        AtlasConfig { sites: 60, chunk_sites: 16, seed: 7, threads: 2, zipf_exponent: 0.35 }
    }

    #[test]
    fn atlas_visits_every_site_and_finds_redundancy() {
        let report = run_atlas(&tiny());
        assert_eq!(report.observed_sites, 60);
        assert_eq!(report.chunk_count, 4);
        assert!(report.summary.total.connections > 0);
        assert!(report.summary.redundant.connections > 0);
        assert!(report.requests > 0);
        assert!(report.request_completion() > 0.5);
        assert!(report.metrics.sites_per_second > 0.0);
        // Cost accounting rides every visit: one timeline per site, real
        // handshake and DNS work behind them.
        assert_eq!(report.cost.visits, 60);
        assert!(report.cost.sums.handshake_rtts >= 2 * report.summary.total.connections as u64);
        assert_eq!(report.cost.sums.requests as usize, report.requests);
        assert!(report.cost.sums.dns_recursive_walks > 0);
        assert!(report.cost.sums.cold_cwnd_rtts > 0);
    }

    #[test]
    fn repeated_runs_compare_equal_despite_differing_metrics() {
        let config = tiny();
        // PartialEq ignores the wall-clock/RSS metrics, so two runs of the
        // same config are equal even though their timings differ.
        assert_eq!(run_atlas(&config), run_atlas(&config));
    }

    #[test]
    fn chunk_layout_covers_the_population_exactly() {
        let config = AtlasConfig { sites: 50, chunk_sites: 16, ..tiny() };
        let chunks = config.chunks();
        assert_eq!(chunks, vec![(0, 16), (16, 16), (32, 16), (48, 2)]);
        assert_eq!(chunks.iter().map(|(_, len)| len).sum::<usize>(), 50);
    }

    #[test]
    fn chunking_does_not_change_the_classification() {
        // One big chunk vs. many small ones: the population slices differ
        // only in how they are generated, never in what they contain.
        let monolithic = run_atlas(&AtlasConfig { chunk_sites: 60, threads: 1, ..tiny() });
        let chunked = run_atlas(&AtlasConfig { chunk_sites: 7, threads: 1, ..tiny() });
        assert_eq!(monolithic.summary, chunked.summary);
        assert_eq!(monolithic.requests, chunked.requests);
        assert_eq!(monolithic.planned_requests, chunked.planned_requests);
        assert_eq!(monolithic.cost, chunked.cost, "cost totals must be chunk-layout invariant");
    }

    #[test]
    fn arbitrary_contiguous_partitions_reproduce_the_uniform_report() {
        let config = tiny();
        let uniform = run_atlas(&config);
        // A deliberately lopsided partition of the same 60 sites.
        let lopsided = run_atlas_partitioned(&config, &[(0, 1), (1, 29), (30, 25), (55, 5)]);
        assert_eq!(uniform, lopsided);
        assert_eq!(uniform.requests, lopsided.requests);
        assert_eq!(uniform.cost, lopsided.cost);
    }

    #[test]
    fn million_prefix_shares_the_million_layout() {
        let million = AtlasConfig::million();
        let prefix = AtlasConfig::million_prefix(4_000);
        assert_eq!(prefix.chunk_sites, million.chunk_sites);
        assert_eq!(prefix.seed, million.seed);
        assert_eq!(prefix.zipf_exponent, million.zipf_exponent);
        assert_eq!(prefix.sites, 4_000);
        // The prefix layout is literally the first chunks of the million
        // layout.
        assert_eq!(prefix.chunks(), million.chunks()[..prefix.chunks().len()].to_vec());
        // And the prefix clamp cannot exceed the full run.
        assert_eq!(AtlasConfig::million_prefix(2_000_000).sites, 1_000_000);
    }

    #[test]
    fn bench_records_carry_the_scheduler_and_machine_fields() {
        let report = run_atlas(&tiny());
        let record = report.bench_record();
        assert_eq!(record.schema, 2);
        assert_eq!(record.threads, 2);
        assert!(record.available_cores >= 1);
        let file = BenchFile::new(vec![record.clone(), record]);
        assert_eq!(file.schema, 2);
        assert_eq!(file.records.len(), 2);
        let json = serde_json::to_string_pretty(&file).expect("bench file serialises");
        assert!(json.contains("\"records\""));
        assert!(json.contains("\"available_cores\""));
    }

    #[test]
    fn zipf_head_sites_are_heavier_than_the_tail() {
        // With exponent 0.35 the top ranks overwhelmingly draw the Alexa
        // profile; deep tail ranks overwhelmingly draw the archive profile.
        // Compare planned-request mass per site between the first and last
        // chunk of a run.
        let config = AtlasConfig { sites: 4_000, chunk_sites: 200, ..tiny() };
        let mut head_profile = PopulationProfile::alexa();
        head_profile.name = "atlas".to_string();
        let mut tail_profile = PopulationProfile::archive();
        tail_profile.name = "atlas".to_string();
        let head_env =
            PopulationBuilder::new(tail_profile.clone(), 200, config.seed + ALEXA_POPULATION_SEED_OFFSET)
                .with_zipf_profile_mix(head_profile.clone(), config.zipf_exponent)
                .build();
        let tail_env = PopulationBuilder::new(tail_profile, 200, config.seed + ALEXA_POPULATION_SEED_OFFSET)
            .with_site_offset(3_800)
            .with_zipf_profile_mix(head_profile, config.zipf_exponent)
            .build();
        let head_mass = head_env.total_planned_requests() as f64 / 200.0;
        let tail_mass = tail_env.total_planned_requests() as f64 / 200.0;
        assert!(
            head_mass > tail_mass,
            "head sites should plan more requests per site ({head_mass:.1} vs {tail_mass:.1})"
        );
    }

    #[test]
    fn report_renders_population_and_causes() {
        let report = run_atlas(&tiny());
        let text = report.render();
        assert!(text.contains("Atlas"));
        for cause in Cause::ALL {
            assert!(text.contains(cause.label()));
        }
        assert!(text.contains("redundant sites"));
        assert!(text.contains("aggregate connection-setup cost"));
        assert!(text.contains("handshake RTTs"));
        // Metrics stay out of the deterministic report.
        assert!(!text.contains("sites/s"));
        assert!(report.metrics.render().contains("sites/s"));
    }
}
