//! # connreuse-experiments
//!
//! The experiment harness: every table and figure of the paper's evaluation,
//! regenerated end-to-end from the simulated measurement pipeline.
//!
//! The harness builds two site populations (an HTTP-Archive-shaped one and an
//! Alexa-shaped one) plus a shared "overlap" population, crawls them with the
//! browser configurations the paper uses (stock Chromium, Chromium without
//! the Fetch credentials flag, the HTTP-Archive HAR pipeline), classifies the
//! resulting datasets with [`connreuse_core`], and renders the same tables
//! and series the paper publishes:
//!
//! | target | paper artifact |
//! |---|---|
//! | `headline` | §5.1 headline percentages and connection lifetimes |
//! | `figure2`  | redundant-connections-per-site survival function |
//! | `table1`   | cause counts per dataset and duration model |
//! | `table2` / `table12` | top `IP` origins with reusable previous origins |
//! | `table3` / `table4`  | `CERT` issuers and domains |
//! | `table5`   | issuer share over all connections |
//! | `table6`   | ASes behind the `IP` cause |
//! | `table7`–`table10` | the dataset-overlap re-analysis |
//! | `table11` / `figure3` | the DNS probe panel and overlap time series |
//! | `filters`  | the §4.3 HAR filter statistics |
//! | `sweep`    | the 2^4 mitigation what-if matrix (§7 directions) |
//! | `cost`     | the mitigation matrix priced in RTTs/bytes/PLT under three link profiles |
//! | `atlas`    | the paper-scale population scenario (100 k–1 M sites, work-stealing execution, streaming aggregation) |
//! | `fleet`    | multi-page user sessions over a first-class connection-pool lifecycle (warm vs. cold redundancy tax) |
//! | `chaos`    | deterministic fault injection over the warm session trace (failure levels × deployments × links, plus hedged dials) |
//!
//! The [`atlas`] module is the scale engine: it fans fixed site chunks over
//! the work-stealing executor (`connreuse_executor`), one pooled
//! [`VisitScratch`] arena per worker, and merges per-chunk
//! `Accumulator`/`CostTotals` shards in chunk order — so the rendered
//! report is byte-identical at any `--threads` value (see
//! `ARCHITECTURE.md` for the determinism contract).
//!
//! Run everything with `cargo run -p connreuse-experiments --bin repro --release -- all`,
//! just the mitigation matrix with
//! `cargo run -p connreuse-experiments --bin connreuse-sweep --release`, its
//! cost pricing with
//! `cargo run -p connreuse-experiments --bin connreuse-cost --release`, the
//! full-scale atlas with
//! `cargo run -p connreuse-experiments --bin connreuse-atlas --release`, or
//! the million-site scenario with a thread sweep via
//! `cargo run -p connreuse-experiments --bin connreuse-atlas --release -- --million --bench-threads 1,2,4,8`.
//!
//! [`VisitScratch`]: ../netsim_browser/struct.VisitScratch.html

pub mod atlas;
pub mod chaos;
pub mod cost;
pub mod fleet;
pub mod paper;
pub mod profile;
pub mod render;
pub mod runner;
pub mod scenario;
pub mod store;
pub mod sweep;

pub use atlas::{run_atlas, run_atlas_partitioned, AtlasConfig, AtlasMetrics, AtlasReport, BenchFile};
pub use chaos::{run_chaos, ChaosCell, ChaosConfig, ChaosReport};
pub use cost::{run_cost, CostCell, CostConfig, CostReport};
pub use fleet::{run_fleet, FleetCell, FleetConfig, FleetReport};
pub use profile::{render_stage_table, ProfileFile, ProfileRecord};
pub use render::TextTable;
pub use runner::{run_experiment, ExperimentOutput, EXPERIMENTS};
pub use scenario::{Scenario, ScenarioConfig};
pub use store::{
    answer_in_memory, answer_query, build_store, open_store, run_store, BuildReport, QueryAnswer,
    StoreConfig, StoreQuery, StoreRunReport,
};
pub use sweep::{run_sweep, SweepCell, SweepConfig, SweepReport};
