//! Exit-status contract of `connreuse-serve`, exercised through the real
//! binary: 0 on success, 1 on store/IO failure, 2 on bad arguments — the
//! same contract every other bin in the workspace states in `--help`.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn serve(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_connreuse-serve")).args(args).output().expect("run connreuse-serve")
}

fn temp_store(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("serve-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Small store flags shared by the tests: 12 sites in chunks of 6.
fn tiny_flags(dir: &Path) -> Vec<String> {
    vec![
        "--store".into(),
        dir.display().to_string(),
        "--sites".into(),
        "12".into(),
        "--chunk-sites".into(),
        "6".into(),
        "--threads".into(),
        "2".into(),
    ]
}

#[test]
fn help_states_the_exit_status_contract() {
    let output = serve(&["--help"]);
    assert!(output.status.success());
    let text = String::from_utf8_lossy(&output.stdout);
    assert!(text.contains("exit status: 0 on success, 1 on check/IO failure, 2 on bad arguments"));
    assert!(text.contains("--store DIR"));
    assert!(text.contains("mitigations=<label>"));
}

#[test]
fn bad_arguments_exit_2() {
    // Unknown flag.
    assert_eq!(serve(&["--warp-speed"]).status.code(), Some(2));
    // Missing required --store.
    assert_eq!(serve(&["--build"]).status.code(), Some(2));
    // Malformed query grammar (checked before any build work).
    let dir = temp_store("badquery");
    let mut args = tiny_flags(&dir);
    args.extend(["--build".into(), "--query".into(), "mitigations=WARP-DRIVE".into()]);
    let output = serve(&args.iter().map(String::as_str).collect::<Vec<_>>());
    assert_eq!(output.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&output.stderr).contains("unknown mitigation"));
    // Misaligned rank slice.
    let mut args = tiny_flags(&dir);
    args.extend(["--build".into(), "--query".into(), "mitigations=none ranks=1..12".into()]);
    assert_eq!(serve(&args.iter().map(String::as_str).collect::<Vec<_>>()).status.code(), Some(2));
}

#[test]
fn missing_store_without_build_exits_1() {
    let dir = temp_store("absent");
    let args = tiny_flags(&dir);
    let output = serve(&args.iter().map(String::as_str).collect::<Vec<_>>());
    assert_eq!(output.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&output.stderr).contains("missing file"));
}

#[test]
fn build_then_serve_round_trips_and_rewrites_nothing() {
    let dir = temp_store("roundtrip");

    // Build + answer a rank-slice what-if in one invocation.
    let mut args = tiny_flags(&dir);
    args.extend([
        "--build".into(),
        "--query".into(),
        "mitigations=all profile=lossy-cellular ranks=0..6".into(),
    ]);
    let output = serve(&args.iter().map(String::as_str).collect::<Vec<_>>());
    assert_eq!(output.status.code(), Some(0), "{}", String::from_utf8_lossy(&output.stderr));
    let text = String::from_utf8_lossy(&output.stdout);
    assert!(text.contains("shards rewritten: 2"));
    assert!(text.contains("What-if: mitigations=ORIGIN+SYNC-DNS+COALESCE-CERT+POOL-CRED"));
    assert!(text.contains("ranks=0..6"));

    // A second --build over the same config rewrites zero shards.
    let mut args = tiny_flags(&dir);
    args.push("--build".into());
    let output = serve(&args.iter().map(String::as_str).collect::<Vec<_>>());
    assert_eq!(output.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&output.stdout).contains("shards rewritten: 0"));

    // Serve-only answers from the persisted store (no --build).
    let args = tiny_flags(&dir);
    let output = serve(&args.iter().map(String::as_str).collect::<Vec<_>>());
    assert_eq!(output.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&output.stdout).contains("What-if:"));

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_and_foreign_stores_exit_1() {
    let dir = temp_store("corrupt");
    let mut args = tiny_flags(&dir);
    args.push("--build".into());
    assert_eq!(serve(&args.iter().map(String::as_str).collect::<Vec<_>>()).status.code(), Some(0));

    // Flip a byte in a shard: serving must refuse with the checksum error.
    let victim = dir.join("shards").join("chunk-000000.shard");
    let mut bytes = std::fs::read(&victim).unwrap();
    let middle = bytes.len() / 2;
    bytes[middle] ^= 0x01;
    std::fs::write(&victim, &bytes).unwrap();
    let args = tiny_flags(&dir);
    let output = serve(&args.iter().map(String::as_str).collect::<Vec<_>>());
    assert_eq!(output.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&output.stderr).contains("checksum mismatch"));

    // A different seed is a different fingerprint: refused before any read.
    let mut args = tiny_flags(&dir);
    args.extend(["--seed".into(), "999".into()]);
    let output = serve(&args.iter().map(String::as_str).collect::<Vec<_>>());
    assert_eq!(output.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&output.stderr).contains("fingerprint"));

    std::fs::remove_dir_all(&dir).unwrap();
}
