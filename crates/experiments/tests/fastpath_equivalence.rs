//! Property test: the streaming visit classifier
//! ([`connreuse_core::FastVisitClassifier`]) folded through
//! [`connreuse_core::Accumulator::observe_counts`] produces exactly the same
//! accumulator as the batch pipeline (`PageVisit` → `site_from_visit` →
//! `classify_site` → `observe`) over real generated page loads.
//!
//! This is the equivalence the atlas scale scenario's byte-identical golden
//! report rests on: the fast path must agree with the reference pipeline on
//! every visit, across duration models, profiles and seeds.

use connreuse_core::{classify_site, site_from_visit, Accumulator, DurationModel, FastVisitClassifier};
use connreuse_experiments::atlas::classify_scratch;
use netsim_browser::{BrowserConfig, Crawler, VisitScratch};
use netsim_web::{PopulationBuilder, PopulationProfile};
use proptest::prelude::*;

fn duration_model(index: u8) -> DurationModel {
    match index % 3 {
        0 => DurationModel::Endless,
        1 => DurationModel::Immediate,
        _ => DurationModel::Recorded,
    }
}

proptest! {
    #[test]
    fn fast_classifier_matches_batch_pipeline(
        seed in 0u64..500,
        crawl_seed in 0u64..500,
        sites in 1usize..12,
        profile_index in 0u8..2,
        model_index in 0u8..3,
    ) {
        let profile =
            if profile_index == 0 { PopulationProfile::alexa() } else { PopulationProfile::archive() };
        let model = duration_model(model_index);
        let env = PopulationBuilder::new(profile, sites, seed).build();
        let crawler = Crawler::new("equivalence", BrowserConfig::alexa_measurement(), crawl_seed);

        let mut scratch = VisitScratch::without_netlog();
        let mut classifier = FastVisitClassifier::new();
        let mut fast = Accumulator::new();
        let mut batch = Accumulator::new();

        for index in 0..env.sites.len() {
            let times = crawler.visit_site_into(&mut scratch, &env, index);

            // Fast path: classify straight from the scratch buffers,
            // through the same helper production uses.
            prop_assert!(scratch.all_ok(), "simulated responses are always 200");
            fast.observe_counts(&classify_scratch(&mut classifier, &scratch, model));

            // Batch path: materialise the full visit and run the reference
            // pipeline.
            let visit = scratch.to_page_visit(&env.sites[index], times);
            batch.observe(&classify_site(&site_from_visit(&visit), model));
        }

        prop_assert_eq!(&fast, &batch, "accumulators diverge");
        prop_assert_eq!(fast.clone().finish("x"), batch.clone().finish("x"));
    }
}
