//! Property test: the atlas's chunk-ordered merge equals the sequential
//! fold over the whole population, for **arbitrary contiguous chunk
//! partitions** and any worker count.
//!
//! This is the contract the work-stealing executor rests on: scheduling
//! moves chunks between workers and partitioning moves sites between
//! chunks, but every site's RNG streams fork off its *global* index and
//! `Accumulator::merge` / `CostTotals::merge` are associative — so the
//! monolithic single-chunk run, the uniform chunk layout and any lopsided
//! partition must produce the identical report.

use connreuse_experiments::atlas::{run_atlas, run_atlas_partitioned, AtlasConfig};
use proptest::prelude::*;

/// Turn a list of raw draw values into a contiguous partition of
/// `[0, sites)`: each draw contributes a chunk of `1 + draw % 17` sites,
/// and the final chunk absorbs whatever remains.
fn partition_from_draws(sites: usize, draws: &[usize]) -> Vec<(usize, usize)> {
    let mut chunks = Vec::new();
    let mut start = 0;
    for draw in draws {
        if start >= sites {
            break;
        }
        let len = (1 + draw % 17).min(sites - start);
        chunks.push((start, len));
        start += len;
    }
    if start < sites {
        chunks.push((start, sites - start));
    }
    chunks
}

proptest! {
    #[test]
    fn chunk_ordered_merge_equals_the_sequential_fold(
        sites in 20usize..56,
        seed in 0u64..200,
        threads in 1usize..5,
        draws in prop::collection::vec(0usize..1000, 1usize..12),
    ) {
        let config = AtlasConfig { sites, chunk_sites: sites, seed, threads, zipf_exponent: 0.35 };
        let partition = partition_from_draws(sites, &draws);
        prop_assert_eq!(partition.iter().map(|(_, len)| len).sum::<usize>(), sites);

        // The sequential fold: one chunk, one worker, no merge at all.
        let monolithic =
            run_atlas_partitioned(&AtlasConfig { threads: 1, ..config }, &[(0, sites)]);
        // The same population, arbitrarily partitioned and work-stolen.
        let partitioned = run_atlas_partitioned(&config, &partition);

        prop_assert_eq!(&monolithic.summary, &partitioned.summary);
        prop_assert_eq!(monolithic.observed_sites, partitioned.observed_sites);
        prop_assert_eq!(monolithic.requests, partitioned.requests);
        prop_assert_eq!(monolithic.planned_requests, partitioned.planned_requests);
        prop_assert_eq!(&monolithic.cost, &partitioned.cost);
    }

    #[test]
    fn uniform_layout_is_one_partition_among_many(
        sites in 20usize..48,
        chunk_sites in 1usize..20,
        threads in 1usize..4,
    ) {
        // `run_atlas` (the uniform layout from the config) is just the
        // special case of the partitioned runner; pin that the public entry
        // points agree with each other.
        let config = AtlasConfig { sites, chunk_sites, seed: 13, threads, zipf_exponent: 0.35 };
        let uniform = run_atlas(&config);
        let monolithic =
            run_atlas_partitioned(&AtlasConfig { threads: 1, ..config }, &[(0, sites)]);
        prop_assert_eq!(&uniform.summary, &monolithic.summary);
        prop_assert_eq!(uniform.requests, monolithic.requests);
        prop_assert_eq!(&uniform.cost, &monolithic.cost);
    }
}
