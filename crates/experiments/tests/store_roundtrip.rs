//! The persistence contract of the shard store, end to end:
//!
//! * **Round trip** — answers folded from persisted shards are byte-identical
//!   to the equivalent in-memory atlas+cost computation, for arbitrary
//!   store shapes (proptest).
//! * **Incremental recrawl** — growing the population dirties only the new
//!   and resized chunks, and the refreshed store equals a from-scratch
//!   rebuild byte-for-byte.
//! * **Corruption** — truncation, bit flips and fingerprint tampering are
//!   refused with the matching typed [`StoreError`], never served.

use connreuse_experiments::store::{
    answer_in_memory, answer_query, build_store, open_store, run_store, StoreConfig, StoreQuery,
};
use netsim_store::{BuildPlan, ShardStore, StoreError, StoreLayout, MANIFEST_FILE};
use netsim_types::{fnv1a, MitigationSet};
use proptest::prelude::*;
use std::path::{Path, PathBuf};

fn temp_store(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("store-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tiny(sites: usize, chunk_sites: usize, seed: u64, threads: usize) -> StoreConfig {
    StoreConfig {
        sites,
        chunk_sites,
        seed,
        threads,
        mitigations: StoreConfig::demo_mitigations(),
        ..StoreConfig::default()
    }
}

/// Read every byte of a store directory, keyed by file name.
fn store_bytes(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut files =
        vec![(MANIFEST_FILE.to_string(), std::fs::read(dir.join(MANIFEST_FILE)).expect("manifest"))];
    let mut shards: Vec<_> = std::fs::read_dir(dir.join("shards"))
        .expect("shards dir")
        .map(|entry| entry.expect("entry").file_name().to_string_lossy().to_string())
        .collect();
    shards.sort();
    for name in shards {
        files.push((name.clone(), std::fs::read(dir.join("shards").join(name)).expect("shard")));
    }
    files
}

proptest! {
    /// The store is a cache, never an approximation: for arbitrary
    /// population sizes, chunk sizes, seeds and thread counts, every demo
    /// query answered from disk must equal — struct and rendered bytes —
    /// the same query computed in memory.
    #[test]
    fn persisted_answers_equal_the_in_memory_computation(
        sites in 12usize..40,
        chunk_sites in 5usize..20,
        seed in 0u64..100,
        threads in 1usize..5,
    ) {
        let config = tiny(sites, chunk_sites, seed, threads);
        let dir = temp_store(&format!("prop-{sites}-{chunk_sites}-{seed}-{threads}"));
        let queries = config.demo_queries();
        let report = run_store(&config, &dir, &queries).expect("build");
        prop_assert_eq!(report.build.rewritten, config.chunks().len());
        for (query, stored) in queries.iter().zip(&report.answers) {
            let computed = answer_in_memory(&config, query).expect("in-memory");
            prop_assert_eq!(stored, &computed);
            prop_assert_eq!(stored.render(&config), computed.render(&config));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Growing the population appends chunks: the incremental refresh rewrites
/// only the new (and resized-final) chunks, and the resulting directory is
/// byte-identical to building the grown configuration from scratch.
#[test]
fn incremental_growth_equals_a_full_rebuild() {
    let small = tiny(20, 8, 5, 2); // chunks: (0,8) (8,8) (16,4)
    let grown = StoreConfig { sites: 40, ..small.clone() }; // (0,8) (8,8) (16,8) (24,8) (32,8)
    assert_eq!(small.fingerprint(), grown.fingerprint(), "growth must not change the fingerprint");

    let dir_grown = temp_store("grow-incremental");
    let dir_fresh = temp_store("grow-fresh");
    build_store(&small, &dir_grown).expect("small build");

    // The incremental refresh keeps the two full chunks and recrawls the
    // resized third plus the two new ones.
    let refresh = build_store(&grown, &dir_grown).expect("incremental build");
    assert_eq!(refresh.reused, 2);
    assert_eq!(refresh.rewritten, 3);

    build_store(&grown, &dir_fresh).expect("fresh build");
    assert_eq!(store_bytes(&dir_grown), store_bytes(&dir_fresh));

    // And the grown store answers exactly like the in-memory computation.
    let store = open_store(&grown, &dir_grown).expect("open");
    let query = StoreQuery { mitigations: MitigationSet::all(), profile_index: 2, lo: 0, hi: 40 };
    assert_eq!(
        answer_query(&store, &grown, &query).expect("stored answer"),
        answer_in_memory(&grown, &query).expect("in-memory answer")
    );

    std::fs::remove_dir_all(&dir_grown).unwrap();
    std::fs::remove_dir_all(&dir_fresh).unwrap();
}

/// A second build over the same configuration is a no-op: zero shards
/// rewritten, bytes untouched.
#[test]
fn rebuilding_an_up_to_date_store_rewrites_nothing() {
    let config = tiny(18, 6, 9, 2);
    let dir = temp_store("idempotent");
    build_store(&config, &dir).expect("first build");
    let before = store_bytes(&dir);
    let again = build_store(&config, &dir).expect("second build");
    assert_eq!(again.rewritten, 0);
    assert_eq!(again.reused, 3);
    assert_eq!(store_bytes(&dir), before, "an idempotent rebuild must not touch a byte");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Every corruption mode gets its typed refusal, and the build planner
/// schedules exactly the damaged chunk for recrawl.
#[test]
fn corruption_is_refused_with_typed_errors_and_repaired_incrementally() {
    let config = tiny(18, 6, 3, 2);
    let dir = temp_store("corruption");
    build_store(&config, &dir).expect("build");
    let victim = dir.join("shards").join("chunk-000001.shard");
    let pristine = std::fs::read(&victim).expect("read shard");
    let store = ShardStore::open(&dir).expect("open");

    // Truncation: the header promises more bytes than the file holds. The
    // manifest's per-file checksum catches it first on the read path; the
    // format decoder names the precise failure.
    std::fs::write(&victim, &pristine[..pristine.len() - 9]).unwrap();
    assert!(matches!(store.read_chunk(1), Err(StoreError::ChecksumMismatch { .. })));
    let truncated =
        netsim_store::ShardFile::decode("chunk-000001.shard", &pristine[..pristine.len() - 9], None);
    assert!(matches!(truncated, Err(StoreError::Truncated { .. })));

    // Bit flip: length intact, checksum broken.
    let mut flipped = pristine.clone();
    let middle = flipped.len() / 2;
    flipped[middle] ^= 0x40;
    std::fs::write(&victim, &flipped).unwrap();
    assert!(matches!(store.read_chunk(1), Err(StoreError::ChecksumMismatch { .. })));

    // Fingerprint tamper with a re-sealed checksum: the file is internally
    // consistent but belongs to a different configuration. (The manifest
    // pins per-file checksums, so the re-sealed file must also dodge that
    // check to reach the fingerprint comparison — decode it directly.)
    let mut foreign = pristine.clone();
    foreign[16] ^= 0xff; // fingerprint is header word 1, after the magic and schema
    let body = foreign.len() - 8;
    let reseal = fnv1a(&foreign[..body]).to_le_bytes();
    foreign[body..].copy_from_slice(&reseal);
    std::fs::write(&victim, &foreign).unwrap();
    assert!(matches!(store.read_chunk(1), Err(StoreError::ChecksumMismatch { .. })));
    let decoded = netsim_store::ShardFile::decode("chunk-000001.shard", &foreign, Some(config.fingerprint()));
    assert!(matches!(decoded, Err(StoreError::FingerprintMismatch { .. })));

    // The planner marks only the damaged chunk dirty, and the refresh
    // repairs it back to the pristine bytes.
    let plan = BuildPlan::assess(&dir, &config.layout()).expect("assess");
    assert_eq!(plan.dirty, vec![1]);
    assert_eq!(plan.clean, vec![0, 2]);
    let repair = build_store(&config, &dir).expect("repair build");
    assert_eq!(repair.rewritten, 1);
    assert_eq!(std::fs::read(&victim).expect("repaired shard"), pristine);

    // A missing shard behind an intact manifest is refused too.
    std::fs::remove_file(&victim).unwrap();
    assert!(matches!(store.read_chunk(1), Err(StoreError::Missing { .. })));

    std::fs::remove_dir_all(&dir).unwrap();
}

/// A store built under one configuration refuses to serve another.
#[test]
fn foreign_fingerprints_do_not_open() {
    let config = tiny(12, 6, 21, 1);
    let dir = temp_store("foreign");
    build_store(&config, &dir).expect("build");
    let other_seed = StoreConfig { seed: 22, ..config.clone() };
    let error = open_store(&other_seed, &dir).expect_err("must refuse");
    assert!(matches!(error, StoreError::FingerprintMismatch { .. }), "{error:?}");

    // Dropping a stored deployment changes the fingerprint too: shard
    // record layouts are part of the configuration.
    let fewer = StoreConfig { mitigations: vec![MitigationSet::empty()], ..config.clone() };
    assert!(open_store(&fewer, &dir).is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Deleting the manifest makes the store unopenable (an interrupted build),
/// while the shards still allow a cheap incremental recovery.
#[test]
fn a_store_without_a_manifest_recovers_incrementally() {
    let config = tiny(12, 4, 2, 2);
    let dir = temp_store("no-manifest");
    build_store(&config, &dir).expect("build");
    std::fs::remove_file(dir.join(MANIFEST_FILE)).unwrap();
    assert!(matches!(open_store(&config, &dir), Err(StoreError::Missing { .. })));

    // Recovery re-validates the shards without recrawling a single site.
    let recovered = build_store(&config, &dir).expect("recovery");
    assert_eq!(recovered.rewritten, 0);
    assert_eq!(recovered.reused, 3);
    assert!(open_store(&config, &dir).is_ok());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Stale shard files from a larger, abandoned layout are deleted by the
/// next build and reported.
#[test]
fn shrinking_the_population_removes_stale_shards() {
    let big = tiny(24, 6, 4, 2);
    let small = StoreConfig { sites: 12, ..big.clone() };
    let dir = temp_store("shrink");
    build_store(&big, &dir).expect("big build");
    let report = build_store(&small, &dir).expect("small build");
    assert_eq!(report.rewritten, 0);
    assert_eq!(report.reused, 2);
    assert_eq!(report.removed, 2);
    assert!(!StoreLayout::shard_path(&dir, 2).exists());
    assert!(!StoreLayout::shard_path(&dir, 3).exists());
    std::fs::remove_dir_all(&dir).unwrap();
}
