//! Global string interning for domain names.
//!
//! The analysis pipeline shuttles the same few thousand domain strings
//! through dns → tls → h2 → fetch → browser → core millions of times when a
//! population is crawled at scale. Before interning, every hop cloned a heap
//! `String`; at 100 k sites that clone storm dominated the profile. The
//! intern table stores each *canonical* (lower-case, validated) domain string
//! exactly once and hands out a copyable 32-bit [`DomainId`] instead.
//!
//! Interned strings are leaked (`Box::leak`) so lookups return `&'static
//! str` and no read path ever holds a lock while user code runs. The leak is
//! bounded by the number of *distinct* domains a process touches — a few
//! megabytes even for the 100 k-site atlas scenario — and lets
//! [`crate::DomainName`] carry the string pointer inline, making `Display`,
//! `Ord` and hashing lock-free.
//!
//! Identifiers are assigned in first-intern order, which depends on thread
//! interleaving when populations are generated in parallel. Nothing may
//! therefore *order* by raw id: [`crate::DomainName`]'s `Ord` stays textual,
//! which keeps every `BTreeMap`-backed report byte-identical regardless of
//! thread count.

use crate::hash::FnvHashMap;
use std::sync::{OnceLock, RwLock};

/// A copyable handle to one interned canonical domain string.
///
/// Two `DomainId`s compare equal **iff** their lowercase-normalized strings
/// are equal (canonicalisation happens before interning). The raw index is
/// assignment-order dependent — never sort by it.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct DomainId(u32);

impl DomainId {
    /// The interned canonical string.
    pub fn as_str(self) -> &'static str {
        table().read().expect("intern table poisoned").strings[self.0 as usize]
    }

    /// The raw table index (diagnostics only — assignment-order dependent).
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Rebuild a handle from a raw index. Only sound for indices previously
    /// produced by interning — kept crate-private for [`crate::OriginId`]'s
    /// unpacking.
    pub(crate) const fn from_index(index: u32) -> Self {
        DomainId(index)
    }
}

impl std::fmt::Display for DomainId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::fmt::Debug for DomainId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DomainId({} -> {})", self.0, self.as_str())
    }
}

struct InternTable {
    // Deterministic FNV keys: the lookup happens on every domain parse and
    // every `DomainName::parent` walk — SipHash was measurable there.
    ids: FnvHashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn table() -> &'static RwLock<InternTable> {
    static TABLE: OnceLock<RwLock<InternTable>> = OnceLock::new();
    TABLE.get_or_init(|| RwLock::new(InternTable { ids: FnvHashMap::default(), strings: Vec::new() }))
}

/// Intern a canonical (already validated + lowercased) string, returning its
/// id and the leaked `'static` copy. Idempotent: the same string always maps
/// to the same id, across threads.
pub(crate) fn intern_canonical(canonical: &str) -> (DomainId, &'static str) {
    // Fast path: shared read lock for strings seen before.
    {
        let guard = table().read().expect("intern table poisoned");
        if let Some(&id) = guard.ids.get(canonical) {
            return (DomainId(id), guard.strings[id as usize]);
        }
    }
    let mut guard = table().write().expect("intern table poisoned");
    // Re-check: another thread may have interned it between the locks.
    if let Some(&id) = guard.ids.get(canonical) {
        let leaked = guard.strings[id as usize];
        return (DomainId(id), leaked);
    }
    let id = u32::try_from(guard.strings.len()).expect("more than u32::MAX interned domains");
    let leaked: &'static str = Box::leak(canonical.to_string().into_boxed_str());
    guard.strings.push(leaked);
    guard.ids.insert(leaked, id);
    (DomainId(id), leaked)
}

/// Number of distinct domain strings interned so far (diagnostics /
/// memory-footprint reporting).
pub fn interned_domain_count() -> usize {
    table().read().expect("intern table poisoned").strings.len()
}

/// Total octets of interned canonical strings (diagnostics).
pub fn interned_domain_octets() -> usize {
    table().read().expect("intern table poisoned").strings.iter().map(|s| s.len()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let (a, sa) = intern_canonical("intern-test.example");
        let (b, sb) = intern_canonical("intern-test.example");
        assert_eq!(a, b);
        assert_eq!(sa, "intern-test.example");
        // Both resolve to the same leaked allocation.
        assert!(std::ptr::eq(sa, sb));
        assert_eq!(a.as_str(), "intern-test.example");
    }

    #[test]
    fn distinct_strings_get_distinct_ids() {
        let (a, _) = intern_canonical("intern-a.example");
        let (b, _) = intern_canonical("intern-b.example");
        assert_ne!(a, b);
        assert_ne!(a.as_str(), b.as_str());
    }

    #[test]
    fn concurrent_interning_agrees_on_ids() {
        let ids: Vec<DomainId> = std::thread::scope(|scope| {
            let handles: Vec<_> =
                (0..8).map(|_| scope.spawn(|| intern_canonical("intern-race.example").0)).collect();
            handles.into_iter().map(|h| h.join().expect("no panic")).collect()
        });
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn table_statistics_are_monotone() {
        let before = interned_domain_count();
        intern_canonical("intern-stats.example");
        assert!(interned_domain_count() > 0);
        assert!(interned_domain_count() >= before);
        assert!(interned_domain_octets() >= "intern-stats.example".len());
    }
}
