//! DNS domain names with lightweight validation and a small public-suffix
//! model.
//!
//! The connection-reuse analysis constantly needs to answer questions such as
//! "is `img.example.com` a subdomain of `example.com`?", "what is the
//! registrable (second-level) domain of `www.google-analytics.com`?" and
//! "does the wildcard `*.shop.example` cover `img.shop.example`?". This module
//! provides a canonicalised [`DomainName`] type that answers them without
//! pulling in the full public-suffix list: a compact built-in suffix set
//! covers the suffixes that appear in the simulated web population.
//!
//! `DomainName` is a **copyable interned handle**: parsing canonicalises the
//! text once and stores it in the global intern table (see
//! [`crate::intern`]), so the value that flows through dns → tls → h2 →
//! fetch → browser → core is a 24-byte `Copy` struct instead of a heap
//! `String`. Equality is an id compare; ordering and hashing stay textual /
//! consistent with equality, so `BTreeMap`-backed reports are byte-identical
//! to the pre-interning representation.

use crate::intern::{intern_canonical, DomainId};
use serde::{de, value::Value, Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Errors produced when parsing a textual domain name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DomainError {
    /// The input was empty or consisted only of dots.
    Empty,
    /// A label was empty (`"a..b"`), longer than 63 octets, or the full name
    /// exceeded 253 octets.
    BadLength(String),
    /// A label contained a character outside `[a-z0-9-]` (after lowercasing)
    /// or started/ended with a hyphen.
    BadCharacter(String),
}

impl fmt::Display for DomainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DomainError::Empty => write!(f, "empty domain name"),
            DomainError::BadLength(l) => write!(f, "label or name has invalid length: {l:?}"),
            DomainError::BadCharacter(l) => write!(f, "label contains invalid character: {l:?}"),
        }
    }
}

impl std::error::Error for DomainError {}

/// Multi-label public suffixes understood by [`DomainName::registrable`].
///
/// The simulated population only uses a handful of country-code second-level
/// suffixes; anything not listed here is treated as a single-label suffix
/// (`com`, `net`, `de`, ...).
const MULTI_LABEL_SUFFIXES: &[&str] = &[
    "co.uk", "org.uk", "ac.uk", "com.au", "net.au", "co.jp", "com.br", "com.cn", "co.kr", "com.tr", "com.mx",
    "co.in", "co.za", "com.ar", "gov.uk",
];

/// A canonicalised (lower-case, no trailing dot) DNS domain name, stored as a
/// copyable handle into the global intern table.
///
/// Ordering and equality are textual on the canonical form (equality is an id
/// compare, which is equivalent because canonicalisation happens before
/// interning), which makes the type usable as a map key throughout the
/// workspace.
#[derive(Clone, Copy)]
pub struct DomainName {
    id: DomainId,
    name: &'static str,
}

impl DomainName {
    /// Parse and canonicalise a domain name.
    ///
    /// Accepts an optional trailing dot and upper-case letters; rejects empty
    /// labels, over-long labels/names and characters outside the LDH set.
    pub fn parse(input: &str) -> Result<Self, DomainError> {
        let trimmed = input.trim().trim_end_matches('.');
        if trimmed.is_empty() {
            return Err(DomainError::Empty);
        }
        let lowered = trimmed.to_ascii_lowercase();
        if lowered.len() > 253 {
            return Err(DomainError::BadLength(lowered));
        }
        for label in lowered.split('.') {
            if label.is_empty() || label.len() > 63 {
                return Err(DomainError::BadLength(label.to_string()));
            }
            if label.starts_with('-') || label.ends_with('-') {
                return Err(DomainError::BadCharacter(label.to_string()));
            }
            if !label
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-' || b == b'_' || b == b'*')
            {
                return Err(DomainError::BadCharacter(label.to_string()));
            }
        }
        Ok(Self::from_canonical(&lowered))
    }

    /// Intern a string that is already canonical (validated + lowercased).
    fn from_canonical(canonical: &str) -> Self {
        let (id, name) = intern_canonical(canonical);
        DomainName { id, name }
    }

    /// Construct a domain that is known to be valid at compile time.
    ///
    /// # Panics
    /// Panics if `input` is not a valid domain name; intended for literals in
    /// catalogs and tests.
    pub fn literal(input: &str) -> Self {
        Self::parse(input).expect("invalid domain literal")
    }

    /// The interned id — a 4-byte handle equal iff the canonical strings are
    /// equal. The raw value is assignment-order dependent; never sort by it.
    pub fn id(&self) -> DomainId {
        self.id
    }

    /// The canonical textual form (lower-case, no trailing dot).
    pub fn as_str(&self) -> &'static str {
        self.name
    }

    /// Labels from leftmost (host) to rightmost (TLD).
    pub fn labels(&self) -> impl Iterator<Item = &'static str> {
        self.name.split('.')
    }

    /// Number of labels.
    pub fn label_count(&self) -> usize {
        self.labels().count()
    }

    /// `true` if `self` equals `other` or is a strict subdomain of it
    /// (`img.example.com` is a subdomain of `example.com`).
    pub fn is_subdomain_of(&self, other: &DomainName) -> bool {
        if self == other {
            return true;
        }
        self.name.len() > other.name.len()
            && self.name.ends_with(other.name)
            && self.name.as_bytes()[self.name.len() - other.name.len() - 1] == b'.'
    }

    /// Byte length of this name's public suffix: a strict multi-label suffix
    /// match from [`MULTI_LABEL_SUFFIXES`], else the last label (the whole
    /// name when it has a single label). Purely textual — the shared core of
    /// [`DomainName::public_suffix`] and [`DomainName::registrable`], which
    /// run on population-generation and DNS hot paths and must not touch the
    /// intern table until the final answer.
    fn public_suffix_len(&self) -> usize {
        for suffix in MULTI_LABEL_SUFFIXES {
            let is_strict_subdomain = self.name.len() > suffix.len()
                && self.name.ends_with(suffix)
                && self.name.as_bytes()[self.name.len() - suffix.len() - 1] == b'.';
            if is_strict_subdomain {
                return suffix.len();
            }
        }
        match self.name.rfind('.') {
            Some(idx) => self.name.len() - idx - 1,
            None => self.name.len(),
        }
    }

    /// The public suffix of this name (e.g. `co.uk` for `shop.example.co.uk`).
    pub fn public_suffix(&self) -> DomainName {
        let suffix_len = self.public_suffix_len();
        if suffix_len == self.name.len() {
            return *self;
        }
        DomainName::from_canonical(&self.name[self.name.len() - suffix_len..])
    }

    /// The registrable ("second-level") domain: the public suffix plus one
    /// label. For `www.google-analytics.com` this is `google-analytics.com`.
    /// A name that *is* a public suffix is returned unchanged.
    pub fn registrable(&self) -> DomainName {
        let suffix_len = self.public_suffix_len();
        if suffix_len == self.name.len() {
            // The name is its own suffix (single label).
            return *self;
        }
        // `head` is everything before the suffix (exclusive of the dot); the
        // registrable domain keeps one label ahead of the suffix.
        let head = &self.name[..self.name.len() - suffix_len - 1];
        let start = head.rfind('.').map(|idx| idx + 1).unwrap_or(0);
        DomainName::from_canonical(&self.name[start..])
    }

    /// `true` if two names share the same registrable domain — the paper's
    /// notion of "same party" used when reasoning about domain sharding
    /// (`img.example.com` and `www.example.com` are shards of one site).
    pub fn same_registrable(&self, other: &DomainName) -> bool {
        self.registrable() == other.registrable()
    }

    /// Prepend a label, producing `label.self`.
    pub fn with_subdomain(&self, label: &str) -> Result<DomainName, DomainError> {
        DomainName::parse(&format!("{label}.{}", self.name))
    }

    /// The parent domain (`example.com` for `www.example.com`), or `None` for
    /// a single-label name.
    pub fn parent(&self) -> Option<DomainName> {
        let idx = self.name.find('.')?;
        Some(DomainName::from_canonical(&self.name[idx + 1..]))
    }

    /// `true` if the leftmost label is the wildcard label `*`.
    pub fn is_wildcard(&self) -> bool {
        self.name.starts_with("*.")
    }

    /// Whether a wildcard pattern (`*.example.com`) matches `candidate` per
    /// RFC 6125 §6.4.3: the wildcard only spans one leftmost label.
    pub fn wildcard_matches(&self, candidate: &DomainName) -> bool {
        if !self.is_wildcard() {
            return self == candidate;
        }
        let base = &self.name[2..];
        match candidate.name.strip_suffix(base) {
            Some(head) => {
                // head must be "<single-label>." and non-empty
                head.len() > 1 && head.ends_with('.') && !head[..head.len() - 1].contains('.')
            }
            None => false,
        }
    }
}

impl DomainId {
    /// Rebuild the full [`DomainName`] handle for this interned id.
    pub fn resolve(self) -> DomainName {
        DomainName { id: self, name: self.as_str() }
    }
}

impl PartialEq for DomainName {
    fn eq(&self, other: &Self) -> bool {
        // Canonicalise-then-intern makes id equality equivalent to textual
        // equality of the lowercase-normalized names.
        self.id == other.id
    }
}

impl Eq for DomainName {}

impl std::hash::Hash for DomainName {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Consistent with `Eq`: equal ids resolve to equal strings.
        self.id.hash(state);
    }
}

impl PartialOrd for DomainName {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for DomainName {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Textual, NOT by id: intern ids depend on first-touch order across
        // threads, while report tables rely on deterministic (lexicographic)
        // BTreeMap iteration.
        self.name.cmp(other.name)
    }
}

impl Serialize for DomainName {
    fn serialize_value(&self) -> Value {
        Value::String(self.name.to_string())
    }
}

impl Deserialize for DomainName {
    fn deserialize_value(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::String(s) => DomainName::parse(s).map_err(de::Error::custom),
            _ => Err(de::Error::custom("expected domain-name string")),
        }
    }
}

impl fmt::Display for DomainName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name)
    }
}

impl fmt::Debug for DomainName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DomainName({})", self.name)
    }
}

impl FromStr for DomainName {
    type Err = DomainError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DomainName::parse(s)
    }
}

impl AsRef<str> for DomainName {
    fn as_ref(&self) -> &str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_canonicalises() {
        let d = DomainName::parse("WWW.Example.COM.").unwrap();
        assert_eq!(d.as_str(), "www.example.com");
        assert_eq!(d.label_count(), 3);
    }

    #[test]
    fn rejects_bad_input() {
        assert_eq!(DomainName::parse(""), Err(DomainError::Empty));
        assert_eq!(DomainName::parse("..."), Err(DomainError::Empty));
        assert!(matches!(DomainName::parse("a..b"), Err(DomainError::BadLength(_))));
        assert!(matches!(DomainName::parse("exa mple.com"), Err(DomainError::BadCharacter(_))));
        assert!(matches!(DomainName::parse("-bad.com"), Err(DomainError::BadCharacter(_))));
        let long_label = "a".repeat(64);
        assert!(matches!(DomainName::parse(&format!("{long_label}.com")), Err(DomainError::BadLength(_))));
        let long_name = format!("{}.com", vec!["abcdefgh"; 32].join("."));
        assert!(matches!(DomainName::parse(&long_name), Err(DomainError::BadLength(_))));
    }

    #[test]
    fn interned_ids_track_textual_equality() {
        let a = DomainName::parse("WWW.Example.COM").unwrap();
        let b = DomainName::parse("www.example.com.").unwrap();
        let c = DomainName::parse("img.example.com").unwrap();
        assert_eq!(a.id(), b.id());
        assert_eq!(a, b);
        assert_ne!(a.id(), c.id());
        assert_ne!(a, c);
        // The handle is Copy: no allocation on duplication.
        let copied = a;
        assert_eq!(copied, b);
    }

    #[test]
    fn ordering_is_textual_not_by_intern_id() {
        // Intern in "wrong" lexicographic order: ids ascend with first touch,
        // Ord must still be alphabetical.
        let z = DomainName::literal("zzz-intern-order.example");
        let a = DomainName::literal("aaa-intern-order.example");
        assert!(a < z);
        let mut v = [z, a];
        v.sort();
        assert_eq!(v[0], a);
    }

    #[test]
    fn subdomain_relation() {
        let root = DomainName::literal("example.com");
        let img = DomainName::literal("img.example.com");
        let other = DomainName::literal("notexample.com");
        assert!(img.is_subdomain_of(&root));
        assert!(root.is_subdomain_of(&root));
        assert!(!root.is_subdomain_of(&img));
        assert!(!other.is_subdomain_of(&root));
        // suffix-string overlap without a dot boundary must not count
        let tricky = DomainName::literal("badexample.com");
        assert!(!tricky.is_subdomain_of(&root));
    }

    #[test]
    fn registrable_domain() {
        assert_eq!(
            DomainName::literal("www.google-analytics.com").registrable().as_str(),
            "google-analytics.com"
        );
        assert_eq!(DomainName::literal("a.b.shop.example.co.uk").registrable().as_str(), "example.co.uk");
        assert_eq!(DomainName::literal("com").registrable().as_str(), "com");
        assert_eq!(DomainName::literal("example.de").registrable().as_str(), "example.de");
    }

    #[test]
    fn same_registrable_party() {
        let a = DomainName::literal("img.shop.example.com");
        let b = DomainName::literal("static.example.com");
        let c = DomainName::literal("example.org");
        assert!(a.same_registrable(&b));
        assert!(!a.same_registrable(&c));
    }

    #[test]
    fn wildcard_matching_single_label_only() {
        let wc = DomainName::literal("*.example.com");
        assert!(wc.wildcard_matches(&DomainName::literal("img.example.com")));
        assert!(!wc.wildcard_matches(&DomainName::literal("a.b.example.com")));
        assert!(!wc.wildcard_matches(&DomainName::literal("example.com")));
        assert!(!wc.wildcard_matches(&DomainName::literal("img.example.org")));
        let exact = DomainName::literal("img.example.com");
        assert!(exact.wildcard_matches(&DomainName::literal("img.example.com")));
        assert!(!exact.wildcard_matches(&DomainName::literal("other.example.com")));
    }

    #[test]
    fn parent_and_subdomain_builders() {
        let d = DomainName::literal("example.com");
        assert_eq!(d.with_subdomain("img").unwrap().as_str(), "img.example.com");
        assert_eq!(d.parent().unwrap().as_str(), "com");
        assert_eq!(DomainName::literal("com").parent(), None);
    }

    #[test]
    fn display_and_fromstr_roundtrip() {
        let d: DomainName = "Static.Hotjar.com".parse().unwrap();
        assert_eq!(d.to_string(), "static.hotjar.com");
    }

    #[test]
    fn serde_roundtrip_revalidates() {
        let d = DomainName::literal("www.example.co.uk");
        let value = d.serialize_value();
        assert_eq!(value.as_str(), Some("www.example.co.uk"));
        let back = DomainName::deserialize_value(&value).unwrap();
        assert_eq!(back, d);
        assert_eq!(back.id(), d.id());
        assert!(DomainName::deserialize_value(&Value::String("bad domain!".to_string())).is_err());
        assert!(DomainName::deserialize_value(&Value::Null).is_err());
    }
}
