//! # netsim-types
//!
//! Shared vocabulary for the `connreuse` workspace: domain names with a small
//! public-suffix model, HTTPS origins, IPv4 addresses and prefixes, a
//! simulated clock, stable identifiers and a deterministic, fork-able RNG.
//!
//! Every other crate in the workspace builds on these types so that the
//! simulation substrates (DNS, TLS, HTTP/2, browser) and the analysis core
//! agree on what a "domain", an "IP" and a "point in time" are.
//!
//! All types are plain data: cloneable, comparable, hashable and
//! serde-serialisable, so they can flow through HAR files, NetLog events and
//! report tables without conversion layers.
//!
//! The [`profile`] module is the one observability exception: feature-gated
//! (`hotpath-profile`) wall-clock stage attribution for the visit fast path,
//! compiled to nothing by default.

pub mod domain;
pub mod fingerprint;
pub mod hash;
pub mod id;
pub mod intern;
pub mod ip;
pub mod mitigation;
pub mod origin;
pub mod profile;
pub mod rng;
pub mod time;

pub use domain::{DomainError, DomainName};
pub use fingerprint::{Fingerprint, FingerprintBuilder};
pub use hash::{fnv1a, FnvBuildHasher, FnvHashMap, FnvHasher};
pub use id::{ConnectionId, IdAllocator, PageId, RequestId, SiteId};
pub use intern::{interned_domain_count, interned_domain_octets, DomainId};
pub use ip::{IpAddr, Prefix};
pub use mitigation::{Mitigation, MitigationSet};
pub use origin::{Origin, OriginId, Scheme};
pub use profile::{Stage, StageStats, StageTable};
pub use rng::SimRng;
pub use time::{Duration, Instant, SimClock};
