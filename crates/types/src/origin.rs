//! Web origins.
//!
//! The paper attributes redundant connections to "origins" — the
//! scheme/host/port triple of the connection's initially requested resource
//! (Table 2, Table 12). [`Origin`] captures that triple; the default scheme
//! and port follow the measurement setup (HTTPS, 443), since only TLS
//! connections participate in HTTP/2 Connection Reuse.

use crate::domain::DomainName;
use serde::{Deserialize, Serialize};
use std::fmt;

/// URL scheme of an origin. The simulation only ever speaks `https` (HTTP/2
/// Connection Reuse requires TLS), but `http` is kept so that HAR
/// inconsistency injection can produce the HTTP/1-over-cleartext requests the
/// paper filters out.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum Scheme {
    /// Cleartext HTTP.
    Http,
    /// HTTP over TLS.
    Https,
}

impl Scheme {
    /// The default port for the scheme.
    pub const fn default_port(self) -> u16 {
        match self {
            Scheme::Http => 80,
            Scheme::Https => 443,
        }
    }

    /// Canonical textual form.
    pub const fn as_str(self) -> &'static str {
        match self {
            Scheme::Http => "http",
            Scheme::Https => "https",
        }
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A web origin: scheme, host and port.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Origin {
    /// URL scheme.
    pub scheme: Scheme,
    /// Host name.
    pub host: DomainName,
    /// TCP port.
    pub port: u16,
}

impl Origin {
    /// An `https://host:443` origin — the common case throughout the study.
    pub fn https(host: DomainName) -> Self {
        Origin { scheme: Scheme::Https, host, port: 443 }
    }

    /// An origin with an explicit scheme and port.
    pub fn new(scheme: Scheme, host: DomainName, port: u16) -> Self {
        Origin { scheme, host, port }
    }

    /// Parse `scheme://host[:port]`.
    pub fn parse(input: &str) -> Option<Origin> {
        let (scheme, rest) = input.split_once("://")?;
        let scheme = match scheme {
            "http" => Scheme::Http,
            "https" => Scheme::Https,
            _ => return None,
        };
        let rest = rest.split('/').next().unwrap_or(rest);
        let (host, port) = match rest.rsplit_once(':') {
            Some((h, p)) if p.chars().all(|c| c.is_ascii_digit()) && !p.is_empty() => (h, p.parse().ok()?),
            _ => (rest, scheme.default_port()),
        };
        Some(Origin { scheme, host: DomainName::parse(host).ok()?, port })
    }

    /// `true` if `self` and `other` use the same scheme and port — a
    /// precondition for RFC 7540 §9.1.1 connection reuse.
    pub fn same_scheme_port(&self, other: &Origin) -> bool {
        self.scheme == other.scheme && self.port == other.port
    }

    /// The ASCII serialisation `scheme://host[:port]` with the default port
    /// omitted, as used in report tables.
    pub fn ascii(&self) -> String {
        if self.port == self.scheme.default_port() {
            format!("{}://{}", self.scheme, self.host)
        } else {
            format!("{}://{}:{}", self.scheme, self.host, self.port)
        }
    }
}

impl fmt::Display for Origin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.ascii())
    }
}

impl fmt::Debug for Origin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Origin({})", self.ascii())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> DomainName {
        DomainName::literal(s)
    }

    #[test]
    fn https_origin_defaults() {
        let o = Origin::https(d("www.example.com"));
        assert_eq!(o.port, 443);
        assert_eq!(o.scheme, Scheme::Https);
        assert_eq!(o.ascii(), "https://www.example.com");
    }

    #[test]
    fn parse_with_and_without_port() {
        let o = Origin::parse("https://cdn.example.com:8443/path/x").unwrap();
        assert_eq!(o.port, 8443);
        assert_eq!(o.host, d("cdn.example.com"));
        let p = Origin::parse("http://example.com").unwrap();
        assert_eq!(p.port, 80);
        assert_eq!(p.scheme, Scheme::Http);
        assert!(Origin::parse("ftp://example.com").is_none());
        assert!(Origin::parse("nonsense").is_none());
    }

    #[test]
    fn scheme_port_comparison() {
        let a = Origin::https(d("a.example.com"));
        let b = Origin::https(d("b.example.com"));
        let c = Origin::new(Scheme::Https, d("c.example.com"), 8443);
        assert!(a.same_scheme_port(&b));
        assert!(!a.same_scheme_port(&c));
    }

    #[test]
    fn display_omits_default_port() {
        let a = Origin::https(d("x.example.org"));
        assert_eq!(a.to_string(), "https://x.example.org");
        let b = Origin::new(Scheme::Https, d("x.example.org"), 444);
        assert_eq!(b.to_string(), "https://x.example.org:444");
    }
}
