//! Web origins.
//!
//! The paper attributes redundant connections to "origins" — the
//! scheme/host/port triple of the connection's initially requested resource
//! (Table 2, Table 12). [`Origin`] captures that triple; the default scheme
//! and port follow the measurement setup (HTTPS, 443), since only TLS
//! connections participate in HTTP/2 Connection Reuse.
//!
//! With [`crate::DomainName`] interned, `Origin` is a 32-byte `Copy` value;
//! [`OriginId`] additionally packs the whole triple into one `u64` (interned
//! host id, port, scheme) for code that wants a single-word key.

use crate::domain::DomainName;
use crate::intern::DomainId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// URL scheme of an origin. The simulation only ever speaks `https` (HTTP/2
/// Connection Reuse requires TLS), but `http` is kept so that HAR
/// inconsistency injection can produce the HTTP/1-over-cleartext requests the
/// paper filters out.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum Scheme {
    /// Cleartext HTTP.
    Http,
    /// HTTP over TLS.
    Https,
}

impl Scheme {
    /// The default port for the scheme.
    pub const fn default_port(self) -> u16 {
        match self {
            Scheme::Http => 80,
            Scheme::Https => 443,
        }
    }

    /// Canonical textual form.
    pub const fn as_str(self) -> &'static str {
        match self {
            Scheme::Http => "http",
            Scheme::Https => "https",
        }
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A web origin: scheme, host and port. `Copy` — the host is an interned
/// [`DomainName`] handle.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Origin {
    /// URL scheme.
    pub scheme: Scheme,
    /// Host name.
    pub host: DomainName,
    /// TCP port.
    pub port: u16,
}

/// The whole origin triple packed into a single copyable word:
/// `[interned host id:32][port:16][scheme:8][reserved:8]`.
///
/// Two `OriginId`s are equal iff scheme, canonical host and port are all
/// equal. Like [`DomainId`], the packed value embeds a first-touch-ordered
/// intern index — use it as a key, never as a sort criterion.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct OriginId(u64);

impl OriginId {
    fn pack(scheme: Scheme, host: DomainId, port: u16) -> Self {
        let scheme_bits = match scheme {
            Scheme::Http => 0u64,
            Scheme::Https => 1u64,
        };
        OriginId((u64::from(host.index()) << 32) | (u64::from(port) << 16) | (scheme_bits << 8))
    }

    /// The interned host id.
    pub fn host(self) -> DomainId {
        // The upper 32 bits were produced from a live DomainId, so the
        // reconstruction below cannot index out of the intern table.
        DomainId::from_index((self.0 >> 32) as u32)
    }

    /// The TCP port.
    pub const fn port(self) -> u16 {
        (self.0 >> 16) as u16
    }

    /// The URL scheme.
    pub const fn scheme(self) -> Scheme {
        if (self.0 >> 8) & 0xff == 0 {
            Scheme::Http
        } else {
            Scheme::Https
        }
    }

    /// Rebuild the full [`Origin`] value.
    pub fn resolve(self) -> Origin {
        Origin { scheme: self.scheme(), host: self.host().resolve(), port: self.port() }
    }

    /// The raw packed word (diagnostics only).
    pub const fn packed(self) -> u64 {
        self.0
    }
}

impl fmt::Display for OriginId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.resolve())
    }
}

impl fmt::Debug for OriginId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "OriginId({})", self.resolve())
    }
}

impl Origin {
    /// An `https://host:443` origin — the common case throughout the study.
    pub fn https(host: DomainName) -> Self {
        Origin { scheme: Scheme::Https, host, port: 443 }
    }

    /// An origin with an explicit scheme and port.
    pub fn new(scheme: Scheme, host: DomainName, port: u16) -> Self {
        Origin { scheme, host, port }
    }

    /// The packed single-word id of this origin.
    pub fn id(&self) -> OriginId {
        OriginId::pack(self.scheme, self.host.id(), self.port)
    }

    /// Parse `scheme://host[:port]`.
    pub fn parse(input: &str) -> Option<Origin> {
        let (scheme, rest) = input.split_once("://")?;
        let scheme = match scheme {
            "http" => Scheme::Http,
            "https" => Scheme::Https,
            _ => return None,
        };
        let rest = rest.split('/').next().unwrap_or(rest);
        let (host, port) = match rest.rsplit_once(':') {
            Some((h, p)) if p.chars().all(|c| c.is_ascii_digit()) && !p.is_empty() => (h, p.parse().ok()?),
            _ => (rest, scheme.default_port()),
        };
        Some(Origin { scheme, host: DomainName::parse(host).ok()?, port })
    }

    /// `true` if `self` and `other` use the same scheme and port — a
    /// precondition for RFC 7540 §9.1.1 connection reuse.
    pub fn same_scheme_port(&self, other: &Origin) -> bool {
        self.scheme == other.scheme && self.port == other.port
    }

    /// The ASCII serialisation `scheme://host[:port]` with the default port
    /// omitted, as used in report tables.
    pub fn ascii(&self) -> String {
        if self.port == self.scheme.default_port() {
            format!("{}://{}", self.scheme, self.host)
        } else {
            format!("{}://{}:{}", self.scheme, self.host, self.port)
        }
    }
}

impl fmt::Display for Origin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.ascii())
    }
}

impl fmt::Debug for Origin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Origin({})", self.ascii())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> DomainName {
        DomainName::literal(s)
    }

    #[test]
    fn https_origin_defaults() {
        let o = Origin::https(d("www.example.com"));
        assert_eq!(o.port, 443);
        assert_eq!(o.scheme, Scheme::Https);
        assert_eq!(o.ascii(), "https://www.example.com");
    }

    #[test]
    fn parse_with_and_without_port() {
        let o = Origin::parse("https://cdn.example.com:8443/path/x").unwrap();
        assert_eq!(o.port, 8443);
        assert_eq!(o.host, d("cdn.example.com"));
        let p = Origin::parse("http://example.com").unwrap();
        assert_eq!(p.port, 80);
        assert_eq!(p.scheme, Scheme::Http);
        assert!(Origin::parse("ftp://example.com").is_none());
        assert!(Origin::parse("nonsense").is_none());
    }

    #[test]
    fn scheme_port_comparison() {
        let a = Origin::https(d("a.example.com"));
        let b = Origin::https(d("b.example.com"));
        let c = Origin::new(Scheme::Https, d("c.example.com"), 8443);
        assert!(a.same_scheme_port(&b));
        assert!(!a.same_scheme_port(&c));
    }

    #[test]
    fn display_omits_default_port() {
        let a = Origin::https(d("x.example.org"));
        assert_eq!(a.to_string(), "https://x.example.org");
        let b = Origin::new(Scheme::Https, d("x.example.org"), 444);
        assert_eq!(b.to_string(), "https://x.example.org:444");
    }

    #[test]
    fn origin_id_roundtrips_the_triple() {
        for origin in [
            Origin::https(d("packed.example.com")),
            Origin::new(Scheme::Http, d("packed.example.com"), 80),
            Origin::new(Scheme::Https, d("packed.example.org"), 8443),
        ] {
            let id = origin.id();
            assert_eq!(id.resolve(), origin);
            assert_eq!(id.port(), origin.port);
            assert_eq!(id.scheme(), origin.scheme);
            assert_eq!(id.host(), origin.host.id());
            assert_eq!(id.to_string(), origin.to_string());
        }
    }

    #[test]
    fn origin_ids_compare_like_origins() {
        let a = Origin::https(d("id-cmp.example.com"));
        let b = Origin::https(d("ID-CMP.example.com"));
        let c = Origin::new(Scheme::Https, d("id-cmp.example.com"), 444);
        assert_eq!(a.id(), b.id());
        assert_ne!(a.id(), c.id());
    }
}
