//! Simulated time.
//!
//! The measurement pipeline reasons about connection lifetimes ("median
//! lifetime of 122.2 s", endless vs. immediate duration models) and the DNS
//! probe queries resolvers "every 6 minutes over several days". All of that
//! runs on a deterministic simulated clock: [`Instant`] is a millisecond
//! offset from the start of a simulation, [`Duration`] is a millisecond span,
//! and [`SimClock`] is a monotonically advancing clock handed around by the
//! drivers.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A span of simulated time with millisecond resolution.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Duration {
    millis: u64,
}

impl Duration {
    /// Zero-length duration.
    pub const ZERO: Duration = Duration { millis: 0 };

    /// Construct from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        Duration { millis }
    }

    /// Construct from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Duration { millis: secs * 1000 }
    }

    /// Construct from whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        Duration::from_secs(mins * 60)
    }

    /// Construct from whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        Duration::from_mins(hours * 60)
    }

    /// Construct from whole days.
    pub const fn from_days(days: u64) -> Self {
        Duration::from_hours(days * 24)
    }

    /// The duration in milliseconds.
    pub const fn as_millis(&self) -> u64 {
        self.millis
    }

    /// The duration in (fractional) seconds.
    pub fn as_secs_f64(&self) -> f64 {
        self.millis as f64 / 1000.0
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, other: Duration) -> Duration {
        Duration { millis: self.millis.saturating_sub(other.millis) }
    }

    /// Multiply by an integer factor.
    pub const fn times(self, factor: u64) -> Duration {
        Duration { millis: self.millis * factor }
    }

    /// Multiply by an integer factor, saturating at the representable
    /// maximum (aggregate cost accounting multiplies RTTs by campaign-wide
    /// round-trip counts, which must not wrap).
    pub const fn saturating_mul(self, factor: u64) -> Duration {
        Duration { millis: self.millis.saturating_mul(factor) }
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.millis.is_multiple_of(1000) {
            write!(f, "{}s", self.millis / 1000)
        } else {
            write!(f, "{}ms", self.millis)
        }
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Duration({self})")
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration { millis: self.millis + rhs.millis }
    }
}

/// A point in simulated time, measured from the simulation epoch.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Instant {
    millis: u64,
}

impl Instant {
    /// The simulation epoch (t = 0).
    pub const EPOCH: Instant = Instant { millis: 0 };

    /// Construct from a millisecond offset from the epoch.
    pub const fn from_millis(millis: u64) -> Self {
        Instant { millis }
    }

    /// Millisecond offset from the epoch.
    pub const fn as_millis(&self) -> u64 {
        self.millis
    }

    /// Elapsed time since `earlier`; zero if `earlier` is in the future.
    pub const fn since(&self, earlier: Instant) -> Duration {
        Duration { millis: self.millis.saturating_sub(earlier.millis) }
    }
}

impl fmt::Display for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}ms", self.millis)
    }
}

impl fmt::Debug for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Instant({self})")
    }
}

impl Add<Duration> for Instant {
    type Output = Instant;
    fn add(self, rhs: Duration) -> Instant {
        Instant { millis: self.millis + rhs.as_millis() }
    }
}

impl AddAssign<Duration> for Instant {
    fn add_assign(&mut self, rhs: Duration) {
        self.millis += rhs.as_millis();
    }
}

impl Sub<Instant> for Instant {
    type Output = Duration;
    fn sub(self, rhs: Instant) -> Duration {
        self.since(rhs)
    }
}

/// A monotonically advancing simulated clock.
///
/// Drivers (the browser page loader, the DNS probe) own a `SimClock` and
/// advance it explicitly; every recorded event carries the `Instant` read from
/// the clock, making entire runs reproducible.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimClock {
    now: Instant,
}

impl SimClock {
    /// A clock starting at the simulation epoch.
    pub fn new() -> Self {
        SimClock { now: Instant::EPOCH }
    }

    /// A clock starting at an arbitrary instant (used when replaying traces).
    pub fn starting_at(now: Instant) -> Self {
        SimClock { now }
    }

    /// The current simulated time.
    pub fn now(&self) -> Instant {
        self.now
    }

    /// Advance the clock by `d` and return the new time.
    pub fn advance(&mut self, d: Duration) -> Instant {
        self.now += d;
        self.now
    }

    /// Jump the clock forward to `target`; ignored if `target` is in the past
    /// (the clock never moves backwards).
    pub fn advance_to(&mut self, target: Instant) -> Instant {
        if target > self.now {
            self.now = target;
        }
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_compose() {
        assert_eq!(Duration::from_secs(2).as_millis(), 2000);
        assert_eq!(Duration::from_mins(3), Duration::from_secs(180));
        assert_eq!(Duration::from_hours(1), Duration::from_mins(60));
        assert_eq!(Duration::from_days(2), Duration::from_hours(48));
        assert_eq!(Duration::from_secs(1) + Duration::from_millis(500), Duration::from_millis(1500));
        assert_eq!(Duration::from_secs(5).times(3), Duration::from_secs(15));
        assert_eq!(Duration::from_secs(5).saturating_mul(3), Duration::from_secs(15));
        assert_eq!(Duration::from_millis(u64::MAX / 2).saturating_mul(4), Duration::from_millis(u64::MAX));
    }

    #[test]
    fn instant_arithmetic() {
        let t0 = Instant::EPOCH;
        let t1 = t0 + Duration::from_secs(10);
        assert_eq!(t1.as_millis(), 10_000);
        assert_eq!(t1 - t0, Duration::from_secs(10));
        assert_eq!(t0 - t1, Duration::ZERO);
        assert_eq!(t1.since(t0).as_secs_f64(), 10.0);
    }

    #[test]
    fn clock_is_monotonic() {
        let mut clock = SimClock::new();
        assert_eq!(clock.now(), Instant::EPOCH);
        clock.advance(Duration::from_secs(1));
        clock.advance_to(Instant::from_millis(500));
        assert_eq!(clock.now().as_millis(), 1000);
        clock.advance_to(Instant::from_millis(5000));
        assert_eq!(clock.now().as_millis(), 5000);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Duration::from_secs(122).to_string(), "122s");
        assert_eq!(Duration::from_millis(1500).to_string(), "1500ms");
        assert_eq!(Instant::from_millis(42).to_string(), "t+42ms");
    }
}
