//! The mitigation model: the deployable fixes the paper's conclusion (§7)
//! proposes against redundant connections, as a small composable vocabulary.
//!
//! Each [`Mitigation`] names one deployment change; a [`MitigationSet`] is any
//! combination of them. The set lives here, in the shared-vocabulary crate,
//! because the individual mitigations plug into different layers of the
//! stack:
//!
//! | mitigation | layer it changes |
//! |---|---|
//! | [`Mitigation::OriginFrames`] | `netsim-h2` reuse policy + `netsim-browser` servers |
//! | [`Mitigation::SynchronizedDns`] | `netsim-dns` load balancing + `netsim-web` deployments |
//! | [`Mitigation::CertificateCoalescing`] | `netsim-tls` issuance + `netsim-web` certificate groups |
//! | [`Mitigation::CredentialPooling`] | `netsim-h2` reuse policy (collapses the `netsim-fetch` credentials partition) |
//!
//! The experiment harness sweeps all 2^4 = 16 combinations and reports the
//! marginal and combined redundancy reduction of each mitigation.

use serde::{Deserialize, Serialize};

/// One deployable mitigation against redundant HTTP/2 connections.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Mitigation {
    /// Servers announce RFC 8336 ORIGIN frames listing the exact DNS names of
    /// their certificate, and clients let origin-set membership substitute
    /// for the IP-equality check — dissolving the paper's `IP` cause where
    /// certificates already span the sharded domains.
    OriginFrames,
    /// Providers synchronize their DNS load balancing (shared CNAME /
    /// anycast-style): co-hosted domains resolve to the *same* pool member
    /// for a given resolver and epoch, so the RFC 7540 IP check succeeds.
    SynchronizedDns,
    /// Operators coalesce their per-domain certificates into one certificate
    /// covering every shard, removing the `CERT` cause.
    CertificateCoalescing,
    /// Clients stop partitioning the HTTP/2 session pool by the Fetch
    /// credentials flag (the paper's patched-Chromium run), removing the
    /// `CRED` cause.
    CredentialPooling,
}

impl Mitigation {
    /// All mitigations in canonical (bit) order.
    pub const ALL: [Mitigation; 4] = [
        Mitigation::OriginFrames,
        Mitigation::SynchronizedDns,
        Mitigation::CertificateCoalescing,
        Mitigation::CredentialPooling,
    ];

    /// The bit this mitigation occupies in a [`MitigationSet`].
    pub fn bit(self) -> u8 {
        match self {
            Mitigation::OriginFrames => 1 << 0,
            Mitigation::SynchronizedDns => 1 << 1,
            Mitigation::CertificateCoalescing => 1 << 2,
            Mitigation::CredentialPooling => 1 << 3,
        }
    }

    /// Short report label.
    pub fn label(self) -> &'static str {
        match self {
            Mitigation::OriginFrames => "ORIGIN",
            Mitigation::SynchronizedDns => "SYNC-DNS",
            Mitigation::CertificateCoalescing => "COALESCE-CERT",
            Mitigation::CredentialPooling => "POOL-CRED",
        }
    }

    /// One-line description for report footers.
    pub fn description(self) -> &'static str {
        match self {
            Mitigation::OriginFrames => "servers announce RFC 8336 ORIGIN frames and clients honour them",
            Mitigation::SynchronizedDns => "providers synchronize DNS answers across co-hosted domains",
            Mitigation::CertificateCoalescing => "operators merge per-shard certificates into one",
            Mitigation::CredentialPooling => "clients drop the Fetch credentials pool partition",
        }
    }
}

impl std::fmt::Display for Mitigation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A combination of [`Mitigation`]s, stored as a 4-bit set.
///
/// The empty set models the measured web (no mitigation deployed); the full
/// set is the paper's best case. [`MitigationSet::all_combinations`]
/// enumerates the whole 2^4 grid in a stable order, which the sweep engine
/// relies on for deterministic sharding.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MitigationSet {
    bits: u8,
}

impl MitigationSet {
    /// Number of distinct combinations (2^4).
    pub const COMBINATIONS: usize = 16;

    /// No mitigation deployed — the measured web.
    pub fn empty() -> Self {
        MitigationSet { bits: 0 }
    }

    /// Every mitigation deployed at once.
    pub fn all() -> Self {
        Mitigation::ALL.iter().fold(MitigationSet::empty(), |set, m| set.with(*m))
    }

    /// The set containing exactly one mitigation.
    pub fn single(mitigation: Mitigation) -> Self {
        MitigationSet::empty().with(mitigation)
    }

    /// Reconstruct a set from its bit representation (extra bits are masked).
    pub fn from_bits(bits: u8) -> Self {
        MitigationSet { bits: bits & 0b1111 }
    }

    /// The bit representation (0..16), also the set's grid index.
    pub fn bits(self) -> u8 {
        self.bits
    }

    /// `true` if `mitigation` is in the set.
    pub fn contains(self, mitigation: Mitigation) -> bool {
        self.bits & mitigation.bit() != 0
    }

    /// The set plus `mitigation`.
    #[must_use]
    pub fn with(self, mitigation: Mitigation) -> Self {
        MitigationSet { bits: self.bits | mitigation.bit() }
    }

    /// The set minus `mitigation`.
    #[must_use]
    pub fn without(self, mitigation: Mitigation) -> Self {
        MitigationSet { bits: self.bits & !mitigation.bit() }
    }

    /// `true` for the empty set.
    pub fn is_empty(self) -> bool {
        self.bits == 0
    }

    /// Number of mitigations in the set.
    pub fn len(self) -> usize {
        self.bits.count_ones() as usize
    }

    /// `true` if every mitigation of `self` is also in `other`.
    pub fn is_subset_of(self, other: MitigationSet) -> bool {
        self.bits & other.bits == self.bits
    }

    /// The mitigations in the set, in canonical order.
    pub fn iter(self) -> impl Iterator<Item = Mitigation> {
        Mitigation::ALL.into_iter().filter(move |m| self.contains(*m))
    }

    /// Every combination, ordered by bit value: index 0 is the empty set,
    /// index 15 the full set. Stable across runs — the sweep grid order.
    pub fn all_combinations() -> Vec<MitigationSet> {
        (0..Self::COMBINATIONS as u8).map(MitigationSet::from_bits).collect()
    }

    /// Report label: `"none"` for the empty set, otherwise the `+`-joined
    /// mitigation labels (e.g. `"ORIGIN+SYNC-DNS"`).
    pub fn label(self) -> String {
        if self.is_empty() {
            "none".to_string()
        } else {
            self.iter().map(Mitigation::label).collect::<Vec<_>>().join("+")
        }
    }
}

impl std::fmt::Display for MitigationSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_operations_round_trip() {
        let set = MitigationSet::empty().with(Mitigation::OriginFrames).with(Mitigation::CredentialPooling);
        assert!(set.contains(Mitigation::OriginFrames));
        assert!(set.contains(Mitigation::CredentialPooling));
        assert!(!set.contains(Mitigation::SynchronizedDns));
        assert_eq!(set.len(), 2);
        assert_eq!(set.without(Mitigation::OriginFrames).len(), 1);
        assert_eq!(MitigationSet::from_bits(set.bits()), set);
        assert_eq!(set.label(), "ORIGIN+POOL-CRED");
        assert_eq!(MitigationSet::empty().label(), "none");
    }

    #[test]
    fn all_combinations_cover_the_grid_in_order() {
        let combos = MitigationSet::all_combinations();
        assert_eq!(combos.len(), MitigationSet::COMBINATIONS);
        assert_eq!(combos[0], MitigationSet::empty());
        assert_eq!(combos[15], MitigationSet::all());
        for (index, combo) in combos.iter().enumerate() {
            assert_eq!(combo.bits() as usize, index);
        }
        // Every singleton appears.
        for m in Mitigation::ALL {
            assert!(combos.contains(&MitigationSet::single(m)));
        }
    }

    #[test]
    fn subset_relation_matches_bits() {
        let small = MitigationSet::single(Mitigation::SynchronizedDns);
        let large = small.with(Mitigation::CertificateCoalescing);
        assert!(small.is_subset_of(large));
        assert!(!large.is_subset_of(small));
        assert!(MitigationSet::empty().is_subset_of(small));
        assert!(large.is_subset_of(MitigationSet::all()));
    }

    #[test]
    fn bits_are_distinct_and_canonical() {
        let mut seen = std::collections::BTreeSet::new();
        for m in Mitigation::ALL {
            assert!(seen.insert(m.bit()));
            assert!(!m.label().is_empty());
            assert!(!m.description().is_empty());
        }
        assert_eq!(MitigationSet::all().bits(), 0b1111);
    }
}
