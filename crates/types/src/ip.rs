//! IPv4 addresses and prefixes.
//!
//! The paper's `IP` cause hinges on whether two DNS answers point to the same
//! destination address, and its analysis repeatedly reasons about "slightly
//! different IPs in the same /24 network". The simulation therefore needs a
//! small, dependency-free address type with prefix math (containment, /24
//! neighbourhood, iteration) rather than `std::net::Ipv4Addr` plus ad-hoc bit
//! twiddling scattered across crates.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// An IPv4 address stored as a host-order `u32`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct IpAddr(pub u32);

impl IpAddr {
    /// Build an address from its four dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        IpAddr(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// The four octets, most significant first.
    pub const fn octets(self) -> [u8; 4] {
        [(self.0 >> 24) as u8, (self.0 >> 16) as u8, (self.0 >> 8) as u8, self.0 as u8]
    }

    /// The enclosing /24 prefix — the granularity at which the paper observes
    /// load-balanced "slightly different IPs".
    pub const fn slash24(self) -> Prefix {
        Prefix { base: IpAddr(self.0 & 0xFFFF_FF00), len: 24 }
    }

    /// The enclosing prefix of arbitrary length.
    pub fn prefix(self, len: u8) -> Prefix {
        Prefix::new(self, len)
    }

    /// The address `offset` hosts above this one (wrapping).
    pub const fn offset(self, offset: u32) -> IpAddr {
        IpAddr(self.0.wrapping_add(offset))
    }

    /// `true` if both addresses fall into the same /24.
    pub fn same_slash24(self, other: IpAddr) -> bool {
        self.slash24() == other.slash24()
    }
}

impl fmt::Display for IpAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.octets();
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

impl fmt::Debug for IpAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IpAddr({self})")
    }
}

/// Errors from parsing dotted-quad / CIDR text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IpParseError {
    /// The dotted-quad part was malformed.
    BadAddress(String),
    /// The prefix length was missing, non-numeric or > 32.
    BadPrefixLength(String),
}

impl fmt::Display for IpParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpParseError::BadAddress(s) => write!(f, "invalid IPv4 address: {s:?}"),
            IpParseError::BadPrefixLength(s) => write!(f, "invalid prefix length: {s:?}"),
        }
    }
}

impl std::error::Error for IpParseError {}

impl FromStr for IpAddr {
    type Err = IpParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.trim().split('.').collect();
        if parts.len() != 4 {
            return Err(IpParseError::BadAddress(s.to_string()));
        }
        let mut octets = [0u8; 4];
        for (i, part) in parts.iter().enumerate() {
            octets[i] = part.parse::<u8>().map_err(|_| IpParseError::BadAddress(s.to_string()))?;
        }
        Ok(IpAddr::new(octets[0], octets[1], octets[2], octets[3]))
    }
}

/// An IPv4 CIDR prefix, e.g. `142.250.74.0/24`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Prefix {
    base: IpAddr,
    len: u8,
}

impl Prefix {
    /// Create a prefix, masking the base address down to `len` bits.
    pub fn new(base: IpAddr, len: u8) -> Self {
        let len = len.min(32);
        Prefix { base: IpAddr(base.0 & Self::mask(len)), len }
    }

    const fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len as u32)
        }
    }

    /// The (masked) network address.
    pub const fn base(&self) -> IpAddr {
        self.base
    }

    /// The prefix length in bits.
    ///
    /// This is a CIDR mask length, not a container length, so there is no
    /// matching `is_empty`.
    #[allow(clippy::len_without_is_empty)]
    pub const fn len(&self) -> u8 {
        self.len
    }

    /// Number of addresses covered by the prefix.
    pub const fn size(&self) -> u64 {
        1u64 << (32 - self.len as u32)
    }

    /// `true` if `addr` falls within the prefix.
    pub fn contains(&self, addr: IpAddr) -> bool {
        (addr.0 & Self::mask(self.len)) == self.base.0
    }

    /// `true` if `other` is fully covered by `self`.
    pub fn covers(&self, other: &Prefix) -> bool {
        other.len >= self.len && self.contains(other.base)
    }

    /// The `i`-th host address inside the prefix (wrapping within the prefix).
    pub fn host(&self, i: u64) -> IpAddr {
        IpAddr(self.base.0 + (i % self.size()) as u32)
    }

    /// Split the prefix into consecutive sub-prefixes of length `sub_len`.
    pub fn subnets(&self, sub_len: u8) -> Vec<Prefix> {
        let sub_len = sub_len.clamp(self.len, 32);
        let count = 1u64 << (sub_len - self.len) as u32;
        (0..count)
            .map(|i| Prefix::new(IpAddr(self.base.0 + (i << (32 - sub_len as u32)) as u32), sub_len))
            .collect()
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.base, self.len)
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Prefix({self})")
    }
}

impl FromStr for Prefix {
    type Err = IpParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s.split_once('/').ok_or_else(|| IpParseError::BadPrefixLength(s.to_string()))?;
        let base: IpAddr = addr.parse()?;
        let len: u8 = len.parse().map_err(|_| IpParseError::BadPrefixLength(s.to_string()))?;
        if len > 32 {
            return Err(IpParseError::BadPrefixLength(s.to_string()));
        }
        Ok(Prefix::new(base, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn octet_roundtrip_and_display() {
        let ip = IpAddr::new(142, 250, 74, 14);
        assert_eq!(ip.octets(), [142, 250, 74, 14]);
        assert_eq!(ip.to_string(), "142.250.74.14");
        assert_eq!("142.250.74.14".parse::<IpAddr>().unwrap(), ip);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!("1.2.3".parse::<IpAddr>().is_err());
        assert!("1.2.3.256".parse::<IpAddr>().is_err());
        assert!("a.b.c.d".parse::<IpAddr>().is_err());
        assert!("10.0.0.0/33".parse::<Prefix>().is_err());
        assert!("10.0.0.0".parse::<Prefix>().is_err());
    }

    #[test]
    fn slash24_grouping() {
        let a = IpAddr::new(142, 250, 74, 14);
        let b = IpAddr::new(142, 250, 74, 206);
        let c = IpAddr::new(142, 250, 75, 14);
        assert!(a.same_slash24(b));
        assert!(!a.same_slash24(c));
        assert_eq!(a.slash24().to_string(), "142.250.74.0/24");
    }

    #[test]
    fn prefix_contains_and_covers() {
        let p: Prefix = "10.20.0.0/16".parse().unwrap();
        assert!(p.contains(IpAddr::new(10, 20, 200, 1)));
        assert!(!p.contains(IpAddr::new(10, 21, 0, 1)));
        let q: Prefix = "10.20.30.0/24".parse().unwrap();
        assert!(p.covers(&q));
        assert!(!q.covers(&p));
        assert_eq!(p.size(), 65536);
    }

    #[test]
    fn prefix_hosts_and_subnets() {
        let p: Prefix = "192.0.2.0/24".parse().unwrap();
        assert_eq!(p.host(0), IpAddr::new(192, 0, 2, 0));
        assert_eq!(p.host(255), IpAddr::new(192, 0, 2, 255));
        assert_eq!(p.host(256), IpAddr::new(192, 0, 2, 0));
        let subs = p.subnets(26);
        assert_eq!(subs.len(), 4);
        assert_eq!(subs[1].base(), IpAddr::new(192, 0, 2, 64));
    }

    #[test]
    fn prefix_normalises_base() {
        let p = Prefix::new(IpAddr::new(10, 0, 0, 77), 24);
        assert_eq!(p.base(), IpAddr::new(10, 0, 0, 0));
    }
}
