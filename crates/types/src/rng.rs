//! Deterministic, fork-able randomness.
//!
//! Every stochastic decision in the simulation — which third-party services a
//! generated site embeds, which address a load-balanced DNS answer returns,
//! which HAR entries get corrupted — flows from a single seed through
//! [`SimRng`]. Forking (`fork("dns")`, `fork_indexed("site", 42)`) derives
//! independent sub-streams keyed by a label so that adding randomness in one
//! subsystem does not perturb another, keeping experiment outputs stable
//! across refactorings.

use rand::distributions::uniform::{SampleRange, SampleUniform};
use rand::seq::SliceRandom;
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha12Rng;

/// A seedable pseudo-random generator with labelled forking.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: ChaCha12Rng,
    seed: u64,
}

impl SimRng {
    /// Create a generator from a root seed.
    pub fn new(seed: u64) -> Self {
        SimRng { inner: ChaCha12Rng::seed_from_u64(seed), seed }
    }

    /// The seed this generator (or fork) was derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent generator for the subsystem named `label`.
    pub fn fork(&self, label: &str) -> SimRng {
        let derived = splitmix(self.seed ^ fnv1a(label.as_bytes()));
        SimRng::new(derived)
    }

    /// Derive an independent generator for the `index`-th element of the
    /// subsystem named `label` (e.g. one stream per generated site).
    pub fn fork_indexed(&self, label: &str, index: u64) -> SimRng {
        let derived =
            splitmix(self.seed ^ fnv1a(label.as_bytes()) ^ splitmix(index.wrapping_add(0x9E37_79B9)));
        SimRng::new(derived)
    }

    /// A uniformly distributed value in `range`.
    pub fn in_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        self.inner.gen_range(range)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.inner.gen::<f64>() < p
    }

    /// `true` with probability `ppm` parts per million. A rate of `0`
    /// consumes **no** randomness (so processes that are switched off leave
    /// every other stream untouched); any nonzero rate consumes exactly one
    /// integer draw. Rates at or above 1 000 000 always fire.
    pub fn chance_ppm(&mut self, ppm: u32) -> bool {
        if ppm == 0 {
            return false;
        }
        self.inner.gen_range(0..1_000_000u32) < ppm
    }

    /// A uniform f64 in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Pick a reference to a uniformly random element, or `None` if empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        items.choose(&mut self.inner)
    }

    /// Pick an index according to the given (not necessarily normalised)
    /// weights. Returns `None` if `weights` is empty or sums to zero.
    pub fn pick_weighted_index(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().copied().filter(|w| *w > 0.0).sum();
        if weights.is_empty() || total <= 0.0 {
            return None;
        }
        let mut target = self.inner.gen::<f64>() * total;
        for (i, w) in weights.iter().enumerate() {
            if *w <= 0.0 {
                continue;
            }
            if target < *w {
                return Some(i);
            }
            target -= *w;
        }
        // Floating-point slack: fall back to the last positive-weight index.
        weights.iter().rposition(|w| *w > 0.0)
    }

    /// Shuffle a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        items.shuffle(&mut self.inner);
    }

    /// A sample from a (truncated at zero) normal-ish distribution built from
    /// the sum of uniform variates — good enough for latency jitter.
    pub fn jitter(&mut self, mean: f64, spread: f64) -> f64 {
        let sum: f64 = (0..4).map(|_| self.inner.gen::<f64>()).sum::<f64>() / 4.0; // ~N(0.5, .)
        (mean + (sum - 0.5) * 2.0 * spread).max(0.0)
    }

    /// A sample from a discrete Zipf-like distribution over `n` ranks with
    /// exponent `s` (rank 0 is most popular). Used for popularity skew in the
    /// web-population generator.
    pub fn zipf(&mut self, n: usize, s: f64) -> usize {
        if n <= 1 {
            return 0;
        }
        let weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).collect();
        self.pick_weighted_index(&weights).unwrap_or(0)
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

/// FNV-1a hash of a byte string, used to turn fork labels into seed material.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash ^= *b as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

/// SplitMix64 finaliser, used to decorrelate derived seeds.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn different_forks_are_independent() {
        let root = SimRng::new(7);
        let mut dns = root.fork("dns");
        let mut web = root.fork("web");
        assert_ne!(dns.next_u64(), web.next_u64());
        let mut site0 = root.fork_indexed("site", 0);
        let mut site1 = root.fork_indexed("site", 1);
        assert_ne!(site0.next_u64(), site1.next_u64());
        // forking is a pure function of (seed, label)
        let mut dns2 = root.fork("dns");
        assert_eq!(SimRng::new(7).fork("dns").next_u64(), dns2.next_u64());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(1);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }

    #[test]
    fn chance_ppm_zero_consumes_no_randomness() {
        let mut with_zero = SimRng::new(17);
        let mut without = SimRng::new(17);
        for _ in 0..8 {
            assert!(!with_zero.chance_ppm(0));
        }
        // The zero-rate path must leave the stream exactly where it started.
        assert_eq!(with_zero.next_u64(), without.next_u64());
        // Extremes behave like the f64 `chance` counterpart.
        let mut rng = SimRng::new(17);
        assert!((0..100).all(|_| rng.chance_ppm(1_000_000)));
        assert!((0..100).all(|_| rng.chance_ppm(2_000_000)));
    }

    #[test]
    fn chance_ppm_tracks_the_rate_roughly() {
        let mut rng = SimRng::new(23);
        let hits = (0..20_000).filter(|_| rng.chance_ppm(100_000)).count();
        assert!((1_400..=2_600).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn weighted_pick_respects_zero_weights() {
        let mut rng = SimRng::new(3);
        for _ in 0..200 {
            let idx = rng.pick_weighted_index(&[0.0, 1.0, 0.0]).unwrap();
            assert_eq!(idx, 1);
        }
        assert_eq!(rng.pick_weighted_index(&[]), None);
        assert_eq!(rng.pick_weighted_index(&[0.0, 0.0]), None);
    }

    #[test]
    fn weighted_pick_follows_weights_roughly() {
        let mut rng = SimRng::new(11);
        let mut counts = [0usize; 2];
        for _ in 0..2000 {
            counts[rng.pick_weighted_index(&[3.0, 1.0]).unwrap()] += 1;
        }
        assert!(counts[0] > counts[1] * 2, "counts = {counts:?}");
    }

    #[test]
    fn zipf_prefers_low_ranks() {
        let mut rng = SimRng::new(5);
        let mut head = 0;
        for _ in 0..1000 {
            if rng.zipf(50, 1.0) < 5 {
                head += 1;
            }
        }
        assert!(head > 400, "head = {head}");
        assert_eq!(rng.zipf(1, 1.0), 0);
        assert_eq!(rng.zipf(0, 1.0), 0);
    }

    #[test]
    fn jitter_is_non_negative() {
        let mut rng = SimRng::new(9);
        for _ in 0..100 {
            assert!(rng.jitter(5.0, 20.0) >= 0.0);
        }
    }
}
