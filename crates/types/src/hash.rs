//! A small, deterministic, non-cryptographic hasher for hot-path hash maps.
//!
//! `std`'s default `HashMap` hasher (SipHash-1-3) is DoS-resistant but costs
//! tens of nanoseconds per short key — measurable when the visit loop probes
//! a DNS cache keyed by 4-byte interned domain ids millions of times. All
//! simulation inputs are generated (never attacker-controlled), so the
//! collision-flooding defence buys nothing here. [`FnvBuildHasher`] swaps in
//! FNV-1a: deterministic across runs and platforms, a handful of cycles for
//! the short keys the workspace uses.
//!
//! Determinism note: per-process hash maps built with this hasher have a
//! deterministic *iteration* order too, but nothing may rely on it — ordered
//! report output must keep coming from `BTreeMap`s, as everywhere else in
//! the workspace.

use std::hash::{BuildHasherDefault, Hasher};

/// FNV-1a hash of a byte string — the workspace's one shared definition
/// (used by the intern table, the HPACK fingerprints and DNS load-balance
/// bucketing). `const` so fingerprints of fixed strings fold at compile
/// time.
pub const fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut i = 0;
    while i < bytes.len() {
        hash ^= bytes[i] as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
        i += 1;
    }
    hash
}

/// FNV-1a streaming hasher.
#[derive(Clone, Copy, Debug, Default)]
pub struct FnvHasher(u64);

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        // A final avalanche step so sequential inputs (interned ids) spread
        // over the table instead of clustering.
        let mut x = self.0;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut hash = if self.0 == 0 { 0xcbf2_9ce4_8422_2325 } else { self.0 };
        for b in bytes {
            hash ^= *b as u64;
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        // Same per-byte step as [`fnv1a`], seeded with the running state so
        // chained writes keep mixing.
        self.0 = hash;
    }

    fn write_u32(&mut self, value: u32) {
        self.write_u64(value as u64);
    }

    fn write_u64(&mut self, value: u64) {
        // Word-at-a-time mixing: integer keys (interned ids, fingerprint
        // hashes) fold in with one multiply instead of a byte loop.
        self.0 = (self.0 ^ value).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    fn write_u16(&mut self, value: u16) {
        self.write_u64(value as u64);
    }

    fn write_u8(&mut self, value: u8) {
        self.write_u64(value as u64);
    }

    fn write_usize(&mut self, value: usize) {
        self.write_u64(value as u64);
    }
}

/// `BuildHasher` for [`FnvHasher`] — plug into `HashMap::with_hasher` or the
/// [`FnvHashMap`] alias.
pub type FnvBuildHasher = BuildHasherDefault<FnvHasher>;

/// A `HashMap` using the deterministic FNV hasher.
pub type FnvHashMap<K, V> = std::collections::HashMap<K, V, FnvBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    #[test]
    fn deterministic_across_instances() {
        let build = FnvBuildHasher::default();
        let a = build.hash_one("www.example.com");
        let b = FnvBuildHasher::default().hash_one("www.example.com");
        assert_eq!(a, b);
        assert_ne!(a, build.hash_one("www.example.org"));
    }

    #[test]
    fn map_alias_works_with_interned_keys() {
        let mut map: FnvHashMap<u32, &str> = FnvHashMap::default();
        for i in 0..1000u32 {
            map.insert(i, "x");
        }
        assert_eq!(map.len(), 1000);
        assert_eq!(map.get(&500), Some(&"x"));
        42u32.hash(&mut FnvHasher::default());
    }
}
