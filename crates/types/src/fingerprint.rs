//! Config fingerprinting for on-disk artifacts.
//!
//! A [`Fingerprint`] condenses every input that determines a deterministic
//! artifact's bytes — format schema, seeds, population shape, mitigation and
//! link-profile parameters — into one u64. Readers refuse artifacts whose
//! fingerprint does not match the config they were asked to serve, turning
//! "stale shard silently priced under the wrong model" into a typed error.
//!
//! The builder is a labelled, length-prefixed FNV-1a stream: every field is
//! hashed as `label` + separator + value bytes, so reordering fields,
//! renaming them, or concatenating two adjacent values differently all
//! produce different fingerprints. The hash is [`crate::hash::fnv1a`]'s
//! incremental form — the same function the workspace already trusts for
//! deterministic hashing — so fingerprints are stable across platforms,
//! thread counts and process runs.

/// A 64-bit digest of a labelled field stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(u64);

impl Fingerprint {
    /// The raw digest value (what shard headers store).
    pub fn value(self) -> u64 {
        self.0
    }

    /// A fingerprint from a previously stored digest value.
    pub fn from_value(value: u64) -> Self {
        Fingerprint(value)
    }

    /// Fixed-width lowercase hex, for report lines and error messages.
    pub fn hex(self) -> String {
        format!("{:016x}", self.0)
    }
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0100_0000_01b3;

/// Streaming builder for a [`Fingerprint`].
///
/// ```
/// use netsim_types::fingerprint::FingerprintBuilder;
///
/// let a = FingerprintBuilder::new("demo/v1").field_u64("seed", 7).finish();
/// let b = FingerprintBuilder::new("demo/v1").field_u64("seed", 8).finish();
/// assert_ne!(a, b);
/// // Same fields, same order => same digest, every run.
/// let c = FingerprintBuilder::new("demo/v1").field_u64("seed", 7).finish();
/// assert_eq!(a, c);
/// ```
#[derive(Clone, Debug)]
pub struct FingerprintBuilder {
    state: u64,
}

impl FingerprintBuilder {
    /// Start a stream under a domain label (e.g. `"connreuse-store/shard/v1"`)
    /// so digests from different subsystems never collide structurally.
    pub fn new(domain: &str) -> Self {
        let mut builder = FingerprintBuilder { state: FNV_OFFSET };
        builder.absorb(domain.as_bytes());
        builder
    }

    fn absorb(&mut self, bytes: &[u8]) {
        // Length prefix before the payload: "ab" + "c" never hashes like
        // "a" + "bc".
        for byte in (bytes.len() as u64).to_le_bytes() {
            self.state = (self.state ^ byte as u64).wrapping_mul(FNV_PRIME);
        }
        for &byte in bytes {
            self.state = (self.state ^ byte as u64).wrapping_mul(FNV_PRIME);
        }
    }

    fn label(&mut self, label: &str) {
        self.absorb(label.as_bytes());
    }

    /// Hash one labelled u64 field.
    pub fn field_u64(mut self, label: &str, value: u64) -> Self {
        self.label(label);
        self.absorb(&value.to_le_bytes());
        self
    }

    /// Hash one labelled f64 field via its IEEE-754 bit pattern (the same
    /// bit-stability contract the cost clock pins for its one f64).
    pub fn field_f64(mut self, label: &str, value: f64) -> Self {
        self.label(label);
        self.absorb(&value.to_bits().to_le_bytes());
        self
    }

    /// Hash one labelled string field.
    pub fn field_str(mut self, label: &str, value: &str) -> Self {
        self.label(label);
        self.absorb(value.as_bytes());
        self
    }

    /// Hash a labelled u64 sequence (order-sensitive, length-prefixed).
    pub fn field_u64_slice(mut self, label: &str, values: &[u64]) -> Self {
        self.label(label);
        self.absorb(&(values.len() as u64).to_le_bytes());
        for &value in values {
            self.absorb(&value.to_le_bytes());
        }
        self
    }

    /// Finish the stream.
    pub fn finish(self) -> Fingerprint {
        Fingerprint(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digests_are_stable_across_builders() {
        let build = || {
            FingerprintBuilder::new("test/v1")
                .field_u64("seed", 20210421)
                .field_f64("zipf", 0.35)
                .field_str("profile", "broadband")
                .field_u64_slice("mitigations", &[0, 5, 15])
                .finish()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn every_field_kind_perturbs_the_digest() {
        let base = || {
            FingerprintBuilder::new("test/v1")
                .field_u64("a", 1)
                .field_f64("b", 2.0)
                .field_str("c", "x")
                .field_u64_slice("d", &[3])
        };
        let reference = base().finish();
        assert_ne!(base().field_u64("e", 0).finish(), reference);
        assert_ne!(
            FingerprintBuilder::new("test/v1")
                .field_u64("a", 2)
                .field_f64("b", 2.0)
                .field_str("c", "x")
                .field_u64_slice("d", &[3])
                .finish(),
            reference
        );
        assert_ne!(
            FingerprintBuilder::new("test/v1")
                .field_u64("a", 1)
                .field_f64("b", 2.5)
                .field_str("c", "x")
                .field_u64_slice("d", &[3])
                .finish(),
            reference
        );
        assert_ne!(
            FingerprintBuilder::new("test/v1")
                .field_u64("a", 1)
                .field_f64("b", 2.0)
                .field_str("c", "y")
                .field_u64_slice("d", &[3])
                .finish(),
            reference
        );
        assert_ne!(
            FingerprintBuilder::new("test/v1")
                .field_u64("a", 1)
                .field_f64("b", 2.0)
                .field_str("c", "x")
                .field_u64_slice("d", &[3, 3])
                .finish(),
            reference
        );
    }

    #[test]
    fn domain_separates_otherwise_identical_streams() {
        let a = FingerprintBuilder::new("store/v1").field_u64("seed", 1).finish();
        let b = FingerprintBuilder::new("store/v2").field_u64("seed", 1).finish();
        assert_ne!(a, b);
    }

    #[test]
    fn length_prefixing_prevents_field_concatenation_collisions() {
        let joined = FingerprintBuilder::new("t").field_str("k", "ab").finish();
        let split = FingerprintBuilder::new("t").field_str("ka", "b").finish();
        assert_ne!(joined, split);
    }

    #[test]
    fn hex_renders_fixed_width() {
        let digest = Fingerprint::from_value(0x2a);
        assert_eq!(digest.hex(), "000000000000002a");
        assert_eq!(format!("{digest}"), "000000000000002a");
        assert_eq!(Fingerprint::from_value(digest.value()), digest);
    }
}
