//! Feature-gated hotpath instrumentation: stage-attributed wall-clock
//! profiling of the visit fast path.
//!
//! The bench guard sees whole-run sites/s, so a regression inside one visit
//! stage (the DNS walk, handshake pricing, HPACK encode, transfer clock,
//! classification, cost fold) surfaces only as an anonymous throughput drop.
//! This module names the stage:
//!
//! * [`Stage`] — the closed vocabulary of instrumented hot sections,
//! * [`StageStats`] / [`StageTable`] — fixed-size, `Copy`, allocation-free
//!   count/total/min/max aggregation with an associative, order-insensitive
//!   [`StageTable::merge`] (the same merge law every other shard aggregate
//!   in the workspace obeys),
//! * [`enter`] / [`stage!`](crate::stage) — an RAII scope guard that records
//!   the enclosed section's duration into a thread-local table on drop.
//!
//! ## Zero cost when disabled
//!
//! Everything that *collects* is gated on the `hotpath-profile` cargo
//! feature. With the feature off (the default), [`enter`] is an
//! `#[inline(always)]` function returning a zero-sized guard whose `Drop` is
//! empty — the optimiser erases the whole call — and the flush/take
//! functions return empty tables. The aggregation types themselves are
//! always compiled so reports, budgets and property tests share one
//! vocabulary regardless of how the binary was built.
//!
//! ## Zero allocation when enabled
//!
//! With the feature on, a guard costs two `std::time::Instant` reads and a
//! handful of integer stores into a `const`-initialised thread-local
//! [`StageTable`] — no heap traffic on any path (the zero-alloc gate in
//! `crates/browser/tests/zero_alloc.rs` runs with the feature enabled and
//! still asserts exactly zero allocations).
//!
//! ## Determinism
//!
//! Measured durations are wall-clock and therefore machine-dependent —
//! exactly like the atlas `AtlasMetrics` — so profile tables must never
//! enter a deterministic report. Collection is per-thread; workers flush
//! into the process-wide table ([`flush_local`]) at chunk boundaries, and
//! because [`StageTable::merge`] is associative and order-insensitive the
//! *counts* are thread-invariant even though the nanoseconds are not.

use serde::{Deserialize, Serialize};

/// Named hot sections of the visit fast path and its surrounding loops.
///
/// The enum is the table's index space: adding a stage grows every
/// [`StageTable`] by one fixed-size row, nothing else.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Stage {
    /// Resolving a planned request's host: cache probe, recursive walk,
    /// per-visit DNS accounting.
    DnsWalk = 0,
    /// Scanning live sessions for a pool hit or an RFC 7540 §9.1.1
    /// coalescing candidate.
    ReuseScan,
    /// Opening a connection: handshake pricing (RTTs, octets, loss carry),
    /// establishment, ORIGIN-frame receipt.
    Handshake,
    /// Encoding the request and response over the chosen session (HPACK
    /// dynamic-table work lives here).
    RequestEncode,
    /// Charging the transfer clock and folding per-request cost counters.
    TransferClock,
    /// Folding page-level costs (cold-cwnd penalty, page-load time).
    CostFold,
    /// Streaming classification of a finished visit.
    Classify,
    /// One worker chunk: generate + crawl + classify a site range. A
    /// *scaffold* stage — it envelopes the others and is excluded from
    /// share-of-measured arithmetic.
    ChunkLoop,
}

impl Stage {
    /// Number of stages (the fixed size of every [`StageTable`]).
    pub const COUNT: usize = 8;

    /// Every stage, in table order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::DnsWalk,
        Stage::ReuseScan,
        Stage::Handshake,
        Stage::RequestEncode,
        Stage::TransferClock,
        Stage::CostFold,
        Stage::Classify,
        Stage::ChunkLoop,
    ];

    /// Stable kebab-case name — the key the profile JSON, the committed
    /// budget baseline and the bench guard all agree on.
    pub fn name(self) -> &'static str {
        match self {
            Stage::DnsWalk => "dns-walk",
            Stage::ReuseScan => "reuse-scan",
            Stage::Handshake => "handshake",
            Stage::RequestEncode => "request-encode",
            Stage::TransferClock => "transfer-clock",
            Stage::CostFold => "cost-fold",
            Stage::Classify => "classify",
            Stage::ChunkLoop => "chunk-loop",
        }
    }

    /// Parse a stable name back to its stage (`None` for unknown names).
    pub fn from_name(name: &str) -> Option<Stage> {
        Stage::ALL.into_iter().find(|stage| stage.name() == name)
    }

    /// `true` for envelope stages that *contain* other stages (currently
    /// [`Stage::ChunkLoop`]). Scaffold time double-counts its interior, so
    /// it is excluded from [`StageTable::measured_total_nanos`] and the
    /// share-of-measured columns; it stays in the table because its total
    /// *is* the wall-clock bound the interior stages must sum under.
    pub fn is_scaffold(self) -> bool {
        matches!(self, Stage::ChunkLoop)
    }
}

/// Aggregated timings of one stage: how often it ran and the
/// total/min/max nanoseconds it took. `Copy`, fixed-size, heap-free.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageStats {
    /// Times the stage scope was entered.
    pub count: u64,
    /// Total nanoseconds across all entries.
    pub total_nanos: u64,
    /// Fastest single entry (0 when `count == 0`).
    pub min_nanos: u64,
    /// Slowest single entry.
    pub max_nanos: u64,
}

impl StageStats {
    /// The empty aggregate (usable in `const` / `static` contexts).
    pub const fn new() -> Self {
        StageStats { count: 0, total_nanos: 0, min_nanos: 0, max_nanos: 0 }
    }

    /// Fold one measured scope duration in.
    pub fn record(&mut self, nanos: u64) {
        self.min_nanos = if self.count == 0 { nanos } else { self.min_nanos.min(nanos) };
        self.max_nanos = self.max_nanos.max(nanos);
        self.count += 1;
        self.total_nanos = self.total_nanos.saturating_add(nanos);
    }

    /// Merge another shard's aggregate (associative, order-insensitive,
    /// with `StageStats::new()` as the identity).
    pub fn merge(&mut self, other: &StageStats) {
        if other.count == 0 {
            return;
        }
        self.min_nanos = if self.count == 0 { other.min_nanos } else { self.min_nanos.min(other.min_nanos) };
        self.max_nanos = self.max_nanos.max(other.max_nanos);
        self.count += other.count;
        self.total_nanos = self.total_nanos.saturating_add(other.total_nanos);
    }

    /// Mean nanoseconds per entry (0 when the stage never ran).
    pub fn mean_nanos(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_nanos as f64 / self.count as f64
        }
    }
}

/// The fixed-size per-worker stage table: one [`StageStats`] row per
/// [`Stage`]. `Copy` and `const`-constructible, so the thread-local
/// collector needs no lazy initialisation and no heap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StageTable {
    rows: [StageStats; Stage::COUNT],
}

impl Default for StageTable {
    fn default() -> Self {
        StageTable::new()
    }
}

impl StageTable {
    /// An empty table.
    pub const fn new() -> Self {
        StageTable { rows: [StageStats::new(); Stage::COUNT] }
    }

    /// Fold one measured duration into `stage`'s row.
    pub fn record(&mut self, stage: Stage, nanos: u64) {
        self.rows[stage as usize].record(nanos);
    }

    /// The aggregate row of one stage.
    pub fn stats(&self, stage: Stage) -> &StageStats {
        &self.rows[stage as usize]
    }

    /// Merge another table row-by-row (associative and order-insensitive,
    /// because [`StageStats::merge`] is — the shard-merge determinism
    /// contract, property-tested in `crates/types/tests/profile_merge.rs`).
    pub fn merge(&mut self, other: &StageTable) {
        for stage in Stage::ALL {
            self.rows[stage as usize].merge(other.stats(stage));
        }
    }

    /// `true` if no stage ever recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.iter().all(|row| row.count == 0)
    }

    /// Every `(stage, stats)` pair, in table order.
    pub fn iter(&self) -> impl Iterator<Item = (Stage, &StageStats)> {
        Stage::ALL.iter().map(move |&stage| (stage, self.stats(stage)))
    }

    /// Total nanoseconds across the non-scaffold stages — the denominator
    /// of every share-of-measured figure. Scaffold stages envelope the
    /// others; counting them would double every interior nanosecond.
    pub fn measured_total_nanos(&self) -> u64 {
        Stage::ALL
            .iter()
            .filter(|stage| !stage.is_scaffold())
            .fold(0u64, |sum, &stage| sum.saturating_add(self.stats(stage).total_nanos))
    }

    /// `stage`'s share of [`StageTable::measured_total_nanos`], in `[0, 1]`
    /// (0 for scaffold stages and empty tables).
    pub fn share_of_measured(&self, stage: Stage) -> f64 {
        let total = self.measured_total_nanos();
        if stage.is_scaffold() || total == 0 {
            0.0
        } else {
            self.stats(stage).total_nanos as f64 / total as f64
        }
    }
}

/// RAII scope guard returned by [`enter`]: with the `hotpath-profile`
/// feature on it records the elapsed wall-clock nanoseconds of its scope
/// into the thread-local table on drop (surviving early `return` and `?`
/// exits); with the feature off it is a zero-sized no-op the optimiser
/// removes entirely.
#[must_use = "the guard measures its scope; dropping it immediately measures nothing"]
pub struct StageGuard {
    #[cfg(feature = "hotpath-profile")]
    stage: Stage,
    #[cfg(feature = "hotpath-profile")]
    started: std::time::Instant,
}

/// Open a measured scope for `stage`. Prefer the [`stage!`](crate::stage)
/// macro, which binds the guard for you.
#[inline(always)]
pub fn enter(stage: Stage) -> StageGuard {
    #[cfg(feature = "hotpath-profile")]
    {
        StageGuard { stage, started: std::time::Instant::now() }
    }
    #[cfg(not(feature = "hotpath-profile"))]
    {
        let _ = stage;
        StageGuard {}
    }
}

#[cfg(feature = "hotpath-profile")]
impl Drop for StageGuard {
    #[inline]
    fn drop(&mut self) {
        let nanos = self.started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        collector::record(self.stage, nanos);
    }
}

/// Bind a [`StageGuard`] for the rest of the enclosing scope:
///
/// ```
/// use netsim_types::profile::Stage;
/// fn hot_section() -> Option<u64> {
///     netsim_types::stage!(Stage::DnsWalk);
///     // ... early `return None` / `?` exits still close the scope ...
///     Some(42)
/// }
/// ```
///
/// A statement macro (not a closure combinator) so control flow inside the
/// scope — `?`, `return`, `break` — behaves exactly as unwrapped code.
#[macro_export]
macro_rules! stage {
    ($stage:expr) => {
        let _stage_guard = $crate::profile::enter($stage);
    };
}

#[cfg(feature = "hotpath-profile")]
mod collector {
    use super::{Stage, StageTable};
    use std::cell::RefCell;
    use std::sync::Mutex;

    thread_local! {
        // `const`-initialised: touching the table never allocates, so the
        // zero-alloc gate holds with the feature enabled.
        static LOCAL: RefCell<StageTable> = const { RefCell::new(StageTable::new()) };
    }

    /// The process-wide merge target. A plain `Mutex<StageTable>` — workers
    /// flush at chunk boundaries (coarse), never per guard.
    static GLOBAL: Mutex<StageTable> = Mutex::new(StageTable::new());

    #[inline]
    pub(super) fn record(stage: Stage, nanos: u64) {
        LOCAL.with(|table| table.borrow_mut().record(stage, nanos));
    }

    pub(super) fn take_local() -> StageTable {
        LOCAL.with(|table| std::mem::take(&mut *table.borrow_mut()))
    }

    pub(super) fn flush_local() {
        let local = take_local();
        if !local.is_empty() {
            GLOBAL.lock().expect("profile table lock poisoned").merge(&local);
        }
    }

    pub(super) fn take_global() -> StageTable {
        std::mem::take(&mut *GLOBAL.lock().expect("profile table lock poisoned"))
    }
}

/// Take (and reset) the calling thread's stage table. Empty when the
/// `hotpath-profile` feature is off.
pub fn take_local() -> StageTable {
    #[cfg(feature = "hotpath-profile")]
    {
        collector::take_local()
    }
    #[cfg(not(feature = "hotpath-profile"))]
    {
        StageTable::new()
    }
}

/// Merge the calling thread's table into the process-wide table and reset
/// the local one. Workers call this at chunk boundaries — one mutex
/// acquisition per chunk, zero per visit. No-op when the feature is off.
pub fn flush_local() {
    #[cfg(feature = "hotpath-profile")]
    collector::flush_local();
}

/// Take (and reset) the process-wide merged table. Callers flush their own
/// thread first ([`flush_local`]) — worker threads flush before they exit.
/// Empty when the `hotpath-profile` feature is off.
pub fn take_global() -> StageTable {
    #[cfg(feature = "hotpath-profile")]
    {
        collector::take_global()
    }
    #[cfg(not(feature = "hotpath-profile"))]
    {
        StageTable::new()
    }
}

/// `true` when this build collects stage timings (the `hotpath-profile`
/// feature is enabled). Lets binaries explain an empty table instead of
/// printing one.
pub const fn enabled() -> bool {
    cfg!(feature = "hotpath-profile")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_track_count_total_min_max() {
        let mut stats = StageStats::new();
        assert_eq!(stats.mean_nanos(), 0.0);
        for nanos in [30, 10, 20] {
            stats.record(nanos);
        }
        assert_eq!(stats, StageStats { count: 3, total_nanos: 60, min_nanos: 10, max_nanos: 30 });
        assert_eq!(stats.mean_nanos(), 20.0);
    }

    #[test]
    fn merge_has_an_identity_and_tracks_extremes() {
        let mut left = StageStats::new();
        left.record(5);
        left.record(50);
        let mut right = StageStats::new();
        right.record(2);

        let mut merged = left;
        merged.merge(&right);
        assert_eq!(merged, StageStats { count: 3, total_nanos: 57, min_nanos: 2, max_nanos: 50 });

        // Identity on both sides, including the min (a zeroed empty row
        // must not clamp a real minimum down to 0).
        let mut with_empty = left;
        with_empty.merge(&StageStats::new());
        assert_eq!(with_empty, left);
        let mut from_empty = StageStats::new();
        from_empty.merge(&left);
        assert_eq!(from_empty, left);
    }

    #[test]
    fn table_shares_exclude_scaffold_stages() {
        let mut table = StageTable::new();
        table.record(Stage::DnsWalk, 300);
        table.record(Stage::Handshake, 100);
        table.record(Stage::ChunkLoop, 10_000); // envelope: not a share
        assert_eq!(table.measured_total_nanos(), 400);
        assert_eq!(table.share_of_measured(Stage::DnsWalk), 0.75);
        assert_eq!(table.share_of_measured(Stage::Handshake), 0.25);
        assert_eq!(table.share_of_measured(Stage::ChunkLoop), 0.0);
        assert!(!table.is_empty());
    }

    #[test]
    fn stage_names_round_trip() {
        for stage in Stage::ALL {
            assert_eq!(Stage::from_name(stage.name()), Some(stage));
        }
        assert_eq!(Stage::from_name("no-such-stage"), None);
        // The vocabulary is closed and the discriminants index the table.
        assert_eq!(Stage::ALL.len(), Stage::COUNT);
        for (index, stage) in Stage::ALL.iter().enumerate() {
            assert_eq!(*stage as usize, index);
        }
    }

    #[test]
    fn disabled_builds_return_empty_tables() {
        // Under the default feature set the collector is compiled out; a
        // guard must still be constructible and droppable, and the drains
        // must hand back empty tables. (With `hotpath-profile` on, the
        // integration tests in `crates/browser/tests/` assert the opposite:
        // non-trivial totals.)
        if !enabled() {
            {
                crate::stage!(Stage::DnsWalk);
                std::hint::black_box(0u64);
            }
            assert!(take_local().is_empty());
            assert!(take_global().is_empty());
        }
    }

    #[cfg(feature = "hotpath-profile")]
    #[test]
    fn enabled_builds_record_flush_and_merge() {
        // Drain whatever other tests on this thread left behind.
        let _ = take_local();
        {
            crate::stage!(Stage::ReuseScan);
            std::hint::black_box(0u64);
        }
        let local = take_local();
        assert_eq!(local.stats(Stage::ReuseScan).count, 1);
        assert!(take_local().is_empty(), "take_local resets");

        {
            crate::stage!(Stage::Classify);
            std::hint::black_box(0u64);
        }
        flush_local();
        let global = take_global();
        assert_eq!(global.stats(Stage::Classify).count, 1);
    }
}
