//! Stable identifiers.
//!
//! Connections, requests, pages and sites are referenced across crates (the
//! browser emits NetLog events keyed by connection id, the HAR pipeline keys
//! requests by socket id, the classifier joins them back together). Newtype
//! ids keep those joins type-safe and make accidental cross-keying a compile
//! error.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub u64);

        impl $name {
            /// The raw numeric value.
            pub const fn value(self) -> u64 {
                self.0
            }

            /// The next id in sequence (used by allocators).
            pub const fn next(self) -> Self {
                $name(self.0 + 1)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self)
            }
        }

        impl From<u64> for $name {
            fn from(v: u64) -> Self {
                $name(v)
            }
        }
    };
}

define_id!(
    /// Identifies one website (one landing-page visit target) in a population.
    SiteId,
    "site-"
);
define_id!(
    /// Identifies one page load (a site may be loaded several times, e.g. the
    /// HTTP Archive's median-of-three procedure).
    PageId,
    "page-"
);
define_id!(
    /// Identifies one transport connection / HTTP/2 session. Mirrors the
    /// "socket id" of HAR files and the source id of NetLog events.
    ConnectionId,
    "conn-"
);
define_id!(
    /// Identifies one HTTP request within a page load.
    RequestId,
    "req-"
);

/// A monotonically increasing allocator for any of the id types.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct IdAllocator {
    next: u64,
}

impl IdAllocator {
    /// An allocator starting at zero.
    pub fn new() -> Self {
        IdAllocator { next: 0 }
    }

    /// An allocator whose first issued value is `start`.
    pub fn starting_at(start: u64) -> Self {
        IdAllocator { next: start }
    }

    /// Issue the next raw value.
    pub fn issue(&mut self) -> u64 {
        let v = self.next;
        self.next += 1;
        v
    }

    /// Issue the next value converted into an id type.
    pub fn issue_as<T: From<u64>>(&mut self) -> T {
        T::from(self.issue())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_with_prefix() {
        assert_eq!(ConnectionId(7).to_string(), "conn-7");
        assert_eq!(SiteId(3).to_string(), "site-3");
        assert_eq!(PageId(1).to_string(), "page-1");
        assert_eq!(RequestId(0).to_string(), "req-0");
    }

    #[test]
    fn next_increments() {
        assert_eq!(ConnectionId(7).next(), ConnectionId(8));
        assert_eq!(RequestId(0).next().value(), 1);
    }

    #[test]
    fn allocator_is_sequential() {
        let mut alloc = IdAllocator::new();
        let a: ConnectionId = alloc.issue_as();
        let b: ConnectionId = alloc.issue_as();
        assert_eq!(a, ConnectionId(0));
        assert_eq!(b, ConnectionId(1));
        let mut later = IdAllocator::starting_at(100);
        let c: RequestId = later.issue_as();
        assert_eq!(c, RequestId(100));
    }
}
