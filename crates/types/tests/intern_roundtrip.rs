//! Property tests for the domain/origin interning layer: parsing, interning,
//! resolving and displaying must compose to the identity, and interned ids
//! must agree exactly with lowercase-normalized textual equality.

use netsim_types::{DomainName, Origin, Scheme};
use proptest::prelude::*;
use serde::{Deserialize, Serialize};

/// What `DomainName::parse` canonicalises a raw input to: trimmed, trailing
/// dot removed, ASCII-lowercased.
fn normalize(raw: &str) -> String {
    raw.trim().trim_end_matches('.').to_ascii_lowercase()
}

prop_compose! {
    /// A syntactically valid domain with mixed case and an optional trailing
    /// dot — everything `parse` accepts and has to canonicalise away.
    fn raw_domain()(
        labels in prop::collection::vec("[a-zA-Z0-9]{1,8}", 1usize..5),
        dotted in 0u8..2,
    ) -> String {
        let mut raw = labels.join(".");
        if dotted == 1 {
            raw.push('.');
        }
        raw
    }
}

prop_compose! {
    /// A domain drawn from a deliberately tiny alphabet so that two
    /// independent draws frequently normalize to the same string — the
    /// interesting case for the id-equality property.
    fn colliding_domain()(
        labels in prop::collection::vec("[aB]{1,2}", 1usize..3),
        dotted in 0u8..2,
    ) -> String {
        let mut raw = labels.join(".");
        if dotted == 1 {
            raw.push('.');
        }
        raw
    }
}

proptest! {
    #[test]
    fn parse_intern_resolve_display_is_the_identity(raw in raw_domain()) {
        let parsed = DomainName::parse(&raw).expect("generated domain is valid");

        // Display renders the canonical form.
        prop_assert_eq!(parsed.to_string(), normalize(&raw));
        prop_assert_eq!(parsed.as_str(), normalize(&raw).as_str());

        // display → parse is the identity on the handle (same intern slot).
        let reparsed = DomainName::parse(parsed.as_str()).expect("canonical form reparses");
        prop_assert_eq!(reparsed, parsed);
        prop_assert_eq!(reparsed.id(), parsed.id());

        // id → resolve is the identity.
        let resolved = parsed.id().resolve();
        prop_assert_eq!(resolved, parsed);
        prop_assert_eq!(resolved.as_str(), parsed.as_str());

        // serde value round-trip re-interns to the same slot.
        let restored = DomainName::deserialize_value(&parsed.serialize_value())
            .expect("serialized domain deserializes");
        prop_assert_eq!(restored, parsed);
        prop_assert_eq!(restored.id(), parsed.id());
    }

    #[test]
    fn ids_compare_equal_iff_normalized_strings_do(a in colliding_domain(), b in colliding_domain()) {
        let left = DomainName::parse(&a).expect("generated domain is valid");
        let right = DomainName::parse(&b).expect("generated domain is valid");
        let strings_equal = normalize(&a) == normalize(&b);
        prop_assert_eq!(left.id() == right.id(), strings_equal);
        prop_assert_eq!(left == right, strings_equal);
        // Ordering stays textual on the canonical forms.
        prop_assert_eq!(left.cmp(&right), normalize(&a).cmp(&normalize(&b)));
    }

    #[test]
    fn origin_id_packs_and_resolves_the_triple(
        raw in raw_domain(),
        port in 1u16..9000,
        scheme_bit in 0u8..2,
    ) {
        let scheme = if scheme_bit == 0 { Scheme::Http } else { Scheme::Https };
        let origin = Origin::new(scheme, DomainName::parse(&raw).expect("valid"), port);
        let id = origin.id();
        prop_assert_eq!(id.resolve(), origin);
        prop_assert_eq!(id.scheme(), scheme);
        prop_assert_eq!(id.port(), port);
        prop_assert_eq!(id.host(), origin.host.id());
        // Textual round-trip through the ascii serialisation.
        prop_assert_eq!(Origin::parse(&origin.ascii()), Some(origin));
    }
}
