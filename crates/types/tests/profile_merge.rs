//! Property tests for the hotpath profiler's stage tables: shard merging
//! must be a commutative monoid (associative, commutative, with the empty
//! table as identity) and must preserve every aggregate exactly — the same
//! contract the atlas demands of `Accumulator`/`CostTotals` shards, so a
//! profile collected at `--threads 8` describes the identical work as one
//! collected serially.

use netsim_types::profile::{Stage, StageTable};
use proptest::prelude::*;

/// One recorded stage entry: a stage index into [`Stage::ALL`] and a
/// duration in nanoseconds.
type Event = (usize, u64);

fn replay(events: &[Event]) -> StageTable {
    let mut table = StageTable::new();
    for &(stage, nanos) in events {
        table.record(Stage::ALL[stage % Stage::COUNT], nanos);
    }
    table
}

fn events() -> impl Strategy<Value = Vec<Event>> {
    prop::collection::vec((0usize..Stage::COUNT, 1u64..5_000_000), 0usize..60)
}

fn merged(left: &StageTable, right: &StageTable) -> StageTable {
    let mut out = *left;
    out.merge(right);
    out
}

proptest! {
    #[test]
    fn merging_shards_equals_recording_in_one_table(
        a in events(),
        b in events(),
        c in events(),
    ) {
        // Shard-and-merge sees exactly the aggregates a single table would.
        let whole: Vec<Event> = a.iter().chain(&b).chain(&c).copied().collect();
        let sharded = merged(&merged(&replay(&a), &replay(&b)), &replay(&c));
        prop_assert_eq!(sharded, replay(&whole));
    }

    #[test]
    fn merge_is_associative_and_commutative(a in events(), b in events(), c in events()) {
        let (ta, tb, tc) = (replay(&a), replay(&b), replay(&c));
        prop_assert_eq!(merged(&merged(&ta, &tb), &tc), merged(&ta, &merged(&tb, &tc)));
        prop_assert_eq!(merged(&ta, &tb), merged(&tb, &ta));
    }

    #[test]
    fn the_empty_table_is_the_merge_identity(a in events()) {
        let table = replay(&a);
        prop_assert_eq!(merged(&table, &StageTable::new()), table);
        prop_assert_eq!(merged(&StageTable::new(), &table), table);
    }

    #[test]
    fn aggregates_match_a_direct_fold(a in events()) {
        let table = replay(&a);
        for (index, stage) in Stage::ALL.iter().enumerate() {
            let mine: Vec<u64> = a
                .iter()
                .filter(|(s, _)| s % Stage::COUNT == index)
                .map(|&(_, nanos)| nanos)
                .collect();
            let stats = table.stats(*stage);
            prop_assert_eq!(stats.count, mine.len() as u64);
            prop_assert_eq!(stats.total_nanos, mine.iter().sum::<u64>());
            if !mine.is_empty() {
                prop_assert_eq!(stats.min_nanos, *mine.iter().min().expect("non-empty"));
                prop_assert_eq!(stats.max_nanos, *mine.iter().max().expect("non-empty"));
            }
        }
        // The measured total is the non-scaffold slice of the same fold.
        let measured: u64 = a
            .iter()
            .filter(|(s, _)| !Stage::ALL[s % Stage::COUNT].is_scaffold())
            .map(|&(_, nanos)| nanos)
            .sum();
        prop_assert_eq!(table.measured_total_nanos(), measured);
    }
}
