//! Allocation-regression gate for the visit fast path.
//!
//! The whole point of [`netsim_browser::VisitScratch`] is that a steady-state
//! page visit performs **zero** heap allocations: every buffer (connection
//! shells, request log, DNS cache lines, HPACK tables, refusal sets) is
//! recycled across visits. This test pins that property with a counting
//! global allocator: after two warm-up passes over a population (which grow
//! every buffer to its high-water mark), a third pass over the same sites
//! must allocate exactly **nothing**. Any regression — a stray `clone`, a
//! map rebuilt per visit, a vector constructed in the loop — fails loudly
//! with the exact allocation count.
//!
//! The counter is thread-local, so concurrently running tests in the same
//! binary cannot perturb it. Gated `#[cfg(not(miri))]`: Miri interposes its
//! own allocator bookkeeping.

#![cfg(not(miri))]

use netsim_browser::{Browser, BrowserConfig, Crawler, PoolConfig, UserSession, VisitScratch};
use netsim_types::{Duration, Instant, SimClock, SimRng};
use netsim_web::{PopulationBuilder, PopulationProfile, WebEnvironment};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static TRACKING: Cell<bool> = const { Cell::new(false) };
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

/// Counts allocations (and growth reallocations) on threads that enabled
/// tracking; delegates all actual memory management to the system allocator.
struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_one();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_one();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

fn count_one() {
    // `try_with` so allocations during TLS setup/teardown never recurse or
    // abort; those moments are outside any measurement window anyway.
    let _ = TRACKING.try_with(|tracking| {
        if tracking.get() {
            let _ = ALLOCATIONS.try_with(|count| count.set(count.get() + 1));
        }
    });
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Run `f` with allocation tracking enabled and return the exact number of
/// heap allocations it performed on this thread.
fn allocations_in<F: FnOnce()>(f: F) -> u64 {
    ALLOCATIONS.with(|count| count.set(0));
    TRACKING.with(|tracking| tracking.set(true));
    f();
    TRACKING.with(|tracking| tracking.set(false));
    ALLOCATIONS.with(|count| count.get())
}

#[test]
fn steady_state_visits_allocate_nothing() {
    let env = PopulationBuilder::new(PopulationProfile::alexa(), 60, 4242).build();
    let crawler = Crawler::new("alloc-gate", BrowserConfig::alexa_measurement(), 7);
    let mut scratch = VisitScratch::without_netlog();

    // Warm-up: every pooled buffer's capacity only ever ratchets upwards,
    // and recycled shells rotate through different connections across
    // passes, so a handful of passes reaches the fixed point where nothing
    // grows any more. Converging within this bound is part of the contract —
    // a scratch that kept allocating would never hit zero.
    const MAX_WARMUP_PASSES: usize = 8;
    let mut converged_after = None;
    for pass in 0..MAX_WARMUP_PASSES {
        let allocations = allocations_in(|| {
            for index in 0..env.sites.len() {
                let _ = crawler.visit_site_into(&mut scratch, &env, index);
            }
        });
        if allocations == 0 {
            converged_after = Some(pass);
            break;
        }
    }
    let converged_after = converged_after
        .unwrap_or_else(|| panic!("visit loop still allocating after {MAX_WARMUP_PASSES} full passes"));

    // The measured pass: same sites, same order — steady state. Exactly
    // zero, so any regression fails loudly with its allocation count.
    let mut requests = 0usize;
    let allocations = allocations_in(|| {
        for index in 0..env.sites.len() {
            let _ = crawler.visit_site_into(&mut scratch, &env, index);
            requests += scratch.requests().len();
        }
    });
    assert!(requests > 1000, "the measured pass must do real work ({requests} requests)");
    assert_eq!(
        allocations,
        0,
        "steady-state visits must not allocate: {allocations} allocations across {} visits \
         (scratch had converged after {converged_after} warm passes)",
        env.sites.len()
    );
}

#[test]
fn cost_accounting_keeps_the_zero_allocation_guarantee() {
    // The latency/byte cost timeline must ride the fast path for free: with
    // cost accounting explicitly enabled (the default) a steady-state pass
    // performs zero heap allocations *and* produces non-trivial totals — so
    // the zero cannot be explained by the accounting having been skipped.
    let env = PopulationBuilder::new(PopulationProfile::alexa(), 40, 2024).build();
    let crawler = Crawler::new("alloc-gate-cost", BrowserConfig::alexa_measurement(), 5);
    let mut scratch = VisitScratch::without_netlog().with_cost_accounting(true);

    // Warm-up to the buffers' high-water marks (see the main gate above).
    for _ in 0..8 {
        let allocations = allocations_in(|| {
            for index in 0..env.sites.len() {
                let _ = crawler.visit_site_into(&mut scratch, &env, index);
            }
        });
        if allocations == 0 {
            break;
        }
    }

    let mut totals = netsim_cost::CostTotals::new();
    let allocations = allocations_in(|| {
        for index in 0..env.sites.len() {
            let _ = crawler.visit_site_into(&mut scratch, &env, index);
            totals.absorb_visit(scratch.timeline());
        }
    });
    assert_eq!(allocations, 0, "cost accounting must not allocate on the visit fast path");
    assert_eq!(totals.visits, 40);
    assert!(totals.sums.connections_opened > 0, "the measured pass opened connections");
    assert!(totals.sums.handshake_rtts >= 2 * totals.sums.connections_opened);
    assert!(totals.sums.dns_recursive_walks > 0);
    assert!(totals.sums.plt_millis > 0);
}

/// One pass of warm multi-page sessions over the population: six sessions of
/// four pages each, all driven through the session fast path with the same
/// reusable [`UserSession`]. Returns the connections opened, so the measured
/// pass can prove it did real work.
fn run_warm_sessions(
    env: &WebEnvironment,
    config: &BrowserConfig,
    scratch: &mut VisitScratch,
    session: &mut UserSession,
) -> u64 {
    let mut opens = 0;
    for s in 0..6u64 {
        let mut browser = Browser::with_id_base(config.clone(), s * 1_000_000);
        let mut clock = SimClock::starting_at(Instant::EPOCH + Duration::from_secs(600 * s));
        let mut rng = SimRng::new(5).fork_indexed("alloc-session", s);
        for page in 0..4u64 {
            let site = &env.sites[((s * 4 + page) * 3) as usize % env.sites.len()];
            browser.load_session_page_into(scratch, session, env, site, &mut clock, &mut rng);
            opens += scratch.timeline().connections_opened;
            clock.advance(Duration::from_secs(30));
        }
        session.end(scratch, clock.now());
    }
    opens
}

#[test]
fn warm_session_pages_keep_the_zero_allocation_guarantee() {
    // The session fast path adds a connection pool, a TLS ticket cache and a
    // kept-warm DNS cache on top of the per-visit scratch; all of that state
    // must recycle like the scratch's own buffers. After warm-up, a full
    // pass of multi-page sessions — pool lends and absorbs, ticket lookups,
    // TTL sweeps, session teardown included — allocates exactly nothing.
    let env = PopulationBuilder::new(PopulationProfile::alexa(), 24, 99).build();
    let config = BrowserConfig::alexa_measurement();
    let mut scratch = VisitScratch::without_netlog();
    let mut session = UserSession::new(PoolConfig::default());

    const MAX_WARMUP_PASSES: usize = 8;
    let mut converged = false;
    for _ in 0..MAX_WARMUP_PASSES {
        let allocations = allocations_in(|| {
            let _ = run_warm_sessions(&env, &config, &mut scratch, &mut session);
        });
        if allocations == 0 {
            converged = true;
            break;
        }
    }
    assert!(converged, "session loop still allocating after {MAX_WARMUP_PASSES} full passes");

    let mut opens = 0;
    let allocations = allocations_in(|| opens = run_warm_sessions(&env, &config, &mut scratch, &mut session));
    assert!(opens > 0, "the measured pass opened connections");
    assert_eq!(allocations, 0, "steady-state session pages must not allocate: {allocations} allocations");

    // The zero cannot be explained by the pool having been bypassed: the
    // accumulated lifecycle counters prove warm lends happened.
    let stats = session.take_stats();
    assert!(stats.lent > 0, "warm sessions must lend pooled connections: {stats:?}");
    assert!(stats.inserted > 0);
}

#[test]
fn faulted_visits_keep_the_zero_allocation_guarantee() {
    // The fault-injection and retry layer must ride the fast path for free:
    // with every failure process at a visibly nonzero rate — so DNS faults,
    // failed dials, mid-transfer resets, dead pooled connections, GOAWAYs,
    // backoff waits and abandoned resources all actually happen — a
    // steady-state pass of warm sessions still allocates exactly nothing.
    use netsim_browser::FaultProfile;

    let env = PopulationBuilder::new(PopulationProfile::alexa(), 24, 77).build();
    let config =
        BrowserConfig { faults: FaultProfile::uniform(50_000), ..BrowserConfig::alexa_measurement() };
    let mut scratch = VisitScratch::without_netlog();
    let mut session = UserSession::new(PoolConfig::default());

    // Faults perturb which recycled shell lands on which connection, so the
    // rotation takes longer than the fault-free loops to cycle every shell
    // through the high-water-mark connection — a generous bound, same
    // converge-or-fail contract as the main gate.
    const MAX_WARMUP_PASSES: usize = 32;
    let mut converged = false;
    for _ in 0..MAX_WARMUP_PASSES {
        let allocations = allocations_in(|| {
            let _ = run_warm_sessions(&env, &config, &mut scratch, &mut session);
        });
        if allocations == 0 {
            converged = true;
            break;
        }
    }
    assert!(converged, "faulted session loop still allocating after {MAX_WARMUP_PASSES} full passes");

    let mut totals = netsim_cost::CostTotals::new();
    let allocations = allocations_in(|| {
        for s in 0..6u64 {
            let mut browser = Browser::with_id_base(config.clone(), s * 1_000_000);
            let mut clock = SimClock::starting_at(Instant::EPOCH + Duration::from_secs(600 * s));
            let mut rng = SimRng::new(5).fork_indexed("alloc-session", s);
            for page in 0..4u64 {
                let site = &env.sites[((s * 4 + page) * 3) as usize % env.sites.len()];
                browser.load_session_page_into(&mut scratch, &mut session, &env, site, &mut clock, &mut rng);
                totals.absorb_visit(scratch.timeline());
                clock.advance(Duration::from_secs(30));
            }
            session.end(&mut scratch, clock.now());
        }
    });
    assert_eq!(allocations, 0, "fault injection and retries must not allocate: {allocations} allocations");
    // The zero cannot be explained by the fault layer having been inert: at
    // 5% per process across hundreds of requests, faults and retries fired.
    assert!(totals.sums.faults_injected > 0, "no faults fired: {:?}", totals.sums);
    assert!(totals.sums.retries > 0, "no retries happened: {:?}", totals.sums);
    assert!(totals.sums.retry_backoff_millis > 0, "retries charged no backoff: {:?}", totals.sums);
}

#[cfg(feature = "hotpath-profile")]
#[test]
fn profiled_visits_keep_the_zero_allocation_guarantee() {
    // The hotpath profiler must be free on the fast path even when it is
    // *recording*: stage guards write into a fixed-size thread-local table,
    // so a steady-state pass with `hotpath-profile` enabled still allocates
    // exactly nothing — and the drained table proves the instrumentation
    // was live, not compiled out.
    use netsim_types::profile::{self, Stage};

    let env = PopulationBuilder::new(PopulationProfile::alexa(), 40, 1337).build();
    let crawler = Crawler::new("alloc-gate-profile", BrowserConfig::alexa_measurement(), 7);
    let mut scratch = VisitScratch::without_netlog();

    const MAX_WARMUP_PASSES: usize = 8;
    let mut converged = false;
    for _ in 0..MAX_WARMUP_PASSES {
        let allocations = allocations_in(|| {
            for index in 0..env.sites.len() {
                let _ = crawler.visit_site_into(&mut scratch, &env, index);
            }
        });
        if allocations == 0 {
            converged = true;
            break;
        }
    }
    assert!(converged, "profiled visit loop still allocating after {MAX_WARMUP_PASSES} full passes");

    // Drop the warm-up's recordings so the assertion below covers exactly
    // the measured pass.
    let _ = profile::take_local();

    let allocations = allocations_in(|| {
        for index in 0..env.sites.len() {
            let _ = crawler.visit_site_into(&mut scratch, &env, index);
        }
    });
    assert_eq!(allocations, 0, "stage guards must not allocate on the visit fast path");

    let table = profile::take_local();
    for stage in [Stage::DnsWalk, Stage::Handshake, Stage::RequestEncode, Stage::TransferClock] {
        let stats = table.stats(stage);
        assert!(stats.count > 0, "stage {} recorded nothing in the measured pass", stage.name());
        assert!(stats.total_nanos > 0, "stage {} recorded zero time", stage.name());
    }
}

#[test]
fn netlog_scratch_reaches_zero_allocations_once_netlog_is_disabled() {
    // The same loop with NetLog recording enabled must allocate (events own
    // address lists and path strings) — demonstrating that the measured
    // zero above is a property of the fast path, not of the workload.
    let env = PopulationBuilder::new(PopulationProfile::alexa(), 20, 4242).build();
    let crawler = Crawler::new("alloc-gate-netlog", BrowserConfig::alexa_measurement(), 7);
    let mut scratch = VisitScratch::new();
    for _ in 0..2 {
        for index in 0..env.sites.len() {
            let _ = crawler.visit_site_into(&mut scratch, &env, index);
        }
    }
    let allocations = allocations_in(|| {
        for index in 0..env.sites.len() {
            let _ = crawler.visit_site_into(&mut scratch, &env, index);
        }
    });
    assert!(allocations > 0, "NetLog recording inherently allocates per event");
}
