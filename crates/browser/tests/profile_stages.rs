//! Integration test for the hotpath profiler riding the real visit loop
//! (only meaningful with `--features hotpath-profile`; the whole file is
//! compiled out otherwise).
//!
//! Two guarantees:
//!
//! * every instrumented stage on the visit fast path actually records when
//!   a population is crawled, and
//! * the per-stage totals are physically plausible — stage scopes never
//!   overlap on one thread except by strict nesting, so the sum of the
//!   non-nested stage totals cannot exceed the wall-clock time of the loop
//!   that contained them.

#![cfg(feature = "hotpath-profile")]

use netsim_browser::{BrowserConfig, Crawler, VisitScratch};
use netsim_types::profile::{self, Stage};
use netsim_web::{PopulationBuilder, PopulationProfile};

#[test]
fn stage_totals_stay_inside_the_visit_loop_wall_clock() {
    let env = PopulationBuilder::new(PopulationProfile::alexa(), 50, 777).build();
    let crawler = Crawler::new("profile-stages", BrowserConfig::alexa_measurement(), 7);
    let mut scratch = VisitScratch::without_netlog();

    // Drain anything a previously-run test on this thread left behind.
    let _ = profile::take_local();

    let started = std::time::Instant::now();
    for index in 0..env.sites.len() {
        let _ = crawler.visit_site_into(&mut scratch, &env, index);
    }
    let wall_nanos = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;

    let table = profile::take_local();

    // Every fast-path stage ran. (Classify and ChunkLoop belong to the
    // experiment harness, not the browser, so they stay empty here.)
    for stage in
        [Stage::DnsWalk, Stage::ReuseScan, Stage::Handshake, Stage::RequestEncode, Stage::TransferClock]
    {
        let stats = table.stats(stage);
        assert!(stats.count > 0, "stage {} never recorded during the crawl", stage.name());
        assert!(stats.min_nanos <= stats.max_nanos);
        assert!(stats.total_nanos >= stats.max_nanos);
    }
    assert_eq!(table.stats(Stage::ChunkLoop).count, 0, "no chunk scaffold in a bare visit loop");

    // Physical upper bound: the browser's stage scopes are disjoint
    // siblings on the fast path (scan, DNS walk, handshake, encode, clock,
    // fold happen strictly one after another), and all of them ran inside
    // the loop above on this one thread — so their summed totals cannot
    // exceed the loop's wall clock.
    assert!(
        table.measured_total_nanos() <= wall_nanos,
        "measured stage totals ({} ns) exceed the loop wall clock ({wall_nanos} ns)",
        table.measured_total_nanos()
    );
}
