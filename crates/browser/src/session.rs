//! Multi-page user sessions: the warm state carried between navigations.
//!
//! A [`UserSession`] owns everything that outlives a single page but dies
//! with the user: the [`ConnectionPool`] (idle timeouts, LRU cap, server
//! churn), the TLS session-ticket cache that lets later handshakes against
//! an already-visited origin resume, and the page counter that tells the
//! loader whether the session's DNS cache is cold. The per-session DNS cache
//! itself lives in the [`VisitScratch`]'s resolver — the loader flushes it on
//! the session's first page and only sweeps expired lines afterwards
//! ([`netsim_dns::RecursiveResolver::expire_stale`]).
//!
//! Everything here is reusable: ending a session recycles the pooled
//! connections into the scratch's shell pool and retains ticket/entry
//! capacities, so a worker simulating thousands of sessions back to back
//! allocates nothing in the steady state.
//!
//! [`VisitScratch`]: crate::VisitScratch

use crate::connpool::{ConnectionPool, PoolConfig, PoolLifecycleStats};
use crate::scratch::VisitScratch;
use netsim_types::{Instant, Origin};

/// The TLS session tickets a user agent holds, keyed by origin. Linear scan
/// over a small `Vec` — a session touches tens of origins, and the flat
/// layout keeps lookups allocation-free.
#[derive(Clone, Debug, Default)]
pub struct ResumptionCache {
    origins: Vec<Origin>,
}

impl ResumptionCache {
    /// `true` if a ticket for `origin` is held.
    pub fn has(&self, origin: &Origin) -> bool {
        self.origins.contains(origin)
    }

    /// Record a ticket for `origin` (every completed handshake mints one).
    pub fn insert(&mut self, origin: Origin) {
        if !self.has(&origin) {
            self.origins.push(origin);
        }
    }

    /// Number of origins with a ticket.
    pub fn len(&self) -> usize {
        self.origins.len()
    }

    /// `true` if no tickets are held.
    pub fn is_empty(&self) -> bool {
        self.origins.is_empty()
    }

    /// Forget every ticket (capacity retained).
    pub fn clear(&mut self) {
        self.origins.clear();
    }
}

/// One user's browsing session: the connection pool, TLS tickets and page
/// counter carried across the pages of a multi-page visit sequence. Drive it
/// with [`Browser::load_session_page_into`] and finish with
/// [`UserSession::end`].
///
/// [`Browser::load_session_page_into`]: crate::Browser::load_session_page_into
#[derive(Clone, Debug)]
pub struct UserSession {
    pool: ConnectionPool,
    tickets: ResumptionCache,
    pages_loaded: u64,
}

impl UserSession {
    /// A fresh session with the given pool policy.
    pub fn new(pool: PoolConfig) -> Self {
        UserSession { pool: ConnectionPool::new(pool), tickets: ResumptionCache::default(), pages_loaded: 0 }
    }

    /// The session's connection pool.
    pub fn pool(&self) -> &ConnectionPool {
        &self.pool
    }

    /// The session's connection pool, mutably (the loader lends/absorbs).
    pub(crate) fn pool_mut(&mut self) -> &mut ConnectionPool {
        &mut self.pool
    }

    /// The session's TLS ticket cache, mutably (the loader consults and
    /// mints tickets per handshake).
    pub(crate) fn tickets_mut(&mut self) -> &mut ResumptionCache {
        &mut self.tickets
    }

    /// Origins this session holds a TLS ticket for.
    pub fn ticket_count(&self) -> usize {
        self.tickets.len()
    }

    /// Pages loaded so far in this session.
    pub fn pages_loaded(&self) -> u64 {
        self.pages_loaded
    }

    /// Note a completed page load (the loader calls this).
    pub(crate) fn note_page_loaded(&mut self) {
        self.pages_loaded += 1;
    }

    /// End the session at `now`: close every pooled connection
    /// (`CloseReason::SessionEnd`), recycling it into `scratch`'s shell pool,
    /// and forget the TLS tickets. The session object is immediately
    /// reusable for the next simulated user — lifecycle counters keep
    /// accumulating until [`UserSession::take_stats`].
    pub fn end(&mut self, scratch: &mut VisitScratch, now: Instant) {
        self.pool.drain_all(now, scratch.shells_mut());
        self.tickets.clear();
        self.pages_loaded = 0;
    }

    /// Take the pool's accumulated lifecycle counters, resetting them.
    pub fn take_stats(&mut self) -> PoolLifecycleStats {
        self.pool.take_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim_types::DomainName;

    #[test]
    fn ticket_cache_deduplicates_origins() {
        let mut cache = ResumptionCache::default();
        let origin = Origin::https(DomainName::literal("www.example.com"));
        assert!(cache.is_empty());
        assert!(!cache.has(&origin));
        cache.insert(origin);
        cache.insert(origin);
        assert_eq!(cache.len(), 1);
        assert!(cache.has(&origin));
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn ending_a_session_resets_its_warm_state() {
        let mut session = UserSession::new(PoolConfig::default());
        session.tickets_mut().insert(Origin::https(DomainName::literal("www.example.com")));
        session.note_page_loaded();
        assert_eq!(session.pages_loaded(), 1);
        assert_eq!(session.ticket_count(), 1);
        let mut scratch = VisitScratch::without_netlog();
        session.end(&mut scratch, Instant::from_millis(1_000));
        assert_eq!(session.pages_loaded(), 0);
        assert_eq!(session.ticket_count(), 0);
        assert!(session.pool().is_empty());
    }
}
