//! Multi-page user sessions: the warm state carried between navigations.
//!
//! A [`UserSession`] owns everything that outlives a single page but dies
//! with the user: the [`ConnectionPool`] (idle timeouts, LRU cap, server
//! churn), the TLS session-ticket cache that lets later handshakes against
//! an already-visited origin resume, and the page counter that tells the
//! loader whether the session's DNS cache is cold. The per-session DNS cache
//! itself lives in the [`VisitScratch`]'s resolver — the loader flushes it on
//! the session's first page and only sweeps expired lines afterwards
//! ([`netsim_dns::RecursiveResolver::expire_stale`]).
//!
//! Everything here is reusable: ending a session recycles the pooled
//! connections into the scratch's shell pool and retains ticket/entry
//! capacities, so a worker simulating thousands of sessions back to back
//! allocates nothing in the steady state.
//!
//! [`VisitScratch`]: crate::VisitScratch

use crate::connpool::{ConnectionPool, PoolConfig, PoolLifecycleStats};
use crate::scratch::VisitScratch;
use netsim_types::{Duration, Instant, Origin};

/// One held TLS session ticket: the origin it resumes against and when it
/// was minted (re-minted on every later full-price handshake).
#[derive(Clone, Copy, Debug)]
struct Ticket {
    origin: Origin,
    minted_at: Instant,
}

/// The TLS session tickets a user agent holds, keyed by origin. Linear scan
/// over a small `Vec` — a session touches tens of origins, and the flat
/// layout keeps lookups allocation-free.
///
/// The cache is bounded on two axes so a week-long session never resumes
/// against arbitrarily stale state:
///
/// * **Ticket lifetime** — a ticket older than
///   [`ResumptionCache::TICKET_LIFETIME`] (RFC 8446 caps ticket lifetimes at
///   seven days; servers commonly issue far shorter ones) no longer matches
///   in [`ResumptionCache::has`]; the next handshake runs at full price and
///   re-mints it.
/// * **Capacity** — at most [`ResumptionCache::MAX_TICKETS`] origins are
///   held; inserting beyond that evicts the stalest ticket (oldest
///   `minted_at`, LRU-style, with the insertion-order index as the
///   deterministic tie-break).
#[derive(Clone, Debug, Default)]
pub struct ResumptionCache {
    tickets: Vec<Ticket>,
}

impl ResumptionCache {
    /// How long a minted ticket stays usable.
    pub const TICKET_LIFETIME: Duration = Duration::from_hours(2);
    /// Upper bound on held tickets (Chromium's SSL session cache keeps a
    /// kilo-entry scale total; per session a much smaller bound suffices).
    pub const MAX_TICKETS: usize = 256;

    /// `true` if a still-fresh ticket for `origin` is held at `now`.
    pub fn has(&self, origin: &Origin, now: Instant) -> bool {
        self.tickets
            .iter()
            .any(|ticket| ticket.origin == *origin && now.since(ticket.minted_at) <= Self::TICKET_LIFETIME)
    }

    /// Record a ticket for `origin` minted at `now` (every completed
    /// full-price handshake mints one; re-handshaking refreshes the mint
    /// time). Over capacity, the stalest ticket is evicted.
    pub fn insert(&mut self, origin: Origin, now: Instant) {
        if let Some(existing) = self.tickets.iter_mut().find(|ticket| ticket.origin == origin) {
            existing.minted_at = now;
            return;
        }
        if self.tickets.len() >= Self::MAX_TICKETS {
            if let Some(stalest) = self
                .tickets
                .iter()
                .enumerate()
                .min_by_key(|(index, ticket)| (ticket.minted_at, *index))
                .map(|(index, _)| index)
            {
                self.tickets.swap_remove(stalest);
            }
        }
        self.tickets.push(Ticket { origin, minted_at: now });
    }

    /// Number of origins with a ticket (fresh or not; expired tickets are
    /// only skipped at lookup, not swept).
    pub fn len(&self) -> usize {
        self.tickets.len()
    }

    /// `true` if no tickets are held.
    pub fn is_empty(&self) -> bool {
        self.tickets.is_empty()
    }

    /// Forget every ticket (capacity retained).
    pub fn clear(&mut self) {
        self.tickets.clear();
    }
}

/// One user's browsing session: the connection pool, TLS tickets and page
/// counter carried across the pages of a multi-page visit sequence. Drive it
/// with [`Browser::load_session_page_into`] and finish with
/// [`UserSession::end`].
///
/// [`Browser::load_session_page_into`]: crate::Browser::load_session_page_into
#[derive(Clone, Debug)]
pub struct UserSession {
    pool: ConnectionPool,
    tickets: ResumptionCache,
    pages_loaded: u64,
}

impl UserSession {
    /// A fresh session with the given pool policy.
    pub fn new(pool: PoolConfig) -> Self {
        UserSession { pool: ConnectionPool::new(pool), tickets: ResumptionCache::default(), pages_loaded: 0 }
    }

    /// The session's connection pool.
    pub fn pool(&self) -> &ConnectionPool {
        &self.pool
    }

    /// The session's connection pool, mutably (the loader lends/absorbs).
    pub(crate) fn pool_mut(&mut self) -> &mut ConnectionPool {
        &mut self.pool
    }

    /// The session's TLS ticket cache, mutably (the loader consults and
    /// mints tickets per handshake).
    pub(crate) fn tickets_mut(&mut self) -> &mut ResumptionCache {
        &mut self.tickets
    }

    /// Origins this session holds a TLS ticket for.
    pub fn ticket_count(&self) -> usize {
        self.tickets.len()
    }

    /// Pages loaded so far in this session.
    pub fn pages_loaded(&self) -> u64 {
        self.pages_loaded
    }

    /// Note a completed page load (the loader calls this).
    pub(crate) fn note_page_loaded(&mut self) {
        self.pages_loaded += 1;
    }

    /// End the session at `now`: close every pooled connection
    /// (`CloseReason::SessionEnd`), recycling it into `scratch`'s shell pool,
    /// and forget the TLS tickets. The session object is immediately
    /// reusable for the next simulated user — lifecycle counters keep
    /// accumulating until [`UserSession::take_stats`].
    pub fn end(&mut self, scratch: &mut VisitScratch, now: Instant) {
        self.pool.drain_all(now, scratch.shells_mut());
        self.tickets.clear();
        self.pages_loaded = 0;
    }

    /// Take the pool's accumulated lifecycle counters, resetting them.
    pub fn take_stats(&mut self) -> PoolLifecycleStats {
        self.pool.take_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim_types::DomainName;

    #[test]
    fn ticket_cache_deduplicates_origins() {
        let mut cache = ResumptionCache::default();
        let origin = Origin::https(DomainName::literal("www.example.com"));
        let now = Instant::from_millis(1_000);
        assert!(cache.is_empty());
        assert!(!cache.has(&origin, now));
        cache.insert(origin, now);
        cache.insert(origin, now);
        assert_eq!(cache.len(), 1);
        assert!(cache.has(&origin, now));
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn tickets_expire_after_their_lifetime_and_reminting_refreshes() {
        let mut cache = ResumptionCache::default();
        let origin = Origin::https(DomainName::literal("www.example.com"));
        let minted = Instant::from_millis(0);
        cache.insert(origin, minted);
        let within = minted + ResumptionCache::TICKET_LIFETIME;
        assert!(cache.has(&origin, within), "lifetime boundary is inclusive");
        let past = within + Duration::from_millis(1);
        assert!(!cache.has(&origin, past), "stale tickets no longer resume");
        assert_eq!(cache.len(), 1, "expired tickets are skipped, not swept");
        // A later full-price handshake re-mints the ticket in place.
        cache.insert(origin, past);
        assert!(cache.has(&origin, past + Duration::from_hours(1)));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn capacity_evicts_the_stalest_ticket() {
        let mut cache = ResumptionCache::default();
        // Fill to capacity with strictly increasing mint times.
        for index in 0..ResumptionCache::MAX_TICKETS {
            let origin = Origin::https(DomainName::literal(&format!("origin-{index}.example.com")));
            cache.insert(origin, Instant::from_millis(index as u64));
        }
        assert_eq!(cache.len(), ResumptionCache::MAX_TICKETS);
        // One more evicts the stalest (origin-0), not the newest.
        let newcomer = Origin::https(DomainName::literal("newcomer.example.com"));
        let now = Instant::from_millis(10_000);
        cache.insert(newcomer, now);
        assert_eq!(cache.len(), ResumptionCache::MAX_TICKETS);
        assert!(cache.has(&newcomer, now));
        assert!(!cache.has(&Origin::https(DomainName::literal("origin-0.example.com")), now));
        assert!(cache.has(&Origin::https(DomainName::literal("origin-1.example.com")), now));
    }

    #[test]
    fn ending_a_session_resets_its_warm_state() {
        let mut session = UserSession::new(PoolConfig::default());
        session
            .tickets_mut()
            .insert(Origin::https(DomainName::literal("www.example.com")), Instant::from_millis(500));
        session.note_page_loaded();
        assert_eq!(session.pages_loaded(), 1);
        assert_eq!(session.ticket_count(), 1);
        let mut scratch = VisitScratch::without_netlog();
        session.end(&mut scratch, Instant::from_millis(1_000));
        assert_eq!(session.pages_loaded(), 0);
        assert_eq!(session.ticket_count(), 0);
        assert!(session.pool().is_empty());
    }
}
