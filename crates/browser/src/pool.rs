//! A shared pool of [`VisitScratch`] arenas for parallel crawl executors.
//!
//! One [`VisitScratch`] amortises a visit's buffers across a *worker's*
//! lifetime; the pool amortises them across *runs*. A parallel executor
//! checks one arena out per worker, crawls its chunks, and the arena — with
//! every buffer grown to the hot set's high-water mark — returns to the pool
//! when the worker finishes. The next run (another thread count, another
//! population prefix, a repeated determinism check) starts warm instead of
//! re-growing connection shells, resolver cache lines and request logs from
//! empty.
//!
//! Checkout order is irrelevant to results: an arena carries no visit state
//! between checkouts that the loader does not reset, so which worker draws
//! which arena can never change a report (the atlas thread-invariance tests
//! cover this end to end).

use crate::scratch::VisitScratch;
use std::ops::{Deref, DerefMut};
use std::sync::Mutex;

/// A thread-safe pool of recycled [`VisitScratch`] arenas.
///
/// All arenas in one pool share a configuration (NetLog recording, cost
/// accounting), fixed at pool construction — a checked-out arena is always
/// ready to use as-is.
#[derive(Debug)]
pub struct ScratchPool {
    idle: Mutex<Vec<VisitScratch>>,
    netlog_enabled: bool,
    cost_enabled: bool,
}

impl ScratchPool {
    /// A pool of measurement-compatible arenas ([`VisitScratch::new`]:
    /// NetLog recording on, cost accounting on).
    pub fn new() -> Self {
        ScratchPool { idle: Mutex::new(Vec::new()), netlog_enabled: true, cost_enabled: true }
    }

    /// A pool of streaming-path arenas ([`VisitScratch::without_netlog`]) —
    /// what chunked crawl executors want.
    pub fn without_netlog() -> Self {
        ScratchPool { netlog_enabled: false, ..ScratchPool::new() }
    }

    /// Enable or disable cost accounting for every arena this pool hands out
    /// (on by default).
    pub fn with_cost_accounting(mut self, enabled: bool) -> Self {
        self.cost_enabled = enabled;
        self
    }

    /// Check an arena out: recycle an idle one, or build a fresh one if the
    /// pool has run dry. The arena returns to the pool when the guard drops.
    pub fn checkout(&self) -> PooledScratch<'_> {
        let recycled = self.idle.lock().expect("scratch pool poisoned").pop();
        let scratch = recycled.unwrap_or_else(|| {
            let base = if self.netlog_enabled { VisitScratch::new() } else { VisitScratch::without_netlog() };
            base.with_cost_accounting(self.cost_enabled)
        });
        PooledScratch { pool: self, scratch: Some(scratch) }
    }

    /// Number of idle arenas currently waiting in the pool.
    pub fn idle_arenas(&self) -> usize {
        self.idle.lock().expect("scratch pool poisoned").len()
    }
}

impl Default for ScratchPool {
    /// Same as [`ScratchPool::new`].
    fn default() -> Self {
        ScratchPool::new()
    }
}

/// RAII guard over a checked-out [`VisitScratch`]; dereferences to the arena
/// and returns it to its pool on drop.
#[derive(Debug)]
pub struct PooledScratch<'pool> {
    pool: &'pool ScratchPool,
    scratch: Option<VisitScratch>,
}

impl Deref for PooledScratch<'_> {
    type Target = VisitScratch;

    fn deref(&self) -> &VisitScratch {
        self.scratch.as_ref().expect("scratch present until drop")
    }
}

impl DerefMut for PooledScratch<'_> {
    fn deref_mut(&mut self) -> &mut VisitScratch {
        self.scratch.as_mut().expect("scratch present until drop")
    }
}

impl Drop for PooledScratch<'_> {
    fn drop(&mut self) {
        if let Some(scratch) = self.scratch.take() {
            self.pool.idle.lock().expect("scratch pool poisoned").push(scratch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_builds_fresh_arenas_and_drop_returns_them() {
        let pool = ScratchPool::without_netlog();
        assert_eq!(pool.idle_arenas(), 0);
        {
            let first = pool.checkout();
            let second = pool.checkout();
            assert_eq!(pool.idle_arenas(), 0);
            assert!(!first.netlog_enabled());
            assert!(second.cost_enabled());
        }
        assert_eq!(pool.idle_arenas(), 2);
    }

    #[test]
    fn recycled_arenas_are_reused_not_regrown() {
        let pool = ScratchPool::new();
        drop(pool.checkout());
        assert_eq!(pool.idle_arenas(), 1);
        // The second checkout drains the idle arena instead of building a
        // new one.
        let guard = pool.checkout();
        assert_eq!(pool.idle_arenas(), 0);
        assert!(guard.netlog_enabled());
        drop(guard);
        assert_eq!(pool.idle_arenas(), 1);
    }

    #[test]
    fn pool_configuration_reaches_every_arena() {
        let pool = ScratchPool::without_netlog().with_cost_accounting(false);
        let arena = pool.checkout();
        assert!(!arena.netlog_enabled());
        assert!(!arena.cost_enabled());
    }

    #[test]
    fn arenas_can_be_checked_out_from_worker_threads() {
        let pool = ScratchPool::without_netlog();
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    let arena = pool.checkout();
                    assert!(!arena.netlog_enabled());
                });
            }
        });
        // Each worker returned its arena; how many distinct arenas were built
        // depends on how the threads interleaved (full overlap builds three,
        // sequential execution recycles one).
        let idle = pool.idle_arenas();
        assert!((1..=3).contains(&idle), "expected 1..=3 idle arenas, found {idle}");
    }
}
