//! Deterministic fault injection and recovery policy.
//!
//! The cost engine prices the redundancy tax under a perfect network; this
//! module prices the other side of the trade: connection reuse and
//! coalescing concentrate a page on fewer connections, so one reset or dead
//! pooled connection has a larger blast radius, while sharding spreads it.
//!
//! [`FaultProfile`] holds integer parts-per-million rates for five failure
//! processes (the same style as the loss model — integers only, `0` means
//! the process is off *and consumes no randomness*):
//!
//! - **DNS failure** — a SERVFAIL/lost query before the authority walk runs.
//! - **TLS handshake failure** — the dial burns its full setup latency and
//!   the client's first flight, then aborts.
//! - **Mid-transfer reset** — the transport dies under an in-flight request;
//!   the request is retried on a fresh connection.
//! - **Dead on reuse** — a parked pooled connection turns out to be dead when
//!   the session lends it out (the server hung up while it idled).
//! - **GOAWAY mid-page** — the server announces shutdown after a response;
//!   in-flight streams finish but the connection accepts no new ones.
//!
//! All draws come from a per-visit `fork("fault")` of the visit RNG, so the
//! fault stream never perturbs the loader's existing draws: with every rate
//! at zero, runs are byte-identical to a build without this module. See
//! ARCHITECTURE.md ("The failure model & recovery") for the draw ordering
//! contract.
//!
//! [`RetryPolicy`] bounds recovery: attempts per resource, exponential
//! backoff with deterministic jitter charged to the virtual clock, and a
//! per-resource stage budget that caps the total backoff wait. When retries
//! exhaust, the visit degrades gracefully — the resource is counted in
//! [`VisitOutcome::Degraded`] instead of panicking the crawl.

use netsim_types::{Duration, SimRng};
use serde::{Deserialize, Serialize};

/// Integer-ppm rates for the five failure processes. `Default` is fully
/// inert: every rate zero, no randomness consumed anywhere.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultProfile {
    /// Probability (ppm) that one DNS resolution attempt fails.
    pub dns_failure_ppm: u32,
    /// Probability (ppm) that one TLS dial attempt fails after burning its
    /// full setup latency.
    pub tls_failure_ppm: u32,
    /// Probability (ppm) that one request's transfer is cut by a transport
    /// reset.
    pub reset_ppm: u32,
    /// Probability (ppm) that a pooled connection is dead when lent.
    pub dead_on_reuse_ppm: u32,
    /// Probability (ppm) that the server sends GOAWAY after a response.
    pub goaway_ppm: u32,
}

impl FaultProfile {
    /// Every process at the same rate — the chaos experiment's failure
    /// levels.
    pub fn uniform(ppm: u32) -> Self {
        FaultProfile {
            dns_failure_ppm: ppm,
            tls_failure_ppm: ppm,
            reset_ppm: ppm,
            dead_on_reuse_ppm: ppm,
            goaway_ppm: ppm,
        }
    }

    /// `true` when every rate is zero — the default — in which case the
    /// fault layer draws nothing and charges nothing.
    pub fn is_inert(&self) -> bool {
        *self == FaultProfile::default()
    }
}

/// Bounded-retry policy: how a visit recovers from an injected fault.
///
/// All quantities are integers on the virtual clock. The backoff before
/// attempt `k` (the first attempt is `1` and waits nothing) is
/// `base_backoff × multiplier^(k-2)` plus a deterministic additive jitter of
/// up to `jitter_ppm` parts-per-million of the backoff, drawn from the
/// visit's fault stream. Cumulative backoff per resource is capped by
/// `stage_budget`: a retry whose wait would burst the budget is abandoned
/// instead, degrading the visit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts per resource stage (first try included); at least 1.
    pub max_attempts: u32,
    /// Backoff before the second attempt.
    pub base_backoff: Duration,
    /// Multiplier applied to the backoff on each further attempt.
    pub backoff_multiplier: u64,
    /// Additive jitter ceiling, in parts-per-million of the backoff.
    pub jitter_ppm: u32,
    /// Cap on the *cumulative* backoff wait per resource.
    pub stage_budget: Duration,
    /// Hedge new dials: race a second connection attempt against the first
    /// (Vulimiri et al., "Low Latency via Redundancy"). A dial then only
    /// fails when *both* attempts draw a failure, it pays no backoff —
    /// the hedge was already in flight — and every hedged dial charges a
    /// second handshake's octets to the wire.
    pub hedged_dials: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(100),
            backoff_multiplier: 2,
            jitter_ppm: 250_000,
            stage_budget: Duration::from_secs(10),
            hedged_dials: false,
        }
    }
}

impl RetryPolicy {
    /// The deterministic backoff charged before attempt `attempt` (1-based).
    /// Attempt 1 waits nothing, and so does every attempt under a hedged
    /// policy (the redundant dial was already racing). Consumes exactly one
    /// draw from `rng` when a nonzero-jitter wait is computed, none
    /// otherwise.
    pub fn backoff_before(&self, attempt: u32, rng: &mut SimRng) -> Duration {
        if attempt <= 1 || self.hedged_dials {
            return Duration::ZERO;
        }
        let exponent = attempt.saturating_sub(2);
        let factor = self.backoff_multiplier.saturating_pow(exponent);
        let base = self.base_backoff.as_millis().saturating_mul(factor);
        let jitter = if self.jitter_ppm == 0 || base == 0 {
            0
        } else {
            let draw = rng.in_range(0..=self.jitter_ppm) as u64;
            base.saturating_mul(draw) / 1_000_000
        };
        Duration::from_millis(base.saturating_add(jitter))
    }

    /// Attempts clamped to at least one, so a malformed policy can never
    /// suppress the first try.
    pub fn attempts(&self) -> u32 {
        self.max_attempts.max(1)
    }
}

/// How a page visit ended once the fault layer has had its say.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum VisitOutcome {
    /// Every resource was fetched (possibly after retries).
    #[default]
    Complete,
    /// Some resources exhausted their retry budget and were abandoned; the
    /// page rendered without them.
    Degraded {
        /// Resources given up on.
        failed_resources: u64,
    },
}

impl VisitOutcome {
    /// Build the outcome from a failed-resource count.
    pub fn from_failures(failed_resources: u64) -> Self {
        if failed_resources == 0 {
            VisitOutcome::Complete
        } else {
            VisitOutcome::Degraded { failed_resources }
        }
    }

    /// `true` for [`VisitOutcome::Complete`].
    pub fn is_complete(&self) -> bool {
        matches!(self, VisitOutcome::Complete)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_default_profile_is_inert() {
        assert!(FaultProfile::default().is_inert());
        assert!(!FaultProfile::uniform(1).is_inert());
        assert!(!FaultProfile { goaway_ppm: 5, ..Default::default() }.is_inert());
        assert_eq!(FaultProfile::uniform(0), FaultProfile::default());
    }

    #[test]
    fn backoff_grows_exponentially_and_first_attempt_is_free() {
        let policy = RetryPolicy { jitter_ppm: 0, ..Default::default() };
        let mut rng = SimRng::new(1);
        assert_eq!(policy.backoff_before(1, &mut rng), Duration::ZERO);
        assert_eq!(policy.backoff_before(2, &mut rng), Duration::from_millis(100));
        assert_eq!(policy.backoff_before(3, &mut rng), Duration::from_millis(200));
        assert_eq!(policy.backoff_before(4, &mut rng), Duration::from_millis(400));
    }

    #[test]
    fn jitter_is_deterministic_bounded_and_additive() {
        let policy = RetryPolicy::default(); // jitter_ppm = 250_000 → ≤ +25 %
        let a = policy.backoff_before(2, &mut SimRng::new(9));
        let b = policy.backoff_before(2, &mut SimRng::new(9));
        assert_eq!(a, b, "same seed, same wait");
        assert!(a >= Duration::from_millis(100));
        assert!(a <= Duration::from_millis(125));
    }

    #[test]
    fn zero_jitter_consumes_no_randomness() {
        let policy = RetryPolicy { jitter_ppm: 0, ..Default::default() };
        let mut drawn = SimRng::new(4);
        let mut untouched = SimRng::new(4);
        let _ = policy.backoff_before(3, &mut drawn);
        assert_eq!(drawn.in_range(0..=u64::MAX), untouched.in_range(0..=u64::MAX));
    }

    #[test]
    fn hedged_policies_never_wait() {
        let policy = RetryPolicy { hedged_dials: true, ..Default::default() };
        let mut rng = SimRng::new(2);
        for attempt in 1..=4 {
            assert_eq!(policy.backoff_before(attempt, &mut rng), Duration::ZERO);
        }
    }

    #[test]
    fn attempts_are_clamped_to_at_least_one() {
        assert_eq!(RetryPolicy { max_attempts: 0, ..Default::default() }.attempts(), 1);
        assert_eq!(RetryPolicy::default().attempts(), 3);
    }

    #[test]
    fn outcome_reports_failed_resources() {
        assert!(VisitOutcome::from_failures(0).is_complete());
        assert_eq!(VisitOutcome::from_failures(2), VisitOutcome::Degraded { failed_resources: 2 });
        assert_eq!(VisitOutcome::default(), VisitOutcome::Complete);
    }
}
