//! The first-class HTTP/2 connection pool: the lifecycle layer between the
//! pages of a multi-page user session.
//!
//! Single-page visits treat the set of open connections as visit-local state
//! that dies with the page. Real browsers keep a session pool keyed per
//! `(scheme, host, port)` × credentials partition, and its lifecycle policies
//! — idle timeouts, a max-size cap with LRU eviction, and the server's own
//! lifetime churn — decide how much of a page's setup cost the *next* page
//! gets for free. [`ConnectionPool`] models exactly those three policies:
//!
//! * **Idle timeout** — a connection unused for longer than
//!   [`PoolConfig::idle_timeout`] is closed when the next page starts
//!   ([`netsim_h2::CloseReason::IdleTimeout`]).
//! * **Max-size cap** — after a page's connections are absorbed, the pool
//!   evicts least-recently-used entries down to
//!   [`PoolConfig::max_connections`] ([`netsim_h2::CloseReason::PoolCapacity`]).
//! * **Server lifetime churn** — each newly pooled connection samples the
//!   browser's [`ConnectionDurationModel`] once: with the model's close
//!   probability the server will tear it down `0.5×..2×` the median lifetime
//!   after establishment ([`netsim_h2::CloseReason::ServerLifetime`]).
//!
//! The pool participates in the zero-allocation visit fast path: lending and
//! absorbing move `Connection` values between pre-grown vectors, closed
//! connections recycle into the scratch's shell pool, and eviction decisions
//! are comparisons over `Copy` metadata. Determinism contract: entries are
//! processed in insertion order, the churn draw happens exactly once per
//! connection at absorb time (in establishment order), and the LRU victim
//! order is total — `(last_used_at, established_at, id)` — so an
//! eviction-heavy run is as reproducible as an eviction-free one.

use crate::config::ConnectionDurationModel;
use crate::fault::FaultProfile;
use netsim_h2::{CloseReason, Connection, ConnectionState};
use netsim_types::{ConnectionId, Duration, Instant, Origin, SimRng};
use serde::{Deserialize, Serialize};

/// Lifecycle policy knobs of a [`ConnectionPool`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolConfig {
    /// Maximum pooled connections; LRU eviction beyond it. Chromium's
    /// per-pool cap is 6 sockets per group / 256 total — the default here is
    /// a small whole-pool cap in the same spirit.
    pub max_connections: usize,
    /// How long an unused connection may sit in the pool before the client
    /// closes it.
    pub idle_timeout: Duration,
}

impl Default for PoolConfig {
    fn default() -> Self {
        // Chromium keeps idle sockets for ~60 s (10 s if unused-but-fresh
        // sockets are counted separately); 8 pooled connections comfortably
        // covers the median page's origin set.
        PoolConfig { max_connections: 8, idle_timeout: Duration::from_secs(60) }
    }
}

/// Lifecycle counters of one pool (or, merged, of a whole fleet cell).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolLifecycleStats {
    /// Connections newly absorbed into the pool.
    pub inserted: u64,
    /// Connections handed to a page alive (the cross-page reuse supply).
    pub lent: u64,
    /// Connections closed by the client's idle timeout.
    pub idle_expired: u64,
    /// Connections closed by the server's lifetime churn.
    pub lifetime_churned: u64,
    /// LRU victims of the max-size cap.
    pub capacity_evicted: u64,
    /// Connections still pooled when the session ended.
    pub session_closed: u64,
    /// Parked connections that were dead when the session tried to lend them
    /// (the fault model's dead-on-reuse process).
    pub dead_on_reuse: u64,
}

impl PoolLifecycleStats {
    /// Merge another pool's counters (associative, order-insensitive).
    pub fn merge(&mut self, other: &PoolLifecycleStats) {
        self.inserted += other.inserted;
        self.lent += other.lent;
        self.idle_expired += other.idle_expired;
        self.lifetime_churned += other.lifetime_churned;
        self.capacity_evicted += other.capacity_evicted;
        self.session_closed += other.session_closed;
        self.dead_on_reuse += other.dead_on_reuse;
    }

    /// Every connection the pool closed, for any reason.
    pub fn closed(&self) -> u64 {
        self.idle_expired
            + self.lifetime_churned
            + self.capacity_evicted
            + self.session_closed
            + self.dead_on_reuse
    }
}

/// One pooled connection plus the lifecycle metadata the policies need.
#[derive(Clone, Debug)]
struct PoolEntry {
    connection: Connection,
    /// End of the last page that sent a request on this connection.
    last_used_at: Instant,
    /// When the server's sampled lifetime tears the connection down;
    /// `None` for the (majority of) connections the server keeps open.
    expires_at: Option<Instant>,
}

/// Metadata retained while a connection is lent to a page's scratch.
#[derive(Clone, Copy, Debug)]
struct LentEntry {
    id: ConnectionId,
    last_used_at: Instant,
    expires_at: Option<Instant>,
    /// `requests_sent` at lend time — if it grew, the page used the
    /// connection and its LRU clock advances to the page end.
    requests_at_lend: u64,
}

/// A session's connection pool. See the module docs for the lifecycle model.
#[derive(Clone, Debug, Default)]
pub struct ConnectionPool {
    config: PoolConfig,
    /// Pooled entries in insertion order (oldest first).
    entries: Vec<PoolEntry>,
    /// Metadata of entries currently lent to a page.
    lent: Vec<LentEntry>,
    stats: PoolLifecycleStats,
}

impl ConnectionPool {
    /// An empty pool with the given lifecycle policy.
    pub fn new(config: PoolConfig) -> Self {
        ConnectionPool { config, entries: Vec::new(), lent: Vec::new(), stats: PoolLifecycleStats::default() }
    }

    /// The pool's lifecycle policy.
    pub fn config(&self) -> PoolConfig {
        self.config
    }

    /// Lifecycle counters accumulated so far.
    pub fn stats(&self) -> PoolLifecycleStats {
        self.stats
    }

    /// Number of pooled (not lent) connections.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing is pooled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Keyed lookup: the pooled connection for the `(scheme, host, port)` ×
    /// credentials-partition key that is still live at `now`, if any. The
    /// loader's in-page scan performs the same match over lent connections;
    /// this is the pool-side API (and what the unit tests pin).
    pub fn find(&self, origin: &Origin, credentialed: bool, now: Instant) -> Option<&Connection> {
        self.entries
            .iter()
            .find(|entry| {
                entry.connection.initial_origin == *origin
                    && entry.connection.credentialed == credentialed
                    && self.entry_live_at(entry, now)
            })
            .map(|entry| &entry.connection)
    }

    /// `true` if the entry survives every lifecycle policy at `now`.
    fn entry_live_at(&self, entry: &PoolEntry, now: Instant) -> bool {
        entry.connection.can_open_stream()
            && entry.expires_at.map(|expires| now < expires).unwrap_or(true)
            && now.since(entry.last_used_at) <= self.config.idle_timeout
    }

    /// Start a page: move every pooled connection that survives the idle
    /// timeout and the server lifetime at `now` into `connections` (the
    /// page's live set); close the rest and recycle them into `shells`.
    ///
    /// Each surviving connection additionally rolls the fault model's
    /// dead-on-reuse process (`faults.dead_on_reuse_ppm`, in insertion order,
    /// off the visit's fault stream — a zero rate consumes no randomness):
    /// a parked connection the server silently hung up on closes here
    /// ([`netsim_h2::CloseReason::DeadOnReuse`]) instead of being lent, and
    /// the page re-dials on first use. Returns how many connections died
    /// this way so the loader can charge the visit timeline.
    ///
    /// Must alternate with [`ConnectionPool::absorb`] — the pool keeps
    /// per-connection metadata aside while its connections are lent out.
    pub fn lend(
        &mut self,
        now: Instant,
        connections: &mut Vec<Connection>,
        shells: &mut Vec<Connection>,
        faults: &FaultProfile,
        rng: &mut SimRng,
    ) -> u64 {
        debug_assert!(self.lent.is_empty(), "lend/absorb must alternate");
        let mut dead = 0;
        for mut entry in self.entries.drain(..) {
            if let Some(expires) = entry.expires_at.filter(|expires| *expires <= now) {
                entry.connection.close_with_reason(expires, CloseReason::ServerLifetime);
                self.stats.lifetime_churned += 1;
                shells.push(entry.connection);
            } else if now.since(entry.last_used_at) > self.config.idle_timeout {
                let closed_at = entry.last_used_at + self.config.idle_timeout;
                entry.connection.close_with_reason(closed_at, CloseReason::IdleTimeout);
                self.stats.idle_expired += 1;
                shells.push(entry.connection);
            } else if rng.chance_ppm(faults.dead_on_reuse_ppm) {
                entry.connection.close_with_reason(now, CloseReason::DeadOnReuse);
                self.stats.dead_on_reuse += 1;
                dead += 1;
                shells.push(entry.connection);
            } else {
                self.stats.lent += 1;
                self.lent.push(LentEntry {
                    id: entry.connection.id,
                    last_used_at: entry.last_used_at,
                    expires_at: entry.expires_at,
                    requests_at_lend: entry.connection.requests_sent,
                });
                connections.push(entry.connection);
            }
        }
        dead
    }

    /// End a page: drain the page's live set back into the pool. Newly
    /// opened connections sample the server-lifetime churn model exactly
    /// once (in establishment order, off the visit's `rng` stream); returning
    /// lent connections keep their original draw. Connections that can no
    /// longer carry streams — or whose sampled lifetime already passed —
    /// close and recycle into `shells`, and the pool then evicts LRU victims
    /// down to its max-size cap.
    pub fn absorb(
        &mut self,
        now: Instant,
        connections: &mut Vec<Connection>,
        shells: &mut Vec<Connection>,
        rng: &mut SimRng,
        churn: &ConnectionDurationModel,
    ) {
        for mut connection in connections.drain(..) {
            if connection.state != ConnectionState::Open {
                shells.push(connection);
                continue;
            }
            let returning = self.lent.iter().find(|lent| lent.id == connection.id).copied();
            let (last_used_at, expires_at) = match returning {
                Some(lent) => {
                    let used_this_page = connection.requests_sent > lent.requests_at_lend;
                    (if used_this_page { now } else { lent.last_used_at }, lent.expires_at)
                }
                None => {
                    self.stats.inserted += 1;
                    (now, sample_server_lifetime(rng, churn, connection.established_at))
                }
            };
            if let Some(expires) = expires_at.filter(|expires| *expires <= now) {
                connection.close_with_reason(expires, CloseReason::ServerLifetime);
                self.stats.lifetime_churned += 1;
                shells.push(connection);
                continue;
            }
            self.entries.push(PoolEntry { connection, last_used_at, expires_at });
        }
        self.lent.clear();
        while self.entries.len() > self.config.max_connections {
            let victim = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, entry)| {
                    (entry.last_used_at, entry.connection.established_at, entry.connection.id)
                })
                .map(|(index, _)| index);
            // `entries.len() > cap ≥ 0` means the pool is non-empty, so a
            // victim always exists; stay total anyway — a broken invariant
            // must never abort a crawl mid-run.
            let Some(victim) = victim else {
                debug_assert!(false, "pool over capacity is non-empty");
                break;
            };
            let mut entry = self.entries.remove(victim);
            entry.connection.close_with_reason(now, CloseReason::PoolCapacity);
            self.stats.capacity_evicted += 1;
            shells.push(entry.connection);
        }
    }

    /// End the session: close every pooled connection
    /// ([`netsim_h2::CloseReason::SessionEnd`]) and recycle it into `shells`.
    pub fn drain_all(&mut self, now: Instant, shells: &mut Vec<Connection>) {
        debug_assert!(self.lent.is_empty(), "cannot end a session mid-page");
        for mut entry in self.entries.drain(..) {
            entry.connection.close_with_reason(now, CloseReason::SessionEnd);
            self.stats.session_closed += 1;
            shells.push(entry.connection);
        }
    }

    /// Take the accumulated lifecycle counters, resetting them to zero.
    pub fn take_stats(&mut self) -> PoolLifecycleStats {
        std::mem::take(&mut self.stats)
    }
}

/// One draw of the server-side duration model: `Some(teardown_instant)` with
/// the model's close probability, `None` (server keeps it open) otherwise.
/// The lifetime distribution is a `0.5×..2×`-the-median spread.
///
/// This is **the** lifetime sampler — the single-page loader's post-hoc
/// duration pass and the session pool's absorb both call it, so the two
/// paths draw from the identical distribution in the identical RNG order
/// (`chance`, then `unit` only when the close fires; pinned by
/// `loader::tests::loader_duration_pass_matches_the_pool_sampler`). The
/// pool samples it *once per connection* so the draw is independent of how
/// many pages the connection survives.
pub(crate) fn sample_server_lifetime(
    rng: &mut SimRng,
    churn: &ConnectionDurationModel,
    established_at: Instant,
) -> Option<Instant> {
    match *churn {
        ConnectionDurationModel::KeepOpen => None,
        ConnectionDurationModel::IdleTimeouts { close_probability, median_lifetime_secs } => {
            if rng.chance(close_probability) {
                let factor = 0.5 + rng.unit() * 1.5;
                let lifetime = Duration::from_millis((median_lifetime_secs as f64 * 1000.0 * factor) as u64);
                Some(established_at + lifetime)
            } else {
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim_h2::Settings;

    /// The documented exception to the all-integer virtual clock (see the
    /// determinism-contract section of ARCHITECTURE.md): the lifetime spread
    /// `0.5 + unit() * 1.5` is `f64` math. It is stable anyway — IEEE 754
    /// multiplication/addition are exactly specified, `ChaCha12` produces
    /// identical `unit()` draws from a seed everywhere, and the final
    /// `as u64` cast truncates deterministically — so the sampled
    /// *milliseconds* are bit-identical across platforms. This test pins the
    /// exact values; if it ever fails on some target, the exception has
    /// stopped being safe and the spread must move to integer-millis
    /// sampling (regenerating every golden that records connection closes).
    #[test]
    fn lifetime_sampler_is_bit_stable_across_platforms() {
        let model =
            ConnectionDurationModel::IdleTimeouts { close_probability: 1.0, median_lifetime_secs: 122 };
        let mut rng = SimRng::new(42);
        let drawn: Vec<u64> = (0..5)
            .map(|_| {
                let closed = sample_server_lifetime(&mut rng, &model, Instant::EPOCH)
                    .expect("close_probability 1.0 always closes");
                (closed - Instant::EPOCH).as_millis()
            })
            .collect();
        assert_eq!(drawn, vec![116_528, 151_353, 105_206, 206_386, 202_719]);

        // KeepOpen consumes no randomness at all: the stream is exactly
        // where the draws above left it.
        let mut probe = rng.clone();
        assert_eq!(
            sample_server_lifetime(&mut rng, &ConnectionDurationModel::KeepOpen, Instant::EPOCH),
            None
        );
        assert_eq!(rng.unit().to_bits(), probe.unit().to_bits());
    }
    use netsim_tls::{Certificate, CertificateStore, IssuancePolicy, Issuer};
    use netsim_types::{DomainName, IpAddr};
    use std::sync::Arc;

    fn certificate(domain: &str) -> Arc<Certificate> {
        let mut store = CertificateStore::new();
        let names = vec![DomainName::literal(domain)];
        let ids =
            store.issue_with_policy(Issuer::digicert(), &IssuancePolicy::SharedSan, &names, Instant::EPOCH);
        Arc::clone(store.get_arc(ids[0]).unwrap())
    }

    fn connection(id: u64, domain: &str, established_ms: u64) -> Connection {
        Connection::establish(
            ConnectionId(id),
            Origin::https(DomainName::literal(domain)),
            IpAddr::new(10, 0, 0, id as u8),
            certificate(domain),
            true,
            Instant::from_millis(established_ms),
            Settings::default(),
        )
    }

    fn absorb_fresh(pool: &mut ConnectionPool, now: Instant, fresh: Vec<Connection>) -> Vec<Connection> {
        let mut connections = fresh;
        let mut shells = Vec::new();
        let mut rng = SimRng::new(7);
        pool.absorb(now, &mut connections, &mut shells, &mut rng, &ConnectionDurationModel::KeepOpen);
        shells
    }

    #[test]
    fn find_matches_origin_and_credentials_partition() {
        let mut pool = ConnectionPool::new(PoolConfig::default());
        let mut credentialed = connection(1, "www.example.com", 0);
        credentialed.credentialed = true;
        let mut anonymous = connection(2, "www.example.com", 0);
        anonymous.credentialed = false;
        absorb_fresh(&mut pool, Instant::from_millis(100), vec![credentialed, anonymous]);

        let origin = Origin::https(DomainName::literal("www.example.com"));
        let now = Instant::from_millis(200);
        assert_eq!(pool.find(&origin, true, now).unwrap().id, ConnectionId(1));
        assert_eq!(pool.find(&origin, false, now).unwrap().id, ConnectionId(2));
        let other = Origin::https(DomainName::literal("cdn.example.com"));
        assert!(pool.find(&other, true, now).is_none());
    }

    #[test]
    fn idle_timeout_closes_on_lend_and_hides_from_find() {
        let config = PoolConfig { max_connections: 8, idle_timeout: Duration::from_secs(10) };
        let mut pool = ConnectionPool::new(config);
        absorb_fresh(&mut pool, Instant::from_millis(1_000), vec![connection(1, "www.example.com", 0)]);

        let origin = Origin::https(DomainName::literal("www.example.com"));
        // Inside the timeout: visible and lendable.
        assert!(pool.find(&origin, true, Instant::from_millis(9_000)).is_some());
        // Past it: invisible to find…
        assert!(pool.find(&origin, true, Instant::from_millis(12_000)).is_none());
        // …and closed (with the idle reason, at the timeout instant) on lend.
        let mut live = Vec::new();
        let mut shells = Vec::new();
        pool.lend(
            Instant::from_millis(12_000),
            &mut live,
            &mut shells,
            &FaultProfile::default(),
            &mut SimRng::new(0),
        );
        assert!(live.is_empty());
        assert_eq!(shells.len(), 1);
        assert_eq!(shells[0].close_reason, Some(CloseReason::IdleTimeout));
        assert_eq!(shells[0].closed_at, Some(Instant::from_millis(11_000)));
        assert_eq!(pool.stats().idle_expired, 1);
    }

    #[test]
    fn lru_eviction_is_deterministic_and_keeps_the_most_recent() {
        let config = PoolConfig { max_connections: 2, idle_timeout: Duration::from_mins(10) };
        let mut pool = ConnectionPool::new(config);
        // Three connections absorbed at the same instant: LRU falls back to
        // establishment time, then id — connection 1 is the victim.
        let shells = absorb_fresh(
            &mut pool,
            Instant::from_millis(5_000),
            vec![
                connection(1, "a.example.com", 100),
                connection(2, "b.example.com", 200),
                connection(3, "c.example.com", 300),
            ],
        );
        assert_eq!(shells.len(), 1);
        assert_eq!(shells[0].id, ConnectionId(1));
        assert_eq!(shells[0].close_reason, Some(CloseReason::PoolCapacity));
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.stats().capacity_evicted, 1);
    }

    #[test]
    fn unused_lent_connections_keep_their_lru_clock() {
        let config = PoolConfig { max_connections: 1, idle_timeout: Duration::from_mins(10) };
        let mut pool = ConnectionPool::new(config);
        absorb_fresh(&mut pool, Instant::from_millis(1_000), vec![connection(1, "a.example.com", 100)]);

        // Lend it out for a page that never uses it, and absorb it back
        // together with a fresh connection the page did open.
        let mut live = Vec::new();
        let mut shells = Vec::new();
        pool.lend(
            Instant::from_millis(2_000),
            &mut live,
            &mut shells,
            &FaultProfile::default(),
            &mut SimRng::new(0),
        );
        assert_eq!(live.len(), 1);
        live.push(connection(2, "b.example.com", 2_100));
        let mut rng = SimRng::new(7);
        pool.absorb(
            Instant::from_millis(3_000),
            &mut live,
            &mut shells,
            &mut rng,
            &ConnectionDurationModel::KeepOpen,
        );
        // Cap 1: the unused returnee (LRU clock still at 1 000) loses to the
        // fresh connection (used at 3 000).
        assert_eq!(pool.len(), 1);
        let survivor = pool.find(
            &Origin::https(DomainName::literal("b.example.com")),
            true,
            Instant::from_millis(3_100),
        );
        assert!(survivor.is_some());
        assert_eq!(shells.iter().filter(|s| s.id == ConnectionId(1)).count(), 1);
    }

    #[test]
    fn server_lifetime_churn_closes_at_the_sampled_instant() {
        let churn =
            ConnectionDurationModel::IdleTimeouts { close_probability: 1.0, median_lifetime_secs: 10 };
        let mut pool = ConnectionPool::new(PoolConfig::default());
        let mut connections = vec![connection(1, "a.example.com", 0)];
        let mut shells = Vec::new();
        let mut rng = SimRng::new(42);
        pool.absorb(Instant::from_millis(100), &mut connections, &mut shells, &mut rng, &churn);
        assert_eq!(pool.len(), 1, "sampled lifetime (5–20 s) has not passed at absorb time");

        // Far past any possible draw: the next lend tears it down.
        let mut live = Vec::new();
        pool.lend(
            Instant::from_millis(30_000),
            &mut live,
            &mut shells,
            &FaultProfile::default(),
            &mut SimRng::new(0),
        );
        assert!(live.is_empty());
        assert_eq!(shells.len(), 1);
        assert_eq!(shells[0].close_reason, Some(CloseReason::ServerLifetime));
        let closed_at = shells[0].closed_at.expect("churned connections record a close time");
        // 0.5×..2× the 10 s median, anchored at establishment.
        assert!(closed_at >= Instant::from_millis(5_000) && closed_at <= Instant::from_millis(20_000));
        assert_eq!(pool.stats().lifetime_churned, 1);
    }

    #[test]
    fn drain_all_closes_everything_with_session_end() {
        let mut pool = ConnectionPool::new(PoolConfig::default());
        absorb_fresh(
            &mut pool,
            Instant::from_millis(500),
            vec![connection(1, "a.example.com", 0), connection(2, "b.example.com", 0)],
        );
        let mut shells = Vec::new();
        pool.drain_all(Instant::from_millis(9_000), &mut shells);
        assert!(pool.is_empty());
        assert_eq!(shells.len(), 2);
        assert!(shells.iter().all(|s| s.close_reason == Some(CloseReason::SessionEnd)));
        let stats = pool.take_stats();
        assert_eq!(stats.session_closed, 2);
        assert_eq!(stats.inserted, 2);
        assert_eq!(stats.closed(), 2);
        assert_eq!(pool.stats(), PoolLifecycleStats::default());
    }

    #[test]
    fn zero_capacity_pools_evict_everything_without_panicking() {
        // A malformed `PoolConfig` (cap 0) must degrade into "pool nothing",
        // never abort the crawl: the eviction loop is total.
        let config = PoolConfig { max_connections: 0, idle_timeout: Duration::from_secs(60) };
        let mut pool = ConnectionPool::new(config);
        let shells = absorb_fresh(
            &mut pool,
            Instant::from_millis(1_000),
            vec![connection(1, "a.example.com", 0), connection(2, "b.example.com", 0)],
        );
        assert!(pool.is_empty());
        assert_eq!(shells.len(), 2);
        assert!(shells.iter().all(|s| s.close_reason == Some(CloseReason::PoolCapacity)));
        assert_eq!(pool.stats().capacity_evicted, 2);
    }

    #[test]
    fn probability_edges_of_the_lifetime_sampler_are_total() {
        // Out-of-range and NaN close probabilities must never panic: chance()
        // clamps, NaN compares false, and a zero median closes immediately.
        let mut rng = SimRng::new(3);
        for probability in [-1.0, 0.0, f64::NAN] {
            let model = ConnectionDurationModel::IdleTimeouts {
                close_probability: probability,
                median_lifetime_secs: 122,
            };
            assert_eq!(sample_server_lifetime(&mut rng, &model, Instant::EPOCH), None, "{probability}");
        }
        let certain =
            ConnectionDurationModel::IdleTimeouts { close_probability: 2.0, median_lifetime_secs: 0 };
        assert_eq!(
            sample_server_lifetime(&mut rng, &certain, Instant::EPOCH),
            Some(Instant::EPOCH),
            "a zero median closes at establishment"
        );
    }

    #[test]
    fn dead_on_reuse_closes_at_lend_and_reports_the_count() {
        let mut pool = ConnectionPool::new(PoolConfig::default());
        absorb_fresh(
            &mut pool,
            Instant::from_millis(1_000),
            vec![connection(1, "a.example.com", 0), connection(2, "b.example.com", 0)],
        );
        let mut live = Vec::new();
        let mut shells = Vec::new();
        let faults = FaultProfile { dead_on_reuse_ppm: 1_000_000, ..Default::default() };
        let dead =
            pool.lend(Instant::from_millis(2_000), &mut live, &mut shells, &faults, &mut SimRng::new(5));
        assert_eq!(dead, 2);
        assert!(live.is_empty());
        assert_eq!(shells.len(), 2);
        assert!(shells.iter().all(|s| s.close_reason == Some(CloseReason::DeadOnReuse)));
        assert!(shells.iter().all(|s| s.closed_at == Some(Instant::from_millis(2_000))));
        let stats = pool.stats();
        assert_eq!(stats.dead_on_reuse, 2);
        assert_eq!(stats.lent, 0);
        assert_eq!(stats.closed(), 2);
    }

    #[test]
    fn inert_fault_profiles_consume_no_randomness_at_lend() {
        let mut pool = ConnectionPool::new(PoolConfig::default());
        absorb_fresh(&mut pool, Instant::from_millis(1_000), vec![connection(1, "a.example.com", 0)]);
        let mut live = Vec::new();
        let mut shells = Vec::new();
        let mut rng = SimRng::new(11);
        let mut probe = rng.clone();
        let dead = pool.lend(
            Instant::from_millis(2_000),
            &mut live,
            &mut shells,
            &FaultProfile::default(),
            &mut rng,
        );
        assert_eq!(dead, 0);
        assert_eq!(live.len(), 1);
        // The zero-rate draw left the stream untouched: byte-identical runs.
        assert_eq!(rng.unit().to_bits(), probe.unit().to_bits());
    }

    #[test]
    fn stats_merge_is_a_component_sum() {
        let a = PoolLifecycleStats { inserted: 1, lent: 2, idle_expired: 3, ..Default::default() };
        let b = PoolLifecycleStats {
            lifetime_churned: 4,
            capacity_evicted: 5,
            session_closed: 6,
            dead_on_reuse: 7,
            ..Default::default()
        };
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.inserted, 1);
        assert_eq!(merged.lent, 2);
        assert_eq!(merged.closed(), 3 + 4 + 5 + 6 + 7);
        let mut reversed = b;
        reversed.merge(&a);
        assert_eq!(reversed, merged);
    }
}
