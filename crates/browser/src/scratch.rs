//! Per-worker visit scratch: the reusable buffers behind the
//! zero-allocation page-load fast path.
//!
//! A crawl worker processes thousands of page visits back to back, and the
//! original loader paid an allocation storm for each one: fresh
//! `Vec<Connection>` / request-log vectors, a fresh DNS resolver with a fresh
//! cache, a cloned certificate per connection and a freshly allocated HPACK
//! table per connection. [`VisitScratch`] owns all of those buffers once per
//! worker and recycles them between visits:
//!
//! * connections opened by a visit become pooled *shells*
//!   ([`netsim_h2::Connection::reestablish`]) whose stream tables and HPACK
//!   dictionaries keep their heap capacity,
//! * the request log is a vector of copyable [`ScratchRequest`] records (the
//!   resource path stays in the site's plan and is only materialised when a
//!   full [`PageVisit`] is needed),
//! * the recursive resolver is flushed — not dropped — between visits, so
//!   its cache lines recycle their answer buffers,
//! * NetLog recording is optional: the measurement-compatible path keeps it,
//!   the streaming classification path turns it off,
//! * the per-visit cost timeline ([`netsim_cost::VisitTimeline`]) is a
//!   fixed-size `Copy` block of integer counters reset — never reallocated —
//!   between visits, so latency/byte accounting rides the fast path for
//!   free.
//!
//! In the steady state (after buffers have grown to the hot set's high-water
//! mark) a page visit through [`crate::Browser::load_page_into`] performs
//! **zero heap allocations** — asserted by a counting-allocator test in
//! `crates/browser/tests/zero_alloc.rs`.

use crate::fault::VisitOutcome;
use crate::netlog::NetLog;
use crate::visit::{PageVisit, RequestLogEntry};
use netsim_cost::VisitTimeline;
use netsim_dns::{RecursiveResolver, ResolverConfig, ResolverId, Vantage};
use netsim_fetch::RequestDestination;
use netsim_h2::reuse::RefusalSet;
use netsim_h2::Connection;
use netsim_types::{ConnectionId, DomainName, Instant, RequestId};
use netsim_web::Website;

/// One request as the fast path logs it: everything
/// [`crate::visit::RequestLogEntry`] carries except the path, which stays in
/// the site plan (`plan_index`) so the record is `Copy` and the hot loop
/// never clones a string.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScratchRequest {
    /// Request id (unique within the crawl).
    pub id: RequestId,
    /// The HTTP/2 session that carried the request.
    pub connection: ConnectionId,
    /// Target host.
    pub domain: DomainName,
    /// Index of the planned request in the site's plan (for the path).
    pub plan_index: u32,
    /// Resource kind.
    pub destination: RequestDestination,
    /// Whether credentials were included.
    pub credentialed: bool,
    /// HTTP status of the response.
    pub status: u16,
    /// Response body size in octets.
    pub body_size: u64,
    /// When the request was sent.
    pub started_at: Instant,
}

/// When the visit started and finished (the only per-visit scalars the fast
/// path returns; everything else lives in the scratch).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VisitTimes {
    /// When the visit started.
    pub started_at: Instant,
    /// When the last response completed.
    pub finished_at: Instant,
}

/// The per-worker scratch arena. See the module docs.
#[derive(Debug, Default)]
pub struct VisitScratch {
    /// Sessions opened by the current visit, in establishment order.
    pub(crate) connections: Vec<Connection>,
    /// Recycled connection shells awaiting re-establishment.
    shells: Vec<Connection>,
    /// Requests sent by the current visit, in send order.
    pub(crate) requests: Vec<ScratchRequest>,
    /// Per-request buffer of refused reuse candidates.
    pub(crate) refusals: Vec<(ConnectionId, RefusalSet)>,
    /// The current visit's event log (empty while disabled).
    pub(crate) netlog: NetLog,
    netlog_enabled: bool,
    /// The reusable resolver; rebuilt only when the config identity changes.
    resolver: Option<RecursiveResolver>,
    /// `true` if any response of the current visit had a non-200 status —
    /// the streaming classifier falls back to the full path then.
    pub(crate) any_non_ok: bool,
    /// The current visit's cost timeline (all zero while disabled). A block
    /// of `Copy` integer counters — accounting never allocates.
    pub(crate) timeline: VisitTimeline,
    cost_enabled: bool,
    /// Running per-visit sum of exact loss-retransmission microseconds. The
    /// loader charges the clock only each time this crosses another whole
    /// millisecond, so rounding happens once per visit instead of once per
    /// connection (the free-ride fix). Lives outside the `cost_enabled` gate:
    /// the clock must advance identically whether or not a timeline is kept.
    pub(crate) loss_carry_micros: u64,
    /// Resources the current visit abandoned after exhausting their retry
    /// budget. Like the loss carry this lives outside the `cost_enabled`
    /// gate: the visit's [`VisitOutcome`] must not depend on whether a
    /// timeline is kept.
    pub(crate) failed_resources: u64,
}

impl VisitScratch {
    /// A scratch with NetLog recording enabled (the measurement-compatible
    /// default: materialised [`PageVisit`]s carry the full event log).
    /// Cost accounting is on.
    pub fn new() -> Self {
        VisitScratch { netlog_enabled: true, cost_enabled: true, ..VisitScratch::default() }
    }

    /// A scratch with NetLog recording disabled — the streaming
    /// classification path, where the event log would be dropped unread and
    /// its per-event allocations (answer address lists, request paths) would
    /// break the zero-allocation property. Cost accounting is on (it is
    /// allocation-free by construction).
    pub fn without_netlog() -> Self {
        VisitScratch { netlog_enabled: false, cost_enabled: true, ..VisitScratch::default() }
    }

    /// Enable or disable cost accounting (on by default). Disabling it skips
    /// the timeline counters entirely — the no-cost baseline the `cost`
    /// criterion group compares against.
    pub fn with_cost_accounting(mut self, enabled: bool) -> Self {
        self.cost_enabled = enabled;
        self
    }

    /// `true` if this scratch records NetLog events.
    pub fn netlog_enabled(&self) -> bool {
        self.netlog_enabled
    }

    /// `true` if this scratch accumulates a cost timeline.
    pub fn cost_enabled(&self) -> bool {
        self.cost_enabled
    }

    /// The cost timeline of the current visit (all zero when cost accounting
    /// is disabled).
    pub fn timeline(&self) -> &VisitTimeline {
        &self.timeline
    }

    /// Prepare for the next visit: recycle the previous visit's connections
    /// into shells, clear the logs and flush (not drop) the resolver cache.
    pub(crate) fn begin_visit(&mut self, resolver: ResolverId, vantage: Vantage) {
        self.shells.append(&mut self.connections);
        self.requests.clear();
        self.refusals.clear();
        self.netlog.clear();
        self.any_non_ok = false;
        self.timeline.reset();
        self.loss_carry_micros = 0;
        self.failed_resources = 0;
        let rebuild = match &self.resolver {
            Some(existing) => existing.config().id != resolver || existing.config().vantage != vantage,
            None => true,
        };
        if rebuild {
            self.resolver =
                Some(RecursiveResolver::new(ResolverConfig::new(resolver, vantage, "measurement-resolver")));
        }
        self.resolver.as_mut().expect("resolver just ensured").flush_cache();
    }

    /// Prepare for the next page of a *multi-page session* visit. Unlike
    /// [`VisitScratch::begin_visit`] (the measurement methodology: caches
    /// reset between visits) the session keeps its DNS cache warm across
    /// pages: the resolver is flushed only on the session's first page and
    /// merely sweeps TTL-expired lines (`expire_stale`) afterwards. Within a
    /// session the connection list is already empty here (the session's
    /// [`crate::ConnectionPool`] absorbed it at the previous page's end);
    /// leftovers from an interleaved legacy visit are recycled into shells
    /// like [`VisitScratch::begin_visit`] does.
    pub(crate) fn begin_session_page(
        &mut self,
        resolver: ResolverId,
        vantage: Vantage,
        first_page: bool,
        now: Instant,
    ) {
        self.shells.append(&mut self.connections);
        self.requests.clear();
        self.refusals.clear();
        self.netlog.clear();
        self.any_non_ok = false;
        self.timeline.reset();
        self.loss_carry_micros = 0;
        self.failed_resources = 0;
        let rebuild = match &self.resolver {
            Some(existing) => existing.config().id != resolver || existing.config().vantage != vantage,
            None => true,
        };
        if rebuild {
            self.resolver =
                Some(RecursiveResolver::new(ResolverConfig::new(resolver, vantage, "measurement-resolver")));
        }
        let resolver = self.resolver.as_mut().expect("resolver just ensured");
        if first_page {
            resolver.flush_cache();
        } else {
            resolver.expire_stale(now);
        }
    }

    /// The reusable resolver (valid after [`VisitScratch::begin_visit`]).
    pub(crate) fn resolver_mut(&mut self) -> &mut RecursiveResolver {
        self.resolver.as_mut().expect("begin_visit initialises the resolver")
    }

    /// Split borrows of the live-connection list and the shell pool (the
    /// session's connection pool moves entries between both at page
    /// boundaries).
    pub(crate) fn connections_and_shells_mut(&mut self) -> (&mut Vec<Connection>, &mut Vec<Connection>) {
        (&mut self.connections, &mut self.shells)
    }

    /// The recycled-shell pool (session teardown drains pooled connections
    /// into it).
    pub(crate) fn shells_mut(&mut self) -> &mut Vec<Connection> {
        &mut self.shells
    }

    /// Take a recycled connection shell, if one is available.
    pub(crate) fn take_shell(&mut self) -> Option<Connection> {
        self.shells.pop()
    }

    /// Split borrows of the connection list and the NetLog (the
    /// duration-model pass mutates connections while recording close
    /// events).
    pub(crate) fn connections_and_netlog_mut(&mut self) -> (&mut Vec<Connection>, &mut NetLog) {
        (&mut self.connections, &mut self.netlog)
    }

    /// Sessions opened by the current visit, in establishment order.
    pub fn connections(&self) -> &[Connection] {
        &self.connections
    }

    /// Requests sent by the current visit, in send order.
    pub fn requests(&self) -> &[ScratchRequest] {
        &self.requests
    }

    /// The current visit's event log (empty when recording is disabled).
    pub fn netlog(&self) -> &NetLog {
        &self.netlog
    }

    /// `true` if every response of the current visit had status 200.
    pub fn all_ok(&self) -> bool {
        !self.any_non_ok
    }

    /// How the current visit ended: [`VisitOutcome::Complete`] when every
    /// resource was fetched (possibly after retries),
    /// [`VisitOutcome::Degraded`] with the abandoned-resource count when the
    /// retry budget ran out somewhere. Valid independently of cost
    /// accounting.
    pub fn outcome(&self) -> VisitOutcome {
        VisitOutcome::from_failures(self.failed_resources)
    }

    /// Materialise the current scratch state into an owned [`PageVisit`] —
    /// byte-identical to what the pre-scratch loader produced. `site` must be
    /// the site the visit loaded (its plan supplies the request paths).
    pub fn to_page_visit(&self, site: &Website, times: VisitTimes) -> PageVisit {
        PageVisit {
            site: site.id,
            landing_domain: site.domain,
            started_at: times.started_at,
            finished_at: times.finished_at,
            connections: self.connections.clone(),
            requests: self
                .requests
                .iter()
                .map(|request| RequestLogEntry {
                    id: request.id,
                    connection: request.connection,
                    domain: request.domain,
                    path: site.plan[request.plan_index as usize].path.to_string(),
                    destination: request.destination,
                    credentialed: request.credentialed,
                    status: request.status,
                    body_size: request.body_size,
                    started_at: request.started_at,
                })
                .collect(),
            netlog: self.netlog.clone(),
        }
    }
}
