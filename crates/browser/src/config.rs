//! Browser configuration.
//!
//! The knobs mirror the measurement setup described in §4.2.2 of the paper:
//! Chromium 87 with QUIC disabled and field trials off, a 300 s page-load
//! timeout, certificate errors not ignored, caches reset between visits —
//! plus the one deliberate patch the authors apply for their second Alexa
//! run, ignoring the Fetch credentials flag (`privacy_mode`).

use crate::fault::{FaultProfile, RetryPolicy};
use netsim_cost::LinkProfile;
use netsim_dns::{ResolverId, Vantage};
use netsim_h2::reuse::ReusePolicy;
use netsim_tls::HandshakeConfig;
use netsim_types::{Duration, Mitigation, MitigationSet};
use serde::{Deserialize, Serialize};

/// How connection end times are produced by the simulation.
///
/// HAR files only carry request times, so the paper evaluates two bounds for
/// the HTTP Archive ("endless" and "immediate"); the own measurements know
/// real end times, where most connections stay open until the test ends and
/// the few that close early live a median of ~122 s.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ConnectionDurationModel {
    /// Connections stay open until the visit ends (no recorded close).
    KeepOpen,
    /// A fraction of connections is closed early by server idle timeouts;
    /// the rest stay open. Mirrors the 3.5 % / 122.2 s observation.
    IdleTimeouts {
        /// Probability that a connection closes before the visit ends.
        close_probability: f64,
        /// Median lifetime of the early-closing connections, in seconds.
        median_lifetime_secs: u64,
    },
}

/// Full browser configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BrowserConfig {
    /// Connection-reuse policy (Fetch credentials partition, ORIGIN frames).
    pub reuse_policy: ReusePolicy,
    /// TLS/TCP handshake cost model.
    pub handshake: HandshakeConfig,
    /// Base round-trip time to any server, in milliseconds.
    pub base_rtt_ms: u64,
    /// Downstream bandwidth in bytes per millisecond (~ kB/ms).
    pub bandwidth_bytes_per_ms: u64,
    /// Packet-loss probability of the access link in parts per million.
    /// Handshake round trips are retransmission-inflated accordingly
    /// (`netsim_cost::loss_retransmit_extra`); 0 — the measurement default —
    /// reproduces the historical loss-free behaviour exactly.
    pub loss_ppm: u32,
    /// How connection end times are generated.
    pub duration_model: ConnectionDurationModel,
    /// Page-load timeout (requests beyond it are dropped).
    pub page_timeout: Duration,
    /// If `true`, simulated servers announce an RFC 8336 ORIGIN frame on
    /// every new connection listing all exact DNS names of the presented
    /// certificate. Only meaningful together with a reuse policy that honours
    /// ORIGIN frames (Chromium does not implement them, so this is `false`
    /// for all measurement presets and `true` only in the what-if analysis).
    pub servers_announce_origin_sets: bool,
    /// QUIC disabled (documented measurement choice; the model only speaks
    /// HTTP/2 either way).
    pub disable_quic: bool,
    /// Chromium field trials disabled for reproducibility.
    pub disable_field_trials: bool,
    /// Identity of the recursive resolver the browser uses.
    pub resolver: ResolverId,
    /// Vantage point of the measurement host.
    pub vantage: Vantage,
    /// Seconds of simulated spacing between consecutive site visits during a
    /// crawl (advances the global clock, which matters for time-varying DNS).
    pub visit_spacing_secs: u64,
    /// Integer-ppm failure processes injected along the visit fast path. The
    /// default is fully inert (all rates zero, no randomness consumed), which
    /// reproduces the historical fault-free behaviour exactly.
    pub faults: FaultProfile,
    /// How the loader recovers from injected faults: bounded attempts,
    /// exponential backoff with deterministic jitter, a per-resource stage
    /// budget, and the optional hedged-dial mitigation.
    pub retry: RetryPolicy,
}

impl Default for BrowserConfig {
    fn default() -> Self {
        BrowserConfig {
            reuse_policy: ReusePolicy::chromium(),
            handshake: HandshakeConfig::default(),
            base_rtt_ms: 30,
            bandwidth_bytes_per_ms: 6_000,
            loss_ppm: 0,
            duration_model: ConnectionDurationModel::IdleTimeouts {
                close_probability: 0.035,
                median_lifetime_secs: 122,
            },
            page_timeout: Duration::from_secs(300),
            servers_announce_origin_sets: false,
            disable_quic: true,
            disable_field_trials: true,
            resolver: ResolverId(1000),
            vantage: Vantage::Europe,
            visit_spacing_secs: 3,
            faults: FaultProfile::default(),
            retry: RetryPolicy::default(),
        }
    }
}

impl BrowserConfig {
    /// The configuration of the paper's own Alexa measurement (Chromium 87,
    /// Fetch credentials respected, European university vantage).
    pub fn alexa_measurement() -> Self {
        BrowserConfig::default()
    }

    /// The paper's second Alexa run: Chromium patched to ignore the Fetch
    /// credentials flag.
    pub fn alexa_without_fetch() -> Self {
        BrowserConfig { reuse_policy: ReusePolicy::chromium_without_fetch(), ..BrowserConfig::default() }
    }

    /// The HTTP-Archive crawler: a North-American vantage with its own
    /// resolver; connection end times are unknown (HAR only), so connections
    /// are kept open.
    pub fn http_archive_crawler() -> Self {
        BrowserConfig {
            duration_model: ConnectionDurationModel::KeepOpen,
            resolver: ResolverId(2000),
            vantage: Vantage::NorthAmerica,
            visit_spacing_secs: 1,
            ..BrowserConfig::default()
        }
    }

    /// A what-if deployment in which servers announce RFC 8336 ORIGIN frames
    /// and the client honours them (neither is true in the measured web).
    pub fn with_origin_frames() -> Self {
        BrowserConfig {
            reuse_policy: ReusePolicy::with_origin_frame(),
            servers_announce_origin_sets: true,
            ..BrowserConfig::default()
        }
    }

    /// The browser-side deployment of a mitigation combination, measured like
    /// the paper's Alexa run: the reuse policy honours ORIGIN frames and/or
    /// drops the credentials partition per
    /// [`ReusePolicy::with_mitigations`], and servers announce origin sets
    /// exactly when [`Mitigation::OriginFrames`] is deployed. All other
    /// knobs stay at the measurement defaults so sweep cells differ only in
    /// the mitigation under test.
    pub fn with_mitigations(mitigations: MitigationSet) -> Self {
        BrowserConfig {
            reuse_policy: ReusePolicy::with_mitigations(mitigations),
            servers_announce_origin_sets: mitigations.contains(Mitigation::OriginFrames),
            ..BrowserConfig::default()
        }
    }

    /// Check the configuration for values that are always a
    /// misconfiguration, independent of scenario.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bytes_per_ms` is zero. The transfer-time model
    /// divides by it; clamping the divisor at the point of use (as the
    /// loader once did) silently turned a typo into a semantically different
    /// simulation. [`crate::Browser::new`] and
    /// [`crate::Browser::with_id_base`] call this, so an unusable
    /// configuration fails loudly before any visit runs —
    /// [`netsim_cost::LinkProfile::new`] enforces the same invariant on the
    /// profile side.
    pub fn assert_valid(&self) {
        assert!(
            self.bandwidth_bytes_per_ms > 0,
            "BrowserConfig.bandwidth_bytes_per_ms is zero; the transfer-time model divides by it — \
             configure a positive bandwidth"
        );
    }

    /// Run this configuration over the given network path: RTT, bandwidth
    /// and loss come from the [`LinkProfile`]; every policy knob is left
    /// untouched. One profile knob turns any scenario into a family of
    /// workloads (datacenter / broadband / lossy cellular).
    pub fn over_link(mut self, link: &LinkProfile) -> Self {
        self.base_rtt_ms = link.rtt_ms;
        self.bandwidth_bytes_per_ms = link.bandwidth_bytes_per_ms;
        self.loss_ppm = link.loss_ppm;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_where_the_paper_says_they_do() {
        let alexa = BrowserConfig::alexa_measurement();
        let patched = BrowserConfig::alexa_without_fetch();
        assert!(alexa.reuse_policy.follow_fetch_credentials);
        assert!(!patched.reuse_policy.follow_fetch_credentials);
        assert_eq!(alexa.vantage, Vantage::Europe);

        let archive = BrowserConfig::http_archive_crawler();
        assert_eq!(archive.duration_model, ConnectionDurationModel::KeepOpen);
        assert_eq!(archive.vantage, Vantage::NorthAmerica);
        assert_ne!(archive.resolver, alexa.resolver);
    }

    #[test]
    fn mitigation_presets_flip_the_right_knobs() {
        let none = BrowserConfig::with_mitigations(MitigationSet::empty());
        assert!(none.reuse_policy.follow_fetch_credentials);
        assert!(!none.reuse_policy.honor_origin_frame);
        assert!(!none.servers_announce_origin_sets);

        let origin = BrowserConfig::with_mitigations(MitigationSet::single(Mitigation::OriginFrames));
        assert!(origin.reuse_policy.honor_origin_frame);
        assert!(!origin.reuse_policy.strict_origin_set);
        assert!(origin.servers_announce_origin_sets);

        let pooled = BrowserConfig::with_mitigations(MitigationSet::single(Mitigation::CredentialPooling));
        assert!(!pooled.reuse_policy.follow_fetch_credentials);
        assert!(!pooled.servers_announce_origin_sets);

        // Environment-side mitigations leave the browser untouched.
        let dns = BrowserConfig::with_mitigations(MitigationSet::single(Mitigation::SynchronizedDns));
        assert_eq!(dns.reuse_policy, none.reuse_policy);
    }

    #[test]
    fn defaults_match_methodology() {
        let cfg = BrowserConfig::default();
        assert!(cfg.faults.is_inert(), "measurement presets inject no faults");
        assert!(!cfg.retry.hedged_dials);
        assert!(cfg.disable_quic);
        assert!(cfg.disable_field_trials);
        assert_eq!(cfg.page_timeout, Duration::from_secs(300));
        assert_eq!(cfg.loss_ppm, 0, "the measurement setup models a loss-free path");
        assert!(matches!(cfg.duration_model, ConnectionDurationModel::IdleTimeouts { .. }));
    }

    #[test]
    #[should_panic(expected = "bandwidth_bytes_per_ms is zero")]
    fn zero_bandwidth_is_rejected() {
        let config = BrowserConfig { bandwidth_bytes_per_ms: 0, ..BrowserConfig::default() };
        config.assert_valid();
    }

    #[test]
    fn link_profiles_set_only_the_path_parameters() {
        let cell = BrowserConfig::alexa_measurement().over_link(&LinkProfile::lossy_cellular());
        assert_eq!(cell.base_rtt_ms, 120);
        assert_eq!(cell.bandwidth_bytes_per_ms, 1_500);
        assert_eq!(cell.loss_ppm, 20_000);
        // Policy knobs are untouched by the link.
        assert_eq!(cell.reuse_policy, BrowserConfig::alexa_measurement().reuse_policy);
        assert_eq!(cell.page_timeout, Duration::from_secs(300));
        // Broadband is the historical default path.
        let broadband = BrowserConfig::alexa_measurement().over_link(&LinkProfile::broadband());
        assert_eq!(broadband.base_rtt_ms, BrowserConfig::default().base_rtt_ms);
        assert_eq!(broadband.bandwidth_bytes_per_ms, BrowserConfig::default().bandwidth_bytes_per_ms);
    }
}
