//! The Browsertime stand-in: crawl a whole population.
//!
//! The paper's own measurement visits the Alexa Top 100k once per
//! configuration; the HTTP Archive visits millions of sites. The crawler
//! walks every site of a generated population with a given browser
//! configuration, spacing visits in simulated time (which matters because
//! DNS load-balancer assignments drift across epochs) and producing the
//! [`PageVisit`] dataset the analysis core ingests. Visits are independent of
//! each other, so they can run on several threads without changing results.

use crate::config::BrowserConfig;
use crate::loader::Browser;
use crate::scratch::{VisitScratch, VisitTimes};
use crate::visit::PageVisit;
use netsim_types::{Duration, Instant, SimClock, SimRng};
use netsim_web::WebEnvironment;
use serde::{Deserialize, Serialize};

/// Identifier spacing between sites so connection/request ids never collide
/// across visits.
const ID_STRIDE: u64 = 1_000_000;

/// The result of crawling a population.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CrawlReport {
    /// Name of the browser configuration used (for report headings).
    pub label: String,
    /// One visit per reachable site, in site order.
    pub visits: Vec<PageVisit>,
}

impl CrawlReport {
    /// Number of visited sites.
    pub fn site_count(&self) -> usize {
        self.visits.len()
    }

    /// Total connections opened across all visits.
    pub fn total_connections(&self) -> usize {
        self.visits.iter().map(|v| v.connection_count()).sum()
    }

    /// Total requests sent across all visits.
    pub fn total_requests(&self) -> usize {
        self.visits.iter().map(|v| v.request_count()).sum()
    }
}

/// Crawls every site of a population with one browser configuration.
#[derive(Clone, Debug)]
pub struct Crawler {
    config: BrowserConfig,
    label: String,
    seed: u64,
    threads: usize,
}

impl Crawler {
    /// A crawler with the given configuration and seed.
    pub fn new(label: &str, config: BrowserConfig, seed: u64) -> Self {
        Crawler { config, label: label.to_string(), seed, threads: 1 }
    }

    /// Use up to `threads` worker threads (visits stay deterministic).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The browser configuration.
    pub fn config(&self) -> &BrowserConfig {
        &self.config
    }

    /// Visit every site of `env`.
    pub fn crawl(&self, env: &WebEnvironment) -> CrawlReport {
        let site_count = env.sites.len();
        let mut visits: Vec<Option<PageVisit>> = Vec::new();
        visits.resize_with(site_count, || None);

        if self.threads <= 1 || site_count < 2 {
            let mut scratch = VisitScratch::new();
            for (index, slot) in visits.iter_mut().enumerate() {
                let times = self.visit_site_into(&mut scratch, env, index);
                *slot = Some(scratch.to_page_visit(&env.sites[index], times));
            }
        } else {
            let threads = self.threads.min(site_count);
            let chunk = site_count.div_ceil(threads);
            let chunks: Vec<&mut [Option<PageVisit>]> = visits.chunks_mut(chunk).collect();
            std::thread::scope(|scope| {
                for (chunk_index, slot) in chunks.into_iter().enumerate() {
                    let start = chunk_index * chunk;
                    scope.spawn(move || {
                        let mut scratch = VisitScratch::new();
                        for (offset, out) in slot.iter_mut().enumerate() {
                            let index = start + offset;
                            let times = self.visit_site_into(&mut scratch, env, index);
                            *out = Some(scratch.to_page_visit(&env.sites[index], times));
                        }
                    });
                }
            });
        }

        CrawlReport {
            label: self.label.clone(),
            visits: visits.into_iter().map(|v| v.expect("every site visited")).collect(),
        }
    }

    /// Visit one site at its slot in the crawl timeline.
    ///
    /// The visit's clock offset, id base and RNG stream are all derived from
    /// the site's *global* id (`Website::id`), not its position in
    /// `env.sites`. For monolithic populations the two coincide; for chunked
    /// populations (`PopulationBuilder::with_site_offset`, used by the atlas
    /// scale scenario) this keeps every visit byte-identical to the one a
    /// single giant environment would produce.
    pub fn visit_site(&self, env: &WebEnvironment, index: usize) -> PageVisit {
        let mut scratch = VisitScratch::new();
        let times = self.visit_site_into(&mut scratch, env, index);
        scratch.to_page_visit(&env.sites[index], times)
    }

    /// Visit one site into a reusable per-worker scratch — the
    /// zero-allocation form of [`Crawler::visit_site`]. The visit's
    /// connections, requests and (if the scratch records one) NetLog are left
    /// in `scratch`; the returned [`VisitTimes`] carries the start/finish
    /// instants.
    pub fn visit_site_into(
        &self,
        scratch: &mut VisitScratch,
        env: &WebEnvironment,
        index: usize,
    ) -> VisitTimes {
        let site = &env.sites[index];
        let global = site.id.value();
        let start = Instant::EPOCH + Duration::from_secs(self.config.visit_spacing_secs * global);
        let mut clock = SimClock::starting_at(start);
        let mut browser = Browser::with_id_base(self.config.clone(), global * ID_STRIDE);
        let mut rng = SimRng::new(self.seed).fork_indexed("visit", global);
        browser.load_page_into(scratch, env, site, &mut clock, &mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim_web::{PopulationBuilder, PopulationProfile};

    fn env(sites: usize) -> WebEnvironment {
        PopulationBuilder::new(PopulationProfile::archive(), sites, 77).build()
    }

    #[test]
    fn crawl_visits_every_site_once() {
        let environment = env(25);
        let report = Crawler::new("archive", BrowserConfig::http_archive_crawler(), 1).crawl(&environment);
        assert_eq!(report.site_count(), 25);
        assert_eq!(report.label, "archive");
        assert!(report.total_requests() >= 25);
        assert!(report.total_connections() >= 25);
        for (index, visit) in report.visits.iter().enumerate() {
            assert_eq!(visit.site.value(), index as u64);
        }
    }

    #[test]
    fn parallel_crawl_matches_sequential() {
        let environment = env(16);
        let sequential = Crawler::new("alexa", BrowserConfig::alexa_measurement(), 9).crawl(&environment);
        let parallel =
            Crawler::new("alexa", BrowserConfig::alexa_measurement(), 9).with_threads(4).crawl(&environment);
        assert_eq!(sequential.total_connections(), parallel.total_connections());
        assert_eq!(sequential.total_requests(), parallel.total_requests());
        for (a, b) in sequential.visits.iter().zip(parallel.visits.iter()) {
            assert_eq!(a.requests, b.requests);
        }
    }

    #[test]
    fn connection_ids_are_unique_across_the_crawl() {
        let environment = env(12);
        let report = Crawler::new("alexa", BrowserConfig::alexa_measurement(), 2).crawl(&environment);
        let mut ids = std::collections::BTreeSet::new();
        for visit in &report.visits {
            for connection in &visit.connections {
                assert!(ids.insert(connection.id), "duplicate connection id {}", connection.id);
            }
        }
    }

    #[test]
    fn visit_spacing_staggers_start_times() {
        let environment = env(3);
        let report = Crawler::new("alexa", BrowserConfig::alexa_measurement(), 3).crawl(&environment);
        assert!(report.visits[0].started_at < report.visits[1].started_at);
        assert!(report.visits[1].started_at < report.visits[2].started_at);
    }
}
