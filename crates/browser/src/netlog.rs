//! NetLog-style event recording.
//!
//! Chromium's NetLog gives the paper "more details on low-level connection
//! events (e.g. start and end)" than HAR files do; the authors stitch those
//! events together to reconstruct session lifecycles (§4.2.2). The simulated
//! browser emits the same kind of event stream so that the analysis can be
//! run from events alone, mirroring the original tooling.

use netsim_h2::reuse::ReuseRefusal;
use netsim_types::{ConnectionId, DomainName, Instant, IpAddr, RequestId};
use serde::{Deserialize, Serialize};

/// What happened.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum NetLogEventKind {
    /// A page load began for the given landing domain.
    PageLoadStarted {
        /// Landing-page host.
        domain: DomainName,
    },
    /// The page load finished (all planned requests done or timed out).
    PageLoadFinished {
        /// Number of requests completed.
        requests: usize,
    },
    /// A host was resolved.
    DnsResolved {
        /// Queried host.
        domain: DomainName,
        /// Addresses returned, in answer order.
        addresses: Vec<IpAddr>,
    },
    /// A host could not be resolved.
    DnsFailed {
        /// Queried host.
        domain: DomainName,
    },
    /// A new HTTP/2 session was established.
    ConnectionEstablished {
        /// Session id (socket id).
        connection: ConnectionId,
        /// Host the session was opened for.
        domain: DomainName,
        /// Destination address.
        ip: IpAddr,
        /// Whether the session belongs to the credentialed pool partition.
        credentialed: bool,
    },
    /// An existing session was reused for another request.
    ConnectionReused {
        /// Reused session.
        connection: ConnectionId,
        /// Host of the request that rode the session.
        domain: DomainName,
    },
    /// An existing session could have been considered but was rejected by the
    /// reuse check; all failing conditions are recorded.
    ReuseRefused {
        /// Candidate session.
        connection: ConnectionId,
        /// Host of the request being matched.
        domain: DomainName,
        /// Why the candidate was rejected.
        reasons: Vec<ReuseRefusal>,
    },
    /// A request was sent.
    RequestSent {
        /// Request id.
        request: RequestId,
        /// Session carrying the request.
        connection: ConnectionId,
        /// Target host.
        domain: DomainName,
        /// Target path.
        path: String,
    },
    /// A response completed.
    ResponseCompleted {
        /// Request id.
        request: RequestId,
        /// HTTP status.
        status: u16,
        /// Body octets.
        body_size: u64,
    },
    /// A session was closed.
    ConnectionClosed {
        /// Session id.
        connection: ConnectionId,
    },
}

/// One timestamped event.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetLogEvent {
    /// When the event happened.
    pub time: Instant,
    /// What happened.
    pub kind: NetLogEventKind,
}

/// An append-only event log for one page visit.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct NetLog {
    events: Vec<NetLogEvent>,
}

impl NetLog {
    /// An empty log.
    pub fn new() -> Self {
        NetLog::default()
    }

    /// Append an event.
    pub fn record(&mut self, time: Instant, kind: NetLogEventKind) {
        self.events.push(NetLogEvent { time, kind });
    }

    /// Drop all events, retaining the buffer's capacity (used when a visit
    /// scratch is recycled between page loads).
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// All events in append order.
    pub fn events(&self) -> &[NetLogEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Connection-establishment events, in order — the sequence the analysis
    /// reconstructs session lifecycles from.
    pub fn establishments(&self) -> impl Iterator<Item = (&NetLogEvent, ConnectionId)> {
        self.events.iter().filter_map(|event| match &event.kind {
            NetLogEventKind::ConnectionEstablished { connection, .. } => Some((event, *connection)),
            _ => None,
        })
    }

    /// Count events matching a predicate.
    pub fn count_matching<F: Fn(&NetLogEventKind) -> bool>(&self, predicate: F) -> usize {
        self.events.iter().filter(|e| predicate(&e.kind)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> DomainName {
        DomainName::literal(s)
    }

    #[test]
    fn record_and_query() {
        let mut log = NetLog::new();
        assert!(log.is_empty());
        log.record(Instant::EPOCH, NetLogEventKind::PageLoadStarted { domain: d("example.com") });
        log.record(
            Instant::from_millis(10),
            NetLogEventKind::ConnectionEstablished {
                connection: ConnectionId(0),
                domain: d("example.com"),
                ip: IpAddr::new(10, 0, 0, 1),
                credentialed: true,
            },
        );
        log.record(
            Instant::from_millis(40),
            NetLogEventKind::ConnectionReused { connection: ConnectionId(0), domain: d("img.example.com") },
        );
        assert_eq!(log.len(), 3);
        assert_eq!(log.establishments().count(), 1);
        assert_eq!(log.count_matching(|k| matches!(k, NetLogEventKind::ConnectionReused { .. })), 1);
        assert!(log.events()[0].time <= log.events()[1].time);
    }
}
