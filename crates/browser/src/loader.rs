//! The page loader: Chromium's session pool + coalescing + Fetch partition.

use crate::config::BrowserConfig;
use crate::connpool::sample_server_lifetime;
use crate::netlog::NetLogEventKind;
use crate::scratch::{ScratchRequest, VisitScratch, VisitTimes};
use crate::session::{ResumptionCache, UserSession};
use crate::visit::PageVisit;
use netsim_cost::loss_retransmit_extra_micros;
use netsim_dns::{Authority, RecursiveResolver, ResolverConfig};
use netsim_fetch::partition_for_planned;
use netsim_h2::reuse::evaluate_set;
use netsim_h2::{CloseReason, Connection, ConnectionState, Settings};
use netsim_types::profile::Stage;
use netsim_types::stage;
use netsim_types::{ConnectionId, Duration, IdAllocator, Instant, Origin, RequestId, SimClock, SimRng};
use netsim_web::{PlannedRequest, WebEnvironment, Website};
use std::sync::Arc;

/// A browser instance. One instance is used per page visit (caches are reset
/// between visits, per the measurement methodology); identifier allocators
/// are seeded externally so ids stay unique across a whole crawl.
#[derive(Debug)]
pub struct Browser {
    config: BrowserConfig,
    connection_ids: IdAllocator,
    request_ids: IdAllocator,
}

impl Browser {
    /// A browser with id allocators starting at zero.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is unusable (zero bandwidth) — see
    /// [`BrowserConfig::assert_valid`].
    pub fn new(config: BrowserConfig) -> Self {
        config.assert_valid();
        Browser { config, connection_ids: IdAllocator::new(), request_ids: IdAllocator::new() }
    }

    /// A browser whose connection/request ids start at `id_base` (used by the
    /// crawler to keep ids globally unique across parallel visits).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is unusable (zero bandwidth) — see
    /// [`BrowserConfig::assert_valid`].
    pub fn with_id_base(config: BrowserConfig, id_base: u64) -> Self {
        config.assert_valid();
        Browser {
            config,
            connection_ids: IdAllocator::starting_at(id_base),
            request_ids: IdAllocator::starting_at(id_base),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &BrowserConfig {
        &self.config
    }

    /// Load one site's landing page against the given environment.
    ///
    /// `clock` supplies (and is advanced past) the simulated wall-clock time
    /// of the visit; `rng` drives connection-lifetime sampling.
    ///
    /// This is the compatibility entry point: it runs the visit through a
    /// throwaway [`VisitScratch`] and materialises an owned [`PageVisit`].
    /// Workers that process many visits should hold one scratch and call
    /// [`Browser::load_page_into`] instead.
    pub fn load_page(
        &mut self,
        env: &WebEnvironment,
        site: &Website,
        clock: &mut SimClock,
        rng: &mut SimRng,
    ) -> PageVisit {
        let mut scratch = VisitScratch::new();
        let times = self.load_page_into(&mut scratch, env, site, clock, rng);
        scratch.to_page_visit(site, times)
    }

    /// Load one site's landing page into a reusable [`VisitScratch`].
    ///
    /// Behaviourally identical to [`Browser::load_page`] — same connections,
    /// requests, ids, clock advancement and (if enabled) NetLog events — but
    /// all visit state lands in `scratch`'s recycled buffers. In the steady
    /// state this performs zero heap allocations per visit.
    pub fn load_page_into(
        &mut self,
        scratch: &mut VisitScratch,
        env: &WebEnvironment,
        site: &Website,
        clock: &mut SimClock,
        rng: &mut SimRng,
    ) -> VisitTimes {
        let started_at = clock.now();
        // Caches are reset between visits (only in-visit DNS reuse happens);
        // the scratch flushes rather than drops the resolver.
        scratch.begin_visit(self.config.resolver, self.config.vantage);
        if scratch.netlog_enabled() {
            scratch.netlog.record(started_at, NetLogEventKind::PageLoadStarted { domain: site.domain });
        }

        // The fault stream is a label fork of the visit rng: it derives from
        // the stored seed (never the stream position), so the visit rng's own
        // draw sequence — consumed only by the duration pass below — is
        // untouched whether or not faults fire.
        let mut fault_rng = rng.fork("fault");
        let finished_at = self.walk_plan(scratch, env, site, clock, started_at, None, &mut fault_rng);

        // Assign connection end times according to the duration model, one
        // draw per connection through the shared sampler (the session pool's
        // absorb uses the same one, so both paths stay distribution- and
        // RNG-order-identical). `KeepOpen` draws nothing and closes nothing.
        {
            let netlog_enabled = scratch.netlog_enabled();
            let (connections, netlog) = scratch.connections_and_netlog_mut();
            for connection in connections.iter_mut() {
                if let Some(closed_at) =
                    sample_server_lifetime(rng, &self.config.duration_model, connection.established_at)
                {
                    connection.close(closed_at);
                    if netlog_enabled {
                        netlog.record(
                            closed_at,
                            NetLogEventKind::ConnectionClosed { connection: connection.id },
                        );
                    }
                }
            }
        }

        self.finish_page(scratch, started_at, finished_at, 0)
    }

    /// Load one page of a *multi-page user session*. Differs from the
    /// single-visit entry point ([`Browser::load_page_into`]) in what stays
    /// warm between calls:
    ///
    /// * the session's [`crate::ConnectionPool`] lends its surviving
    ///   connections to the page up front and absorbs the page's live set
    ///   afterwards (idle-timeout / server-lifetime closes happen at the
    ///   lend, LRU cap eviction at the absorb — the single-visit post-hoc
    ///   duration-model pass does not run, the pool owns lifetimes),
    /// * handshakes against origins the session already visited run at the
    ///   TLS-resumption tariff, and every handshake mints a ticket,
    /// * the DNS cache persists across pages (flushed only on the session's
    ///   first page; TTL-expired lines are swept at each page boundary),
    /// * the cold-cwnd penalty is charged only to connections *opened by
    ///   this page* — a pooled connection's window is already grown.
    ///
    /// Pool lifecycle events are accounted in the session's
    /// [`crate::PoolLifecycleStats`], not the NetLog (the fleet experiment
    /// runs without a NetLog).
    pub fn load_session_page_into(
        &mut self,
        scratch: &mut VisitScratch,
        session: &mut UserSession,
        env: &WebEnvironment,
        site: &Website,
        clock: &mut SimClock,
        rng: &mut SimRng,
    ) -> VisitTimes {
        let started_at = clock.now();
        let first_page = session.pages_loaded() == 0;
        scratch.begin_session_page(self.config.resolver, self.config.vantage, first_page, started_at);
        if scratch.netlog_enabled() {
            scratch.netlog.record(started_at, NetLogEventKind::PageLoadStarted { domain: site.domain });
        }

        // Per-page fault stream (see `load_page_into`); the pool's
        // dead-on-reuse draws come first (insertion order), then the
        // per-request draws of the plan walk.
        let mut fault_rng = rng.fork("fault");
        let (warm, dead) = {
            let (connections, shells) = scratch.connections_and_shells_mut();
            let dead =
                session.pool_mut().lend(started_at, connections, shells, &self.config.faults, &mut fault_rng);
            (connections.len(), dead)
        };
        if scratch.cost_enabled() {
            scratch.timeline.dead_on_reuse += dead;
            scratch.timeline.faults_injected += dead;
        }

        let finished_at = self.walk_plan(
            scratch,
            env,
            site,
            clock,
            started_at,
            Some(session.tickets_mut()),
            &mut fault_rng,
        );
        let times = self.finish_page(scratch, started_at, finished_at, warm);

        let (connections, shells) = scratch.connections_and_shells_mut();
        session.pool_mut().absorb(clock.now(), connections, shells, rng, &self.config.duration_model);
        session.note_page_loaded();
        times
    }

    /// Walk the site's plan, fetching every planned request until the page
    /// timeout. Returns when the last response will have finished
    /// transferring.
    #[allow(clippy::too_many_arguments)]
    fn walk_plan(
        &mut self,
        scratch: &mut VisitScratch,
        env: &WebEnvironment,
        site: &Website,
        clock: &mut SimClock,
        started_at: Instant,
        mut tickets: Option<&mut ResumptionCache>,
        fault_rng: &mut SimRng,
    ) -> Instant {
        let deadline = started_at + self.config.page_timeout;
        let document_origin = Origin::https(site.domain);
        let rtt = Duration::from_millis(self.config.base_rtt_ms);
        let mut finished_at = started_at;
        for (plan_index, planned) in site.plan.iter().enumerate() {
            if clock.now() > deadline {
                break;
            }
            let outcome = self.fetch_one(
                scratch,
                env,
                &document_origin,
                planned,
                plan_index,
                clock,
                rtt,
                tickets.as_deref_mut(),
                fault_rng,
            );
            if let Some(entry) = outcome {
                stage!(Stage::TransferClock);
                finished_at =
                    finished_at.max(entry.started_at + rtt + transfer_time(entry.body_size, &self.config));
                if scratch.cost_enabled() {
                    scratch.timeline.requests += 1;
                    scratch.timeline.body_octets += entry.body_size;
                }
                scratch.requests.push(entry);
            }
        }
        finished_at
    }

    /// Record the end-of-page NetLog event and fold the page-level costs.
    /// `first_new` is the index of the first connection this page opened
    /// itself — connections before it were lent warm by a session pool and
    /// already paid their slow-start.
    fn finish_page(
        &mut self,
        scratch: &mut VisitScratch,
        started_at: Instant,
        finished_at: Instant,
        first_new: usize,
    ) -> VisitTimes {
        if scratch.netlog_enabled() {
            scratch
                .netlog
                .record(finished_at, NetLogEventKind::PageLoadFinished { requests: scratch.requests.len() });
        }
        if scratch.cost_enabled() {
            stage!(Stage::CostFold);
            // Cold-window penalty: every opened connection pays the
            // slow-start rounds its delivered bytes needed (a reused
            // connection would have carried them on an already-grown
            // window).
            for connection in &scratch.connections[first_new..] {
                scratch.timeline.cold_cwnd_rtts += u64::from(connection.cold_cwnd_rtts());
            }
            scratch.timeline.plt_millis = (finished_at - started_at).as_millis();
        }
        VisitTimes { started_at, finished_at }
    }

    /// Fetch a single planned request, reusing or opening connections, with
    /// the retry policy wrapped around the injected-fault processes.
    ///
    /// The first attempt always runs; further attempts run only after an
    /// *injected* fault (DNS, TLS dial, mid-transfer reset) failed the
    /// previous one, each charged the policy's exponential backoff on the
    /// virtual clock first. Genuine failures (an unresolvable name, a
    /// refused stream) keep the historical silent-skip behaviour — they are
    /// not retried and not counted as degraded. When attempts or the stage
    /// budget run out, the resource is abandoned and counted in the visit's
    /// [`crate::fault::VisitOutcome`].
    #[allow(clippy::too_many_arguments)]
    fn fetch_one(
        &mut self,
        scratch: &mut VisitScratch,
        env: &WebEnvironment,
        document_origin: &Origin,
        planned: &PlannedRequest,
        plan_index: usize,
        clock: &mut SimClock,
        rtt: Duration,
        mut tickets: Option<&mut ResumptionCache>,
        fault_rng: &mut SimRng,
    ) -> Option<ScratchRequest> {
        let mut backoff_spent = Duration::ZERO;
        for attempt in 1..=self.config.retry.attempts() {
            if attempt > 1 {
                let wait = self.config.retry.backoff_before(attempt, fault_rng);
                if backoff_spent + wait > self.config.retry.stage_budget {
                    // The stage budget is burst: give up on the resource
                    // instead of waiting longer than the policy allows.
                    break;
                }
                backoff_spent = backoff_spent + wait;
                clock.advance(wait);
                if scratch.cost_enabled() {
                    scratch.timeline.retries += 1;
                    scratch.timeline.retry_backoff_millis += wait.as_millis();
                }
            }
            match self.fetch_attempt(
                scratch,
                env,
                document_origin,
                planned,
                plan_index,
                clock,
                rtt,
                tickets.as_deref_mut(),
                fault_rng,
            ) {
                FetchAttempt::Success(entry) => return Some(entry),
                FetchAttempt::Skip => return None,
                FetchAttempt::Fault => {}
            }
        }
        // Retries exhausted: degrade gracefully — the page renders without
        // this resource, and the outcome records it.
        scratch.failed_resources += 1;
        if scratch.cost_enabled() {
            scratch.timeline.failed_resources += 1;
        }
        None
    }

    /// One fetch attempt (the pre-fault fast path, plus the per-attempt
    /// fault draws). Draw order on the fault stream, per attempt: the DNS
    /// draw before the resolver runs; the TLS dial draw (plus the hedge draw
    /// when hedged dials race and the primary failed) when no live session
    /// qualified; the mid-transfer reset draw after the request is sent; the
    /// GOAWAY draw after the response completes (skipped if the reset fired).
    /// Zero-rate processes consume no randomness at all.
    #[allow(clippy::too_many_arguments)]
    fn fetch_attempt(
        &mut self,
        scratch: &mut VisitScratch,
        env: &WebEnvironment,
        document_origin: &Origin,
        planned: &PlannedRequest,
        plan_index: usize,
        clock: &mut SimClock,
        rtt: Duration,
        tickets: Option<&mut ResumptionCache>,
        fault_rng: &mut SimRng,
    ) -> FetchAttempt {
        let target_origin = Origin::https(planned.domain);
        // The session-pool key ("privacy mode"): which partition the request
        // lands in. Policies that pool credentials still see the partition
        // here — they ignore it inside the RFC 7540 check instead
        // (`ReusePolicy::follow_fetch_credentials`), like the paper's patch.
        let credentialed =
            partition_for_planned(&target_origin, document_origin, planned.destination, planned.anonymous)
                .is_credentialed();

        // Small per-request pacing so establishment order is well defined.
        clock.advance(Duration::from_millis(2));

        // 1. Direct session-pool hit: same origin, same credentials partition.
        let mut chosen: Option<usize> = None;
        {
            stage!(Stage::ReuseScan);
            for (index, connection) in scratch.connections.iter().enumerate() {
                if connection.initial_origin == target_origin
                    && connection.credentialed == credentialed
                    && connection.can_open_stream()
                    && !connection.excluded_domains.contains(&planned.domain)
                {
                    chosen = Some(index);
                    break;
                }
            }
        }

        // 2. Coalescing: resolve the host and run the RFC 7540 §9.1.1 check
        //    against every live session.
        let target_ip = {
            stage!(Stage::DnsWalk);
            let netlog_enabled = scratch.netlog_enabled();
            let cost_enabled = scratch.cost_enabled();
            // Injected SERVFAIL/lost-query: drawn before the resolver runs,
            // so a faulted attempt performs no authority walk (and caches
            // nothing) — exactly a query that never came back.
            let injected = fault_rng.chance_ppm(self.config.faults.dns_failure_ppm);
            let resolver = scratch.resolver_mut();
            let stats_before = resolver.stats();
            // Extract what the rest of the visit needs while the answer
            // borrow is live; the address list is cloned only for NetLog.
            let outcome = if injected {
                resolver.note_injected_failure();
                Err(true)
            } else {
                match resolver.resolve(&env.authority, &planned.domain, clock.now()) {
                    Ok(answer) => {
                        Ok((answer.primary_address(), netlog_enabled.then(|| answer.addresses.clone())))
                    }
                    Err(_) => Err(false),
                }
            };
            let stats_after = resolver.stats();
            if cost_enabled {
                scratch.timeline.dns_cache_hits += stats_after.cache_hits - stats_before.cache_hits;
                scratch.timeline.dns_recursive_walks += stats_after.cache_misses - stats_before.cache_misses;
                scratch.timeline.dns_authority_queries +=
                    stats_after.authority_queries - stats_before.authority_queries;
                scratch.timeline.dns_failures += stats_after.failures - stats_before.failures;
                if injected {
                    scratch.timeline.faults_injected += 1;
                }
            }
            match outcome {
                Ok((target_ip, addresses)) => {
                    if let Some(addresses) = addresses {
                        scratch.netlog.record(
                            clock.now(),
                            NetLogEventKind::DnsResolved { domain: planned.domain, addresses },
                        );
                    }
                    match target_ip {
                        Some(ip) => ip,
                        None => return FetchAttempt::Skip,
                    }
                }
                Err(was_injected) => {
                    if netlog_enabled {
                        scratch
                            .netlog
                            .record(clock.now(), NetLogEventKind::DnsFailed { domain: planned.domain });
                    }
                    // An injected failure retries; a genuinely unresolvable
                    // name keeps the historical silent skip.
                    return if was_injected { FetchAttempt::Fault } else { FetchAttempt::Skip };
                }
            }
        };

        if chosen.is_none() {
            stage!(Stage::ReuseScan);
            scratch.refusals.clear();
            for (index, connection) in scratch.connections.iter().enumerate() {
                if !connection.is_open_at(clock.now()) {
                    continue;
                }
                let refusals = evaluate_set(
                    connection,
                    &target_origin,
                    target_ip,
                    credentialed,
                    &self.config.reuse_policy,
                );
                if refusals.is_empty() {
                    chosen = Some(index);
                    break;
                }
                scratch.refusals.push((connection.id, refusals));
            }
            if chosen.is_none() && scratch.netlog_enabled() {
                for index in 0..scratch.refusals.len() {
                    let (connection, reasons) = scratch.refusals[index];
                    scratch.netlog.record(
                        clock.now(),
                        NetLogEventKind::ReuseRefused {
                            connection,
                            domain: planned.domain,
                            reasons: reasons.to_vec(),
                        },
                    );
                }
            }
        }

        // 3. Open a new session when nothing qualified.
        let index = match chosen {
            Some(index) => {
                if scratch.cost_enabled() {
                    scratch.timeline.connections_reused += 1;
                }
                if scratch.netlog_enabled() {
                    scratch.netlog.record(
                        clock.now(),
                        NetLogEventKind::ConnectionReused {
                            connection: scratch.connections[index].id,
                            domain: planned.domain,
                        },
                    );
                }
                index
            }
            None => {
                stage!(Stage::Handshake);
                let certificate = Arc::clone(
                    env.certificate_arc_for(&planned.domain)
                        .unwrap_or_else(|| panic!("population has no certificate for {}", planned.domain)),
                );
                // A session that already shook hands with this origin holds a
                // still-fresh ticket and resumes; without a ticket cache the
                // configured handshake applies unchanged.
                let handshake = match &tickets {
                    Some(tickets) if tickets.has(&target_origin, clock.now()) => {
                        self.config.handshake.resumed()
                    }
                    _ => self.config.handshake,
                };
                let setup_rtts = u64::from(handshake.setup_rtts());
                // Loss retransmissions are priced exactly (in microseconds)
                // and folded into a per-visit carry; the integer-millisecond
                // clock is charged each time the carry crosses another whole
                // millisecond. Rounding therefore happens once per visit —
                // truncating per connection let every sub-millisecond setup
                // penalty (all of broadband's) ride for free. A dial that
                // fails below still travelled its round trips, so the carry
                // advances either way.
                let loss_micros = loss_retransmit_extra_micros(rtt, setup_rtts, self.config.loss_ppm);
                let charged_ms = scratch.loss_carry_micros / 1_000;
                scratch.loss_carry_micros += loss_micros;
                let loss_ms = scratch.loss_carry_micros / 1_000 - charged_ms;
                let setup = handshake.setup_latency(rtt) + Duration::from_millis(loss_ms);
                clock.advance(setup);
                // Injected TLS dial failure. Under hedged dials a second
                // attempt races the first (drawn only when the primary
                // failed): the dial fails only if both racers fail, and it
                // pays no retry backoff — the hedge was already in flight.
                let hedged = self.config.retry.hedged_dials;
                let primary_failed = fault_rng.chance_ppm(self.config.faults.tls_failure_ppm);
                let dial_failed = if hedged && primary_failed {
                    fault_rng.chance_ppm(self.config.faults.tls_failure_ppm)
                } else {
                    primary_failed
                };
                if dial_failed {
                    // The dial burned its full setup latency (charged above)
                    // but only the client's first flight made it to the wire.
                    if scratch.cost_enabled() {
                        scratch.timeline.faults_injected += 1;
                        scratch.timeline.handshake_rtts += setup_rtts;
                        scratch.timeline.handshake_millis += setup.as_millis();
                        scratch.timeline.loss_retransmit_micros += loss_micros;
                        scratch.timeline.handshake_octets += handshake.aborted_handshake_octets();
                        if hedged {
                            scratch.timeline.hedged_dials += 1;
                            scratch.timeline.handshake_octets += handshake.aborted_handshake_octets();
                        }
                    }
                    return FetchAttempt::Fault;
                }
                if scratch.cost_enabled() {
                    scratch.timeline.connections_opened += 1;
                    scratch.timeline.handshake_rtts += setup_rtts;
                    scratch.timeline.handshake_octets += handshake.handshake_octets();
                    scratch.timeline.handshake_millis += setup.as_millis();
                    scratch.timeline.loss_retransmit_micros += loss_micros;
                    if handshake.session_resumption {
                        scratch.timeline.resumed_handshakes += 1;
                    }
                    if hedged {
                        // The losing racer completed (or aborted) its own
                        // handshake on the wire before being discarded.
                        scratch.timeline.hedged_dials += 1;
                        scratch.timeline.handshake_octets += handshake.handshake_octets();
                    }
                }
                // Every completed handshake (full or resumed) mints a fresh
                // ticket for the origin.
                if let Some(tickets) = tickets {
                    tickets.insert(target_origin, clock.now());
                }
                let id: ConnectionId = self.connection_ids.issue_as();
                let mut connection = match scratch.take_shell() {
                    Some(mut shell) => {
                        shell.reestablish(
                            id,
                            target_origin,
                            target_ip,
                            certificate,
                            credentialed,
                            clock.now(),
                            Settings::default(),
                        );
                        shell
                    }
                    None => Connection::establish(
                        id,
                        target_origin,
                        target_ip,
                        certificate,
                        credentialed,
                        clock.now(),
                        Settings::default(),
                    ),
                };
                if self.config.servers_announce_origin_sets {
                    let origins: Vec<_> = connection.certificate.dns_names().into_iter().cloned().collect();
                    connection.receive_origin_set(origins);
                }
                if scratch.netlog_enabled() {
                    scratch.netlog.record(
                        clock.now(),
                        NetLogEventKind::ConnectionEstablished {
                            connection: id,
                            domain: planned.domain,
                            ip: target_ip,
                            credentialed,
                        },
                    );
                }
                scratch.connections.push(connection);
                scratch.connections.len() - 1
            }
        };

        let encode_guard = netsim_types::profile::enter(Stage::RequestEncode);
        let cookie = if credentialed { Some("sid=0123456789abcdef") } else { None };
        let connection = &mut scratch.connections[index];
        let stream = match connection.send_request(&planned.domain, &planned.path, cookie) {
            Ok(stream) => stream,
            Err(_) => return FetchAttempt::Skip,
        };
        // Injected mid-transfer reset: the request went out but the transport
        // died before the response completed. The connection is torn down —
        // the retry (if any) must redial — and the attempt fails.
        if fault_rng.chance_ppm(self.config.faults.reset_ppm) {
            let connection_id = connection.id;
            connection.close_with_reason(clock.now(), CloseReason::TransportReset);
            drop(encode_guard);
            if scratch.cost_enabled() {
                scratch.timeline.faults_injected += 1;
            }
            if scratch.netlog_enabled() {
                scratch
                    .netlog
                    .record(clock.now(), NetLogEventKind::ConnectionClosed { connection: connection_id });
            }
            return FetchAttempt::Fault;
        }
        let status = 200;
        connection
            .complete_response(stream, &planned.domain, status, planned.body_size)
            .expect("stream was just opened");
        let connection_id = connection.id;
        // Injected server GOAWAY: the response that just completed was the
        // connection's last — the server is draining it. The request
        // succeeds; the session merely stops accepting new streams, so later
        // requests fall through to other sessions or fresh dials.
        if fault_rng.chance_ppm(self.config.faults.goaway_ppm) && connection.state == ConnectionState::Open {
            connection.receive_goaway();
            if scratch.cost_enabled() {
                scratch.timeline.faults_injected += 1;
                scratch.timeline.goaways_received += 1;
            }
        }
        drop(encode_guard);
        if status != 200 {
            scratch.any_non_ok = true;
        }

        let request_id: RequestId = self.request_ids.issue_as();
        if scratch.netlog_enabled() {
            scratch.netlog.record(
                clock.now(),
                NetLogEventKind::RequestSent {
                    request: request_id,
                    connection: connection_id,
                    domain: planned.domain,
                    path: planned.path.to_string(),
                },
            );
            scratch.netlog.record(
                clock.now() + rtt,
                NetLogEventKind::ResponseCompleted {
                    request: request_id,
                    status,
                    body_size: planned.body_size,
                },
            );
        }

        FetchAttempt::Success(ScratchRequest {
            id: request_id,
            connection: connection_id,
            domain: planned.domain,
            plan_index: plan_index as u32,
            destination: planned.destination,
            credentialed,
            status,
            body_size: planned.body_size,
            started_at: clock.now(),
        })
    }
}

/// How one fetch attempt ended: a logged request, a permanent silent skip
/// (the historical non-fault failure modes — unresolvable name, addressless
/// answer, refused stream), or an injected fault the retry policy may spend
/// another attempt on.
enum FetchAttempt {
    Success(ScratchRequest),
    Skip,
    Fault,
}

/// Transfer-time model: body size over configured bandwidth, charged in
/// whole milliseconds rounded *up* — any non-empty body occupies the link for
/// at least one millisecond of virtual time. (Truncating division would let
/// every body smaller than the per-millisecond bandwidth — analytics
/// beacons, favicons — transfer in zero time, deflating page-load times and
/// the redundancy-tax tables built on them.) Zero bandwidth is rejected at
/// [`BrowserConfig`] construction, so the division is always well-defined.
fn transfer_time(body_size: u64, config: &BrowserConfig) -> Duration {
    Duration::from_millis(body_size.div_ceil(config.bandwidth_bytes_per_ms))
}

/// Convenience used by tests and examples: resolve a domain once with a fresh
/// resolver configured like the browser would.
pub fn resolve_once(
    authority: &Authority,
    config: &BrowserConfig,
    domain: &netsim_types::DomainName,
    now: Instant,
) -> Option<netsim_types::IpAddr> {
    let mut resolver =
        RecursiveResolver::new(ResolverConfig::new(config.resolver, config.vantage, "adhoc-resolver"));
    resolver.resolve(authority, domain, now).ok().and_then(|a| a.primary_address())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crawler::Crawler;
    use netsim_types::DomainName;
    use netsim_web::{PopulationBuilder, PopulationProfile};

    fn environment(sites: usize, seed: u64) -> WebEnvironment {
        PopulationBuilder::new(PopulationProfile::alexa(), sites, seed).build()
    }

    fn visit(env: &WebEnvironment, site_index: usize, config: BrowserConfig) -> PageVisit {
        let mut browser = Browser::new(config);
        let mut clock = SimClock::new();
        let mut rng = SimRng::new(99);
        browser.load_page(env, &env.sites[site_index], &mut clock, &mut rng)
    }

    #[test]
    fn every_request_rides_some_connection() {
        let env = environment(20, 1);
        for index in 0..env.sites.len() {
            let v = visit(&env, index, BrowserConfig::alexa_measurement());
            assert_eq!(v.request_count(), env.sites[index].plan.len(), "site {}", env.sites[index].domain);
            assert!(v.connection_count() >= 1);
            assert!(v.connection_count() <= v.request_count());
            for request in &v.requests {
                assert!(v.connection(request.connection).is_some());
            }
        }
    }

    #[test]
    fn same_origin_requests_share_a_connection() {
        let env = environment(10, 2);
        // Pick a site with several first-party resources (they all exist).
        let v = visit(&env, 0, BrowserConfig::alexa_measurement());
        let landing = &env.sites[0].domain;
        let landing_conns: std::collections::BTreeSet<_> = v
            .requests
            .iter()
            .filter(|r| &r.domain == landing && r.credentialed)
            .map(|r| r.connection)
            .collect();
        assert_eq!(landing_conns.len(), 1, "credentialed same-origin requests must share one session");
    }

    #[test]
    fn visits_are_deterministic() {
        let env = environment(5, 3);
        let a = visit(&env, 2, BrowserConfig::alexa_measurement());
        let b = visit(&env, 2, BrowserConfig::alexa_measurement());
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.connection_count(), b.connection_count());
        assert_eq!(a.netlog, b.netlog);
    }

    #[test]
    fn ignoring_fetch_credentials_never_increases_connections() {
        let env = environment(40, 4);
        for index in 0..env.sites.len() {
            let strict = visit(&env, index, BrowserConfig::alexa_measurement());
            let patched = visit(&env, index, BrowserConfig::alexa_without_fetch());
            assert!(
                patched.connection_count() <= strict.connection_count(),
                "site {}: patched {} > strict {}",
                env.sites[index].domain,
                patched.connection_count(),
                strict.connection_count()
            );
        }
    }

    #[test]
    fn analytics_chain_opens_a_redundant_connection_for_the_ip_cause() {
        // Find a site embedding google-analytics; GTM and GA share a
        // certificate but are unsynchronized-balanced, so with high
        // probability across sites at least one visit splits them.
        let env = environment(60, 5);
        let gtm = DomainName::literal("www.googletagmanager.com");
        let ga = DomainName::literal("www.google-analytics.com");
        let mut split_seen = false;
        for (index, site) in env.sites.iter().enumerate() {
            if !site.embeds("google-analytics") {
                continue;
            }
            // Spread visits across load-balancing epochs like a real crawl
            // does; whether the two domains' answers overlap varies over time
            // (paper, Figure 3).
            let mut browser = Browser::new(BrowserConfig::alexa_measurement());
            let mut clock = SimClock::starting_at(Instant::EPOCH + Duration::from_mins(31 * index as u64));
            let mut rng = SimRng::new(99);
            let v = browser.load_page(&env, site, &mut clock, &mut rng);
            let gtm_conn: Vec<_> =
                v.requests.iter().filter(|r| r.domain == gtm).map(|r| r.connection).collect();
            let ga_conn: Vec<_> = v
                .requests
                .iter()
                .filter(|r| r.domain == ga && r.credentialed)
                .map(|r| r.connection)
                .collect();
            if gtm_conn.is_empty() || ga_conn.is_empty() {
                continue;
            }
            if gtm_conn[0] != ga_conn[0] {
                split_seen = true;
                break;
            }
        }
        assert!(split_seen, "expected at least one GTM/GA connection split across the sample");
    }

    #[test]
    fn anonymous_subresources_get_their_own_connection_under_fetch() {
        let env = environment(80, 6);
        let ga = DomainName::literal("www.google-analytics.com");
        let mut cred_split_seen = false;
        for (index, site) in env.sites.iter().enumerate() {
            if !site.embeds("google-analytics") {
                continue;
            }
            let v = visit(&env, index, BrowserConfig::alexa_measurement());
            let credentialed: std::collections::BTreeSet<_> = v
                .requests
                .iter()
                .filter(|r| r.domain == ga && r.credentialed)
                .map(|r| r.connection)
                .collect();
            let anonymous: std::collections::BTreeSet<_> = v
                .requests
                .iter()
                .filter(|r| r.domain == ga && !r.credentialed)
                .map(|r| r.connection)
                .collect();
            if !credentialed.is_empty() && !anonymous.is_empty() {
                assert!(credentialed.is_disjoint(&anonymous), "partitions must not share sessions");
                cred_split_seen = true;
                break;
            }
        }
        assert!(cred_split_seen, "expected an anonymous beacon alongside credentialed analytics requests");
    }

    #[test]
    fn origin_frame_deployment_never_increases_connections() {
        let env = environment(40, 12);
        let mut improved_somewhere = false;
        for index in 0..env.sites.len() {
            let chromium = visit(&env, index, BrowserConfig::alexa_measurement());
            let with_frames = visit(&env, index, BrowserConfig::with_origin_frames());
            assert!(
                with_frames.connection_count() <= chromium.connection_count(),
                "site {}: ORIGIN frames must not add connections",
                env.sites[index].domain
            );
            if with_frames.connection_count() < chromium.connection_count() {
                improved_somewhere = true;
            }
        }
        assert!(improved_somewhere, "ORIGIN-frame adoption should coalesce at least one site's connections");
    }

    #[test]
    fn connection_lifetimes_follow_the_duration_model() {
        let env = environment(30, 7);
        let mut closed = 0usize;
        let mut total = 0usize;
        for index in 0..env.sites.len() {
            let v = visit(&env, index, BrowserConfig::alexa_measurement());
            for connection in &v.connections {
                total += 1;
                if let Some(lifetime) = connection.lifetime() {
                    closed += 1;
                    assert!(lifetime >= Duration::from_secs(61));
                    assert!(lifetime <= Duration::from_secs(244));
                }
            }
        }
        assert!(total > 0);
        // ~3.5 % close early; with a few hundred connections expect under 15 %.
        assert!((closed as f64) < total as f64 * 0.15, "closed {closed} of {total}");
    }

    #[test]
    fn loader_duration_pass_matches_the_pool_sampler() {
        // The dedup regression: the loader's post-hoc duration pass used to
        // re-implement the server-lifetime draw inline. Both call sites now
        // share `connpool::sample_server_lifetime`; from the same seed, a
        // visit's recorded teardown instants must be exactly what replaying
        // the shared sampler over its connections (in establishment order)
        // produces — same draws, same order, same closes.
        let env = environment(30, 7);
        let config = BrowserConfig::alexa_measurement();
        let mut any_closed = false;
        for index in 0..env.sites.len() {
            let mut browser = Browser::new(config.clone());
            let mut clock = SimClock::new();
            let mut rng = SimRng::new(99);
            let visit = browser.load_page(&env, &env.sites[index], &mut clock, &mut rng);

            // The visit rng is consumed only by the duration pass, so a
            // fresh same-seed rng replays it draw for draw.
            let mut replay = SimRng::new(99);
            for connection in &visit.connections {
                let expected =
                    sample_server_lifetime(&mut replay, &config.duration_model, connection.established_at);
                assert_eq!(connection.closed_at, expected, "site {index}");
                any_closed |= expected.is_some();
            }
        }
        assert!(any_closed, "the model must close at least one connection across the sample");
    }

    #[test]
    fn keep_open_model_never_closes() {
        let env = environment(10, 8);
        let v = visit(&env, 1, BrowserConfig::http_archive_crawler());
        assert!(v.connections.iter().all(|c| c.closed_at.is_none()));
    }

    #[test]
    fn connections_share_the_stores_certificate_allocation() {
        // The SAN-clone fix: presenting a certificate hands the connection a
        // shared handle into the environment's store — never a copy of the
        // SAN list. Every connection's certificate must be pointer-identical
        // to the store's.
        let env = environment(15, 9);
        for index in 0..env.sites.len() {
            let v = visit(&env, index, BrowserConfig::alexa_measurement());
            for connection in &v.connections {
                let stored = env
                    .certificate_arc_for(connection.initial_domain())
                    .expect("store has a certificate for every contacted domain");
                assert!(
                    std::sync::Arc::ptr_eq(&connection.certificate, stored),
                    "connection to {} cloned its certificate instead of sharing it",
                    connection.initial_domain()
                );
            }
        }
    }

    #[test]
    fn transfer_time_rounds_up_to_the_millisecond() {
        // The free-ride bug: truncating division let every body below the
        // per-millisecond bandwidth transfer in zero virtual time. Ceiling
        // division charges a sub-unit body one millisecond and leaves exact
        // multiples unchanged.
        let config = BrowserConfig::default();
        assert_eq!(config.bandwidth_bytes_per_ms, 6_000);
        assert_eq!(transfer_time(0, &config), Duration::ZERO);
        assert_eq!(transfer_time(1, &config), Duration::from_millis(1));
        assert_eq!(transfer_time(5_999, &config), Duration::from_millis(1));
        assert_eq!(transfer_time(6_000, &config), Duration::from_millis(1));
        assert_eq!(transfer_time(6_001, &config), Duration::from_millis(2));
        assert_eq!(transfer_time(12_000, &config), Duration::from_millis(2));
    }

    #[test]
    #[should_panic(expected = "bandwidth_bytes_per_ms is zero")]
    fn browser_rejects_zero_bandwidth_at_construction() {
        let config = BrowserConfig { bandwidth_bytes_per_ms: 0, ..BrowserConfig::default() };
        let _ = Browser::new(config);
    }

    #[test]
    fn session_pages_reuse_pooled_connections_and_resume_handshakes() {
        use crate::connpool::PoolConfig;
        use crate::session::UserSession;

        let env = environment(8, 21);
        let config = BrowserConfig::alexa_measurement();
        let mut scratch = VisitScratch::without_netlog();
        // A roomy pool: no capacity eviction, so the only page-2 opens are
        // replacements for server-churned connections (ticketed origins).
        let pool = PoolConfig { max_connections: 64, idle_timeout: Duration::from_secs(600) };
        let mut session = UserSession::new(pool);
        let mut browser = Browser::new(config);
        let mut clock = SimClock::new();
        let mut rng = SimRng::new(99);

        // Page 1: everything is cold — no resumed handshakes, nothing lent.
        browser.load_session_page_into(&mut scratch, &mut session, &env, &env.sites[0], &mut clock, &mut rng);
        let cold = *scratch.timeline();
        assert_eq!(cold.resumed_handshakes, 0);
        assert!(cold.connections_opened > 0);
        assert!(session.ticket_count() > 0, "every handshake mints a ticket");
        assert!(!session.pool().is_empty(), "open connections are pooled at page end");

        // Page 2, same site a few seconds later: pooled connections carry
        // requests (cross-page reuse) and any connection the page still has
        // to open against a known origin resumes.
        clock.advance(Duration::from_secs(5));
        browser.load_session_page_into(&mut scratch, &mut session, &env, &env.sites[0], &mut clock, &mut rng);
        let warm = *scratch.timeline();
        assert!(session.pool().stats().lent > 0, "page 2 must receive warm connections");
        assert!(
            warm.connections_opened < cold.connections_opened,
            "a warm revisit must open fewer connections than the cold visit ({} vs {})",
            warm.connections_opened,
            cold.connections_opened
        );
        assert_eq!(
            warm.resumed_handshakes, warm.connections_opened,
            "every page-2 handshake targets a ticketed origin and resumes"
        );
        assert_eq!(session.pages_loaded(), 2);

        // Ending the session recycles the pool into scratch shells.
        session.end(&mut scratch, clock.now());
        assert!(session.pool().is_empty());
    }

    #[test]
    fn scratch_and_legacy_paths_produce_identical_visits() {
        // `load_page` is defined as materialising the scratch fast path; an
        // explicit reusable scratch must reproduce it byte for byte,
        // including the NetLog, across several sites sharing one scratch.
        let env = environment(12, 10);
        let crawler = Crawler::new("compat", BrowserConfig::alexa_measurement(), 5);
        let mut scratch = VisitScratch::new();
        for index in 0..env.sites.len() {
            let legacy = crawler.visit_site(&env, index);
            let times = crawler.visit_site_into(&mut scratch, &env, index);
            let fast = scratch.to_page_visit(&env.sites[index], times);
            assert_eq!(legacy.requests, fast.requests);
            assert_eq!(legacy.connections, fast.connections);
            assert_eq!(legacy.netlog, fast.netlog);
            assert_eq!(legacy.started_at, fast.started_at);
            assert_eq!(legacy.finished_at, fast.finished_at);
        }
    }
}
