//! # netsim-browser
//!
//! A Chromium-like browser model: the client whose behaviour the paper
//! measures.
//!
//! The paper's methodology (§4.2) drives Chromium 87 with Browsertime over
//! the Alexa Top 100k and parses the HTTP Archive's Chrome crawls; what it
//! observes is the interaction of three client-side mechanisms:
//!
//! 1. the HTTP/2 session pool, keyed by scheme/host/port *and* privacy mode
//!    (the Fetch credentials partition),
//! 2. RFC 7540 §9.1.1 connection coalescing for SAN-covered hosts resolving
//!    to an already-connected IP, and
//! 3. the DNS answers the configured recursive resolver happens to return.
//!
//! [`Browser::load_page`] reproduces that interaction for one generated site:
//! it walks the site's fetch plan in dependency order, resolves hosts through
//! a [`netsim_dns::RecursiveResolver`], consults its session pool (direct
//! same-origin match first, then the coalescing predicate of
//! [`netsim_h2::reuse`]), opens new [`netsim_h2::Connection`]s when no
//! session qualifies, and records everything as NetLog-style events plus a
//! structured [`visit::PageVisit`].
//!
//! [`crawler::Crawler`] is the Browsertime stand-in: it visits every site of
//! a population (optionally in parallel), producing the dataset the analysis
//! core ingests.

// The zero-allocation visit fast path made these hot paths clone-free;
// keep them that way.
#![deny(clippy::redundant_clone)]
#![deny(clippy::clone_on_copy)]

pub mod config;
pub mod connpool;
pub mod crawler;
pub mod fault;
pub mod loader;
pub mod netlog;
pub mod pool;
pub mod scratch;
pub mod session;
pub mod visit;

pub use config::{BrowserConfig, ConnectionDurationModel};
pub use connpool::{ConnectionPool, PoolConfig, PoolLifecycleStats};
pub use crawler::{CrawlReport, Crawler};
pub use fault::{FaultProfile, RetryPolicy, VisitOutcome};
pub use loader::Browser;
pub use netlog::{NetLog, NetLogEvent, NetLogEventKind};
pub use pool::{PooledScratch, ScratchPool};
pub use scratch::{ScratchRequest, VisitScratch, VisitTimes};
pub use session::{ResumptionCache, UserSession};
pub use visit::{PageVisit, RequestLogEntry};
