//! The structured record of one page visit.

use crate::netlog::NetLog;
use netsim_fetch::RequestDestination;
use netsim_h2::Connection;
use netsim_types::{ConnectionId, DomainName, Instant, RequestId, SiteId};
use serde::{Deserialize, Serialize};

/// One request as logged by the browser (the per-request granularity HAR
/// files carry).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RequestLogEntry {
    /// Request id (unique within the visit).
    pub id: RequestId,
    /// The HTTP/2 session that carried the request (the HAR "socket id").
    pub connection: ConnectionId,
    /// Target host.
    pub domain: DomainName,
    /// Target path.
    pub path: String,
    /// Resource kind.
    pub destination: RequestDestination,
    /// Whether credentials were included (the Fetch decision).
    pub credentialed: bool,
    /// HTTP status of the response.
    pub status: u16,
    /// Response body size in octets.
    pub body_size: u64,
    /// When the request was sent.
    pub started_at: Instant,
}

/// Everything recorded while loading one site's landing page.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PageVisit {
    /// The site that was visited.
    pub site: SiteId,
    /// Its landing-page host.
    pub landing_domain: DomainName,
    /// When the visit started.
    pub started_at: Instant,
    /// When the last response completed.
    pub finished_at: Instant,
    /// Every HTTP/2 session opened during the visit, in establishment order.
    pub connections: Vec<Connection>,
    /// Every request, in send order.
    pub requests: Vec<RequestLogEntry>,
    /// The low-level event log.
    pub netlog: NetLog,
}

impl PageVisit {
    /// Number of sessions opened.
    pub fn connection_count(&self) -> usize {
        self.connections.len()
    }

    /// Number of requests sent.
    pub fn request_count(&self) -> usize {
        self.requests.len()
    }

    /// The connection with the given id, if it belongs to this visit.
    pub fn connection(&self, id: ConnectionId) -> Option<&Connection> {
        self.connections.iter().find(|c| c.id == id)
    }

    /// Requests carried by the given connection, in send order.
    pub fn requests_on(&self, id: ConnectionId) -> impl Iterator<Item = &RequestLogEntry> {
        self.requests.iter().filter(move |r| r.connection == id)
    }

    /// Distinct hosts contacted during the visit.
    pub fn contacted_domains(&self) -> Vec<DomainName> {
        let mut domains: Vec<DomainName> = self.requests.iter().map(|r| r.domain).collect();
        domains.sort();
        domains.dedup();
        domains
    }

    /// The wall-clock duration of the visit.
    pub fn duration(&self) -> netsim_types::Duration {
        self.finished_at - self.started_at
    }
}
