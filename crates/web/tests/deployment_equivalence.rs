//! Property test: building a population on a memoized [`SharedDeployment`]
//! is observationally identical to issuing the service catalog per build.
//!
//! The layered build shares the catalog's DNS zones, certificates and AS
//! prefixes across chunks (`PopulationBuilder::with_shared_deployment`), so
//! everything a browser can observe — the generated sites, DNS answers over
//! time, SNI certificate selection and IP→AS attribution — must match the
//! monolithic build exactly. The atlas scenario's byte-identical reports
//! depend on precisely this equivalence.

use netsim_dns::{QueryContext, ResolverId, Vantage};
use netsim_types::{Duration, Instant, Mitigation, MitigationSet};
use netsim_web::{DeploymentCache, PopulationBuilder, PopulationProfile, WebEnvironment};
use proptest::prelude::*;

/// Build the same population slice both ways.
fn both_builds(
    profile: PopulationProfile,
    sites: usize,
    offset: usize,
    seed: u64,
    mitigations: MitigationSet,
) -> (WebEnvironment, WebEnvironment) {
    let monolithic = PopulationBuilder::new(profile.clone(), sites, seed)
        .with_site_offset(offset)
        .with_mitigations(mitigations)
        .build();
    let cache = DeploymentCache::standard();
    let layered = PopulationBuilder::new(profile, sites, seed)
        .with_site_offset(offset)
        .with_mitigations(mitigations)
        .with_shared_deployment(cache.deployment(mitigations))
        .build();
    (monolithic, layered)
}

/// A small pool of mitigation sets covering the deployment-affecting axes.
fn mitigation_set(index: u8) -> MitigationSet {
    match index % 4 {
        0 => MitigationSet::empty(),
        1 => MitigationSet::single(Mitigation::SynchronizedDns),
        2 => MitigationSet::single(Mitigation::CertificateCoalescing),
        _ => MitigationSet::all(),
    }
}

proptest! {

    #[test]
    fn memoized_deployment_is_observationally_identical(
        seed in 0u64..1_000,
        sites in 1usize..24,
        offset_index in 0usize..3,
        profile_index in 0u8..2,
        mitigation_index in 0u8..4,
    ) {
        let offset = [0usize, 17, 1_000][offset_index];
        let profile =
            if profile_index == 0 { PopulationProfile::alexa() } else { PopulationProfile::archive() };
        let mitigations = mitigation_set(mitigation_index);
        let (monolithic, layered) = both_builds(profile, sites, offset, seed, mitigations);

        // Same sites, same plans (the generator streams must be untouched).
        prop_assert_eq!(&monolithic.sites, &layered.sites);

        // Same certificate inventory size and same SNI selection + coverage
        // for every domain any site contacts.
        prop_assert_eq!(monolithic.certificates.len(), layered.certificates.len());
        for site in &monolithic.sites {
            for request in &site.plan {
                let mono_cert = monolithic.certificate_for(&request.domain);
                let layer_cert = layered.certificate_for(&request.domain);
                prop_assert_eq!(mono_cert, layer_cert, "certificate for {}", request.domain);

                // Same DNS answers at several instants (load balancing is
                // time- and resolver-dependent; equality must hold across
                // epochs and resolver identities).
                for (resolver, minutes) in [(1u32, 0u64), (1, 31), (2, 7), (1000, 123)] {
                    let ctx = QueryContext::new(
                        ResolverId(resolver),
                        Vantage::Europe,
                        Instant::EPOCH + Duration::from_mins(minutes),
                    );
                    let mono_answer = monolithic.authority.query(&request.domain, &ctx);
                    let layer_answer = layered.authority.query(&request.domain, &ctx);
                    prop_assert_eq!(
                        &mono_answer, &layer_answer,
                        "answers diverge for {} at {} min via resolver {}",
                        request.domain, minutes, resolver
                    );

                    // Same IP→AS attribution for every answered address.
                    for record in &mono_answer {
                        if let Some(ip) = record.data.as_a() {
                            prop_assert_eq!(monolithic.asn_for(ip), layered.asn_for(ip));
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn chunked_layered_builds_match_one_monolithic_build() {
    // Chunks over a shared deployment assemble the same population a single
    // monolithic build produces — per chunk, site for site.
    let cache = DeploymentCache::standard();
    let profile = PopulationProfile::archive();
    let whole = PopulationBuilder::new(profile.clone(), 30, 99).build();
    for start in (0..30).step_by(10) {
        let chunk = PopulationBuilder::new(profile.clone(), 10, 99)
            .with_site_offset(start)
            .with_shared_deployment(cache.deployment(MitigationSet::empty()))
            .build();
        for (local, site) in chunk.sites.iter().enumerate() {
            assert_eq!(site, &whole.sites[start + local], "site {} diverges", start + local);
        }
    }
}
