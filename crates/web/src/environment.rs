//! The assembled simulation environment a browser crawls.

use crate::site::Website;
use netsim_asdb::{AsRegistry, AutonomousSystem};
use netsim_dns::Authority;
use netsim_tls::{Certificate, CertificateStore};
use netsim_types::{DomainName, IpAddr, SiteId};
use serde::{Deserialize, Serialize};

/// Everything the browser substrate needs to load the generated population:
/// the DNS authority, the certificate inventory (servers present the
/// certificate selected for the SNI name), the IP → AS registry used by the
/// attribution tables, and the per-site fetch plans.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct WebEnvironment {
    /// Authoritative DNS data for every generated domain.
    pub authority: Authority,
    /// All issued certificates.
    pub certificates: CertificateStore,
    /// Prefix → AS announcements for every allocated prefix.
    pub registry: AsRegistry,
    /// The generated sites.
    pub sites: Vec<Website>,
}

impl WebEnvironment {
    /// The certificate a server presents for SNI name `domain`, if the domain
    /// exists in the population.
    pub fn certificate_for(&self, domain: &DomainName) -> Option<&Certificate> {
        self.certificates.select_for_sni(domain)
    }

    /// The shared handle for the certificate a server presents for SNI name
    /// `domain` — cloning the handle shares the certificate without copying
    /// its SAN list (the browser hot path's form).
    pub fn certificate_arc_for(&self, domain: &DomainName) -> Option<&std::sync::Arc<Certificate>> {
        self.certificates.select_arc_for_sni(domain)
    }

    /// The AS announcing the prefix that contains `ip`.
    pub fn asn_for(&self, ip: IpAddr) -> Option<&AutonomousSystem> {
        self.registry.lookup(ip)
    }

    /// Fetch a site by id.
    pub fn site(&self, id: SiteId) -> Option<&Website> {
        self.sites.get(id.value() as usize).filter(|s| s.id == id)
    }

    /// Number of generated sites.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Total planned requests across all sites.
    pub fn total_planned_requests(&self) -> usize {
        self.sites.iter().map(|s| s.plan.len()).sum()
    }

    /// Total planned response-body octets across all sites (the population's
    /// page weight, reported by the cost experiment).
    pub fn total_planned_octets(&self) -> u64 {
        self.sites.iter().map(Website::planned_octets).sum()
    }
}
