//! # netsim-web
//!
//! The synthetic web population: the structural stand-in for the 6.24 M
//! HTTP-Archive sites and the Alexa Top 100k that the paper measures.
//!
//! A population is built from two ingredients:
//!
//! 1. A **third-party service catalog** ([`services`]) modelled directly on
//!    the origins the paper attributes redundancy to: the Google
//!    Tag-Manager → Analytics chain, the Facebook pixel, the Google ads
//!    stack, Google fonts, hotjar, klaviyo, wp.com statistics, Squarespace
//!    assets and more. Each service describes the requests it triggers when
//!    embedded, how its domains are spread over IP pools (synchronized or
//!    not), how they are grouped into certificates, who issues those
//!    certificates, and which autonomous system hosts them.
//! 2. A **first-party profile** ([`profiles`]) controlling how generated
//!    sites look: how many resources they host themselves, whether they still
//!    use domain sharding, whether the shards share a certificate (the
//!    Let's-Encrypt-per-subdomain long tail of the paper's `CERT` cause), and
//!    how likely they are to embed each third-party service. The `archive`
//!    and `alexa` profiles differ exactly where the paper's two datasets do.
//!
//! [`population::PopulationBuilder`] assembles the DNS authority
//! ([`netsim_dns::Authority`]), the certificate inventory
//! ([`netsim_tls::CertificateStore`]), the AS registry
//! ([`netsim_asdb::AsRegistry`]) and per-site fetch plans ([`resources`])
//! into a [`environment::WebEnvironment`] the browser substrate can crawl.

pub mod deployment;
pub mod environment;
pub mod population;
pub mod profiles;
pub mod resources;
pub mod services;
pub mod site;

pub use deployment::{DeploymentCache, SharedDeployment};
pub use environment::WebEnvironment;
pub use population::PopulationBuilder;
pub use profiles::PopulationProfile;
pub use resources::PlannedRequest;
pub use services::{
    DnsDeployment, IpCluster, ServiceCatalog, ServiceHosting, ServiceRequest, ThirdPartyService,
};
pub use site::{ShardingPlan, Website};
