//! Generated first-party websites.

use crate::resources::PlannedRequest;
use netsim_types::{DomainName, SiteId};
use serde::{Deserialize, Serialize};

/// How (and whether) a site still uses HTTP/1.1-era domain sharding.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ShardingPlan {
    /// The shard hostnames (e.g. `img.example.com`, `static.example.com`).
    pub shards: Vec<DomainName>,
    /// `true` if each shard carries its own certificate (the certbot-default
    /// long tail that produces the paper's `CERT` cause), `false` if one
    /// shared-SAN certificate covers the apex and every shard.
    pub per_domain_certificates: bool,
    /// `true` if the shards sit behind a multi-address CDN entry whose
    /// answers are balanced independently — sharding that produces the `IP`
    /// cause even with a shared certificate.
    pub multi_ip_cdn: bool,
}

impl ShardingPlan {
    /// Number of shard hostnames.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

/// One generated website.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Website {
    /// Stable identifier within the population.
    pub id: SiteId,
    /// The landing-page host (a registrable domain, matching how the Alexa
    /// list is crawled).
    pub domain: DomainName,
    /// Sharding configuration, if the site shards at all.
    pub sharding: Option<ShardingPlan>,
    /// Catalog names of the third-party services the site embeds.
    pub embedded_services: Vec<String>,
    /// The full fetch plan for one landing-page load.
    pub plan: Vec<PlannedRequest>,
}

impl Website {
    /// Every first-party hostname of the site (landing domain plus shards).
    pub fn first_party_domains(&self) -> Vec<DomainName> {
        let mut domains = vec![self.domain];
        if let Some(sharding) = &self.sharding {
            domains.extend(sharding.shards.iter().cloned());
        }
        domains
    }

    /// Every distinct hostname the plan touches.
    pub fn contacted_domains(&self) -> Vec<DomainName> {
        let mut domains: Vec<DomainName> = self.plan.iter().map(|r| r.domain).collect();
        domains.sort();
        domains.dedup();
        domains
    }

    /// Number of planned requests.
    pub fn request_count(&self) -> usize {
        self.plan.len()
    }

    /// Total response-body octets the plan will transfer (the page weight
    /// the cost model prices transfers against).
    pub fn planned_octets(&self) -> u64 {
        self.plan.iter().map(|r| r.body_size).sum()
    }

    /// `true` if the site embeds the named service.
    pub fn embeds(&self, service: &str) -> bool {
        self.embedded_services.iter().any(|s| s == service)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim_fetch::RequestDestination;

    fn d(s: &str) -> DomainName {
        DomainName::literal(s)
    }

    fn site() -> Website {
        Website {
            id: SiteId(7),
            domain: d("example.com"),
            sharding: Some(ShardingPlan {
                shards: vec![d("img.example.com"), d("static.example.com")],
                per_domain_certificates: true,
                multi_ip_cdn: false,
            }),
            embedded_services: vec!["google-analytics".to_string()],
            plan: vec![
                PlannedRequest::document(d("example.com")),
                PlannedRequest::subresource(
                    d("img.example.com"),
                    "/a.png",
                    RequestDestination::Image,
                    0,
                    1000,
                ),
                PlannedRequest::subresource(
                    d("img.example.com"),
                    "/b.png",
                    RequestDestination::Image,
                    0,
                    1000,
                ),
                PlannedRequest::subresource(
                    d("www.googletagmanager.com"),
                    "/gtag/js",
                    RequestDestination::Script,
                    0,
                    90_000,
                ),
            ],
        }
    }

    #[test]
    fn domain_accessors() {
        let s = site();
        assert_eq!(s.first_party_domains().len(), 3);
        assert_eq!(s.contacted_domains().len(), 3, "duplicate img.example.com collapses");
        assert_eq!(s.request_count(), 4);
        assert!(s.embeds("google-analytics"));
        assert!(!s.embeds("hotjar"));
        assert_eq!(s.sharding.as_ref().unwrap().shard_count(), 2);
    }
}
