//! Building a population: services + sites → a crawlable [`WebEnvironment`].

use crate::deployment::SharedDeployment;
use crate::environment::WebEnvironment;
use crate::profiles::PopulationProfile;
use crate::resources::PlannedRequest;
use crate::services::{DnsDeployment, ServiceCatalog, ThirdPartyService};
use crate::site::{ShardingPlan, Website};
use netsim_asdb::{well_known, AsCatalog, AsRegistry};
use netsim_dns::{Authority, LoadBalancePolicy, ZoneEntry};
use netsim_fetch::RequestDestination;
use netsim_tls::{CertificateStore, IssuancePolicy, Issuer, IssuerCatalog};
use netsim_types::{DomainName, Duration, Instant, IpAddr, Mitigation, MitigationSet, SimRng, SiteId};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Subdomain labels used for first-party shards.
const SHARD_LABELS: &[&str] = &["img", "static", "cdn", "assets", "media", "images", "shop", "api"];

/// Top-level domains (and their weights) for generated sites.
const TLDS: &[(&str, f64)] = &[
    ("com", 0.52),
    ("org", 0.09),
    ("net", 0.08),
    ("de", 0.08),
    ("io", 0.05),
    ("co.uk", 0.04),
    ("fr", 0.04),
    ("shop", 0.03),
    ("info", 0.03),
    ("nl", 0.02),
    ("ru", 0.02),
];

/// First-party sub-resource kinds and their weights.
const OWN_RESOURCE_KINDS: &[(RequestDestination, &str, f64)] = &[
    (RequestDestination::Image, "png", 0.50),
    (RequestDestination::Script, "js", 0.22),
    (RequestDestination::Style, "css", 0.15),
    (RequestDestination::Media, "mp4", 0.05),
    (RequestDestination::Xhr, "json", 0.08),
];

/// Epoch length for unsynchronized / synchronized pool balancing. Ten minutes
/// keeps per-resolver assignments stable across one page load (pages finish
/// in seconds) while letting multi-hour crawls and the multi-day probe see
/// the temporal fluctuation the paper's Figure 3 shows.
const LB_EPOCH: Duration = Duration::from_mins(10);

/// Builds a [`WebEnvironment`] from a profile, a service catalog, a site
/// count and a seed. The same inputs always produce the same population.
#[derive(Clone, Debug)]
pub struct PopulationBuilder {
    profile: PopulationProfile,
    catalog: ServiceCatalog,
    as_catalog: AsCatalog,
    issuers: IssuerCatalog,
    site_count: usize,
    site_offset: usize,
    seed: u64,
    mitigations: MitigationSet,
    zipf_head: Option<(PopulationProfile, f64)>,
    deployment: Option<Arc<SharedDeployment>>,
    /// Sampling weights hoisted out of the per-site loop (one allocation per
    /// builder instead of several per generated site).
    tld_weights: Vec<f64>,
    resource_kind_weights: Vec<f64>,
    issuer_weights: Vec<f64>,
    major_as_weights: Vec<f64>,
}

impl PopulationBuilder {
    /// A builder with the standard service catalog.
    pub fn new(profile: PopulationProfile, site_count: usize, seed: u64) -> Self {
        let as_catalog = AsCatalog::default();
        let issuers = IssuerCatalog::default_market();
        PopulationBuilder {
            profile,
            catalog: ServiceCatalog::standard(),
            site_count,
            site_offset: 0,
            seed,
            mitigations: MitigationSet::empty(),
            zipf_head: None,
            deployment: None,
            tld_weights: TLDS.iter().map(|(_, w)| *w).collect(),
            resource_kind_weights: OWN_RESOURCE_KINDS.iter().map(|(_, _, w)| *w).collect(),
            issuer_weights: issuers.weights(),
            major_as_weights: as_catalog.major_weights(),
            as_catalog,
            issuers,
        }
    }

    /// Layer the population on a memoized [`SharedDeployment`] instead of
    /// re-issuing the service catalog: the environment's authority,
    /// certificate store and AS registry start as views over the shared
    /// deployment, and only per-site state is generated locally. The
    /// deployment must have been issued for this builder's mitigation set
    /// (checked) — use [`crate::DeploymentCache`] to obtain one.
    pub fn with_shared_deployment(mut self, deployment: Arc<SharedDeployment>) -> Self {
        self.deployment = Some(deployment);
        self
    }

    /// Generate the slice `[offset, offset + site_count)` of a larger
    /// population: site ids, domain names, RNG streams and profile ranks all
    /// use the *global* index, so building a population in chunks yields
    /// exactly the sites a single monolithic build would (per chunk), with
    /// memory bounded by the chunk size. Used by the atlas scale scenario.
    pub fn with_site_offset(mut self, offset: usize) -> Self {
        self.site_offset = offset;
        self
    }

    /// Mix a second, heavier "head" profile in by Zipf rank: site at global
    /// rank `r` uses `head` with probability `(1 / (1 + r))^exponent`, the
    /// base profile otherwise. This reproduces the top-list effect the paper
    /// observes — popular sites carry more third-party instrumentation — in
    /// one synthetic population. The mix decision consumes one RNG draw from
    /// the site's own stream, so it is independent of chunking and threads.
    pub fn with_zipf_profile_mix(mut self, head: PopulationProfile, exponent: f64) -> Self {
        self.zipf_head = Some((head, exponent));
        self
    }

    /// Replace the third-party service catalog.
    pub fn with_catalog(mut self, catalog: ServiceCatalog) -> Self {
        self.catalog = catalog;
        self
    }

    /// Deploy the environment-side mitigations while generating: synchronized
    /// DNS converts every unsynchronized pool (third-party clusters *and*
    /// first-party multi-IP CDNs) into a synchronized one, and certificate
    /// coalescing merges split certificate groups and per-shard first-party
    /// certificates. All sampling (site layout, embeds, shard plans) consumes
    /// the RNG streams identically, so two builders differing only in
    /// mitigations produce populations with the *same* sites and request
    /// plans — only the deployment differs, which is what makes sweep cells
    /// comparable.
    pub fn with_mitigations(mut self, mitigations: MitigationSet) -> Self {
        self.mitigations = mitigations;
        self
    }

    /// The profile the builder uses.
    pub fn profile(&self) -> &PopulationProfile {
        &self.profile
    }

    /// Generate the population.
    pub fn build(&self) -> WebEnvironment {
        let root = SimRng::new(self.seed);
        let mut misc_installed: BTreeSet<usize> = BTreeSet::new();
        let mitigated_catalog;
        let (mut env, catalog): (WebEnvironment, &ServiceCatalog) = match &self.deployment {
            // Layered build: the shared deployment already carries the
            // catalog's zones/certificates/prefixes; start the environment
            // as views over it and only generate per-site state.
            Some(deployment) => {
                assert_eq!(
                    deployment.mitigations, self.mitigations,
                    "shared deployment was issued under different mitigations"
                );
                let env = WebEnvironment {
                    authority: Authority::with_base(Arc::clone(&deployment.authority)),
                    certificates: CertificateStore::with_base(Arc::clone(&deployment.certificates)),
                    registry: AsRegistry::with_base(Arc::clone(&deployment.registry)),
                    sites: Vec::new(),
                };
                (env, &deployment.catalog)
            }
            None => {
                mitigated_catalog = self.catalog.with_mitigations(self.mitigations);
                let mut env = WebEnvironment::default();
                for service in mitigated_catalog.services() {
                    install_service(&mut env.authority, &mut env.certificates, &mut env.registry, service);
                }
                (env, &mitigated_catalog)
            }
        };

        // Hoisted per-build tables: service embed probabilities aligned with
        // the catalog's service order (replacing a string-keyed lookup per
        // service per site) and the shared own-resource path strings.
        let caches = GenCaches::new(self, catalog);

        for local in 0..self.site_count {
            let index = self.site_offset + local;
            let mut rng = root.fork_indexed("site", index as u64);
            let site =
                self.generate_site(&mut env, catalog, &caches, &root, &mut misc_installed, index, &mut rng);
            env.sites.push(site);
        }
        env
    }

    /// The Zipf head-profile weight for a global site rank.
    fn zipf_weight(rank: usize, exponent: f64) -> f64 {
        (1.0 / (1.0 + rank as f64)).powf(exponent)
    }

    #[allow(clippy::too_many_arguments)]
    fn generate_site(
        &self,
        env: &mut WebEnvironment,
        catalog: &ServiceCatalog,
        caches: &GenCaches,
        root: &SimRng,
        misc_installed: &mut BTreeSet<usize>,
        index: usize,
        rng: &mut SimRng,
    ) -> Website {
        let domain = self.site_domain(index, rng);

        // Per-site profile: the Zipf head draw (if configured) comes first so
        // the remaining sampling reads one coherent profile. Without a mix,
        // the stream is untouched and existing populations stay byte-stable.
        let (profile, embed_probs) = match &self.zipf_head {
            Some((head, exponent)) if rng.chance(Self::zipf_weight(index, *exponent)) => {
                (head, caches.head_embed.as_deref().expect("head probs built with the head profile"))
            }
            _ => (&self.profile, caches.base_embed.as_slice()),
        };

        // Hosting: either fronted by Cloudflare or on a generic hoster.
        let behind_cloudflare = rng.chance(profile.cloudflare_probability);
        let autonomous_system = if behind_cloudflare {
            well_known::cloudflare()
        } else {
            self.as_catalog.generic_for(rng.in_range(0..1_000_000u32))
        };
        let issuer = if behind_cloudflare {
            Issuer::cloudflare()
        } else {
            let pick = rng.pick_weighted_index(&self.issuer_weights).unwrap_or(0);
            self.issuers.issuer_at(pick).clone()
        };

        // Sharding decision.
        let sharding = if rng.chance(profile.sharding_probability) {
            let (low, high) = profile.shard_count_range;
            let count = rng.in_range(low..=high).min(SHARD_LABELS.len());
            let mut labels: Vec<&str> = SHARD_LABELS.to_vec();
            rng.shuffle(&mut labels);
            let shards = labels[..count]
                .iter()
                .map(|label| domain.with_subdomain(label).expect("valid shard label"))
                .collect();
            Some(ShardingPlan {
                shards,
                per_domain_certificates: rng.chance(profile.per_domain_cert_probability),
                multi_ip_cdn: rng.chance(profile.multi_ip_cdn_probability),
            })
        } else {
            None
        };

        let mut first_party = vec![domain];
        if let Some(plan) = &sharding {
            first_party.extend(plan.shards.iter().cloned());
        }

        // First-party DNS.
        let prefix = env.registry.allocate_slash24(autonomous_system);
        let multi_ip = sharding.as_ref().map(|s| s.multi_ip_cdn).unwrap_or(false);
        if multi_ip {
            let pool: Vec<IpAddr> = (0..4).map(|i| prefix.host(10 + i)).collect();
            for fp_domain in &first_party {
                let mut policy = LoadBalancePolicy::PerResolverPool {
                    pool: pool.clone(),
                    answer_size: 1,
                    epoch: LB_EPOCH,
                };
                if self.mitigations.contains(Mitigation::SynchronizedDns) {
                    policy = policy.synchronized();
                }
                env.authority.insert_entry(*fp_domain, ZoneEntry::balanced(policy));
            }
        } else {
            let ip = prefix.host(10);
            for fp_domain in &first_party {
                env.authority.insert_entry(*fp_domain, ZoneEntry::single(ip));
            }
        }

        // First-party certificates.
        let per_domain = sharding.as_ref().map(|s| s.per_domain_certificates).unwrap_or(false);
        let mut policy = if per_domain { IssuancePolicy::PerDomain } else { IssuancePolicy::SharedSan };
        if self.mitigations.contains(Mitigation::CertificateCoalescing) {
            policy = policy.coalesced();
        }
        env.certificates.issue_with_policy(issuer, &policy, &first_party, Instant::EPOCH);

        // Fetch plan: document first. Typical plans run to a few dozen
        // requests; reserving up front skips the growth reallocations.
        let mut plan = Vec::with_capacity(48);
        plan.push(PlannedRequest::document(domain));

        // Own sub-resources, spread over the first-party hosts.
        let (res_low, res_high) = profile.own_resource_range;
        let own_resources = rng.in_range(res_low..=res_high);
        for resource_index in 0..own_resources {
            let host = if first_party.len() == 1 || rng.chance(0.5) {
                first_party[0]
            } else {
                first_party[1 + rng.in_range(0..first_party.len() - 1)]
            };
            let kind = rng.pick_weighted_index(&self.resource_kind_weights).unwrap_or(0);
            let (destination, _, _) = OWN_RESOURCE_KINDS[kind];
            let size = rng.in_range(1_500u64..250_000);
            plan.push(PlannedRequest::subresource(
                host,
                caches.resource_path(resource_index, kind),
                destination,
                0,
                size,
            ));
        }

        // Third-party services.
        let mut embedded = Vec::new();
        for (service, embed_probability) in catalog.services().iter().zip(embed_probs) {
            if !rng.chance(*embed_probability) {
                continue;
            }
            embedded.push(service.name.clone());
            append_service_requests(&mut plan, service, rng);
        }

        // Unrelated one-off third parties (the "unknown third party" class).
        let (misc_low, misc_high) = profile.misc_third_party_range;
        let misc_count = rng.in_range(misc_low..=misc_high);
        for _ in 0..misc_count {
            let pool_index = rng.in_range(0..profile.misc_third_party_pool);
            let misc_domain = misc_domain_for(pool_index);
            if misc_installed.insert(pool_index) {
                self.install_misc_third_party(env, root, pool_index, &misc_domain);
            }
            let destination =
                if rng.chance(0.6) { RequestDestination::Script } else { RequestDestination::Image };
            let size = rng.in_range(1_000u64..120_000);
            plan.push(PlannedRequest::subresource(
                misc_domain,
                Arc::clone(&caches.widget_path),
                destination,
                0,
                size,
            ));
        }

        Website { id: SiteId(index as u64), domain, sharding, embedded_services: embedded, plan }
    }

    fn site_domain(&self, index: usize, rng: &mut SimRng) -> DomainName {
        let tld = TLDS[rng.pick_weighted_index(&self.tld_weights).unwrap_or(0)].0;
        DomainName::parse(&format!("{}-site-{index:06}.{tld}", self.profile.name))
            .expect("generated domain is valid")
    }

    fn install_misc_third_party(
        &self,
        env: &mut WebEnvironment,
        root: &SimRng,
        pool_index: usize,
        domain: &DomainName,
    ) {
        // Deterministic regardless of which site touches the domain first.
        let mut rng = root.fork_indexed("misc-third-party", pool_index as u64);
        let autonomous_system = if rng.chance(0.35) {
            let pick = rng.pick_weighted_index(&self.major_as_weights).unwrap_or(0);
            self.as_catalog.major_at(pick).clone()
        } else {
            self.as_catalog.generic_for(rng.in_range(0..1_000_000u32))
        };
        let prefix = env.registry.allocate_slash24(autonomous_system);
        env.authority.insert_entry(*domain, ZoneEntry::single(prefix.host(20)));
        let issuer =
            self.issuers.issuer_at(rng.pick_weighted_index(&self.issuer_weights).unwrap_or(0)).clone();
        env.certificates.issue_with_policy(
            issuer,
            &IssuancePolicy::SharedSan,
            std::slice::from_ref(domain),
            Instant::EPOCH,
        );
    }
}

/// Per-build lookup tables hoisted out of the per-site generation loop:
/// embed probabilities aligned with the catalog's service order and the
/// shared path strings every site's plan reuses.
struct GenCaches {
    /// Embed probability per catalog service for the base profile.
    base_embed: Vec<f64>,
    /// Same for the Zipf head profile, when one is configured.
    head_embed: Option<Vec<f64>>,
    /// `resource_paths[resource_index * KINDS + kind]` — shared across sites.
    resource_paths: Vec<Arc<str>>,
    /// The misc third-party widget path.
    widget_path: Arc<str>,
}

impl GenCaches {
    fn new(builder: &PopulationBuilder, catalog: &ServiceCatalog) -> Self {
        let base_embed =
            catalog.services().iter().map(|s| builder.profile.embed_probability(&s.name)).collect();
        let head_embed = builder
            .zipf_head
            .as_ref()
            .map(|(head, _)| catalog.services().iter().map(|s| head.embed_probability(&s.name)).collect());
        let max_resources = builder
            .profile
            .own_resource_range
            .1
            .max(builder.zipf_head.as_ref().map(|(head, _)| head.own_resource_range.1).unwrap_or(0));
        let mut resource_paths = Vec::with_capacity(max_resources * OWN_RESOURCE_KINDS.len());
        for resource_index in 0..max_resources {
            for (_, extension, _) in OWN_RESOURCE_KINDS {
                resource_paths
                    .push(Arc::from(format!("/assets/resource-{resource_index}.{extension}").as_str()));
            }
        }
        GenCaches { base_embed, head_embed, resource_paths, widget_path: Arc::from("/embed/widget.js") }
    }

    /// The shared path of the `resource_index`-th own resource of kind
    /// `kind` (an index into [`OWN_RESOURCE_KINDS`]).
    fn resource_path(&self, resource_index: usize, kind: usize) -> Arc<str> {
        Arc::clone(&self.resource_paths[resource_index * OWN_RESOURCE_KINDS.len() + kind])
    }
}

/// The shared pool of unrelated third-party domains.
fn misc_domain_for(pool_index: usize) -> DomainName {
    DomainName::parse(&format!("cdn.thirdparty-{pool_index:04}.net")).expect("misc domain is valid")
}

/// Install one third-party service: DNS entries per IP cluster, certificates
/// per certificate group, prefixes in the AS registry. Takes the three
/// deployment structures separately so that [`SharedDeployment::issue`] can
/// install into standalone (environment-less) instances.
pub(crate) fn install_service(
    authority: &mut Authority,
    certificates: &mut CertificateStore,
    registry: &mut AsRegistry,
    service: &ThirdPartyService,
) {
    let hosting = &service.hosting;
    for cluster in &hosting.ip_clusters {
        match &cluster.deployment {
            DnsDeployment::SingleHost => {
                let prefix = registry.allocate_slash24(hosting.autonomous_system.clone());
                let ip = prefix.host(10);
                for domain in &cluster.domains {
                    authority.insert_entry(*domain, ZoneEntry::single(ip));
                }
            }
            DnsDeployment::UnsynchronizedPool { pool_size, answer_size } => {
                let prefix = registry.allocate_slash24(hosting.autonomous_system.clone());
                let pool: Vec<IpAddr> = (0..*pool_size).map(|i| prefix.host(10 + i as u64)).collect();
                for domain in &cluster.domains {
                    authority.insert_entry(
                        *domain,
                        ZoneEntry::balanced(LoadBalancePolicy::PerResolverPool {
                            pool: pool.clone(),
                            answer_size: *answer_size,
                            epoch: LB_EPOCH,
                        }),
                    );
                }
            }
            DnsDeployment::SynchronizedPool { pool_size, answer_size } => {
                let prefix = registry.allocate_slash24(hosting.autonomous_system.clone());
                let pool: Vec<IpAddr> = (0..*pool_size).map(|i| prefix.host(10 + i as u64)).collect();
                for domain in &cluster.domains {
                    authority.insert_entry(
                        *domain,
                        ZoneEntry::balanced(LoadBalancePolicy::SynchronizedPool {
                            pool: pool.clone(),
                            answer_size: *answer_size,
                            epoch: LB_EPOCH,
                        }),
                    );
                }
            }
            DnsDeployment::DistinctNetworks => {
                for domain in &cluster.domains {
                    let prefix = registry.allocate_slash24(hosting.autonomous_system.clone());
                    authority.insert_entry(*domain, ZoneEntry::single(prefix.host(10)));
                }
            }
        }
    }
    for group in &hosting.certificate_groups {
        certificates.issue_with_policy(
            hosting.issuer.clone(),
            &IssuancePolicy::SharedSan,
            group,
            Instant::EPOCH,
        );
    }
}

/// Append a service's request chain to a site plan, sampling per-request
/// probabilities and remapping parent indices. Requests whose parent was
/// skipped attach to the document instead.
fn append_service_requests(plan: &mut Vec<PlannedRequest>, service: &ThirdPartyService, rng: &mut SimRng) {
    let mut plan_index_of: Vec<Option<usize>> = Vec::with_capacity(service.requests.len());
    for request in &service.requests {
        if !rng.chance(request.probability) {
            plan_index_of.push(None);
            continue;
        }
        let parent = match request.initiated_by {
            None => 0,
            Some(service_parent) => plan_index_of.get(service_parent).copied().flatten().unwrap_or(0),
        };
        let mut planned = PlannedRequest::subresource(
            request.domain,
            Arc::clone(&request.path),
            request.destination,
            parent,
            request.body_size,
        );
        if request.anonymous {
            planned = planned.anonymous();
        }
        plan.push(planned);
        plan_index_of.push(Some(plan.len() - 1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::plan_is_well_formed;

    fn build_small(profile: PopulationProfile, count: usize, seed: u64) -> WebEnvironment {
        PopulationBuilder::new(profile, count, seed).build()
    }

    #[test]
    fn build_is_deterministic() {
        let a = build_small(PopulationProfile::archive(), 50, 42);
        let b = build_small(PopulationProfile::archive(), 50, 42);
        assert_eq!(a.sites, b.sites);
        assert_eq!(a.certificates.len(), b.certificates.len());
        let c = build_small(PopulationProfile::archive(), 50, 43);
        assert_ne!(a.sites, c.sites);
    }

    #[test]
    fn mitigated_population_keeps_sites_and_plans_identical() {
        let baseline = PopulationBuilder::new(PopulationProfile::alexa(), 60, 13).build();
        let mitigated = PopulationBuilder::new(PopulationProfile::alexa(), 60, 13)
            .with_mitigations(MitigationSet::all())
            .build();
        // Same sites, same request plans — only the deployment differs.
        assert_eq!(baseline.sites, mitigated.sites);
        // Certificate coalescing can only reduce the number of certificates.
        assert!(mitigated.certificates.len() <= baseline.certificates.len());
        // Every plan still resolves and has a covering certificate.
        for site in &mitigated.sites {
            for request in &site.plan {
                assert!(mitigated.authority.knows(&request.domain));
                let cert = mitigated.certificate_for(&request.domain).expect("certificate exists");
                assert!(cert.covers(&request.domain));
            }
        }
    }

    #[test]
    fn every_plan_is_well_formed_and_resolvable() {
        let env = build_small(PopulationProfile::alexa(), 80, 7);
        assert_eq!(env.site_count(), 80);
        for site in &env.sites {
            assert!(plan_is_well_formed(&site.plan), "site {} has malformed plan", site.domain);
            for request in &site.plan {
                assert!(
                    env.authority.knows(&request.domain),
                    "no DNS entry for {} (site {})",
                    request.domain,
                    site.domain
                );
                assert!(
                    env.certificate_for(&request.domain).is_some(),
                    "no certificate for {} (site {})",
                    request.domain,
                    site.domain
                );
            }
        }
    }

    #[test]
    fn certificates_cover_their_sni_domains() {
        let env = build_small(PopulationProfile::archive(), 60, 11);
        for site in &env.sites {
            for domain in site.contacted_domains() {
                let cert = env.certificate_for(&domain).expect("certificate exists");
                assert!(cert.covers(&domain), "certificate for {domain} does not cover it");
            }
        }
    }

    #[test]
    fn embed_rates_follow_the_profile_roughly() {
        let env = build_small(PopulationProfile::alexa(), 400, 3);
        let ga_sites = env.sites.iter().filter(|s| s.embeds("google-analytics")).count();
        let rate = ga_sites as f64 / env.site_count() as f64;
        let target = PopulationProfile::alexa().embed_probability("google-analytics");
        assert!((rate - target).abs() < 0.12, "rate {rate} too far from target {target}");
    }

    #[test]
    fn sharded_sites_have_first_party_shard_hosts() {
        let env = build_small(PopulationProfile::archive(), 200, 5);
        let sharded: Vec<&Website> = env.sites.iter().filter(|s| s.sharding.is_some()).collect();
        assert!(!sharded.is_empty());
        for site in sharded {
            let sharding = site.sharding.as_ref().unwrap();
            assert!(!sharding.shards.is_empty());
            for shard in &sharding.shards {
                assert!(shard.is_subdomain_of(&site.domain));
                assert!(env.authority.knows(shard));
            }
        }
    }

    #[test]
    fn service_ips_come_from_their_as() {
        let env = build_small(PopulationProfile::archive(), 10, 9);
        // The analytics cluster is announced by GOOGLE.
        let ga = DomainName::literal("www.google-analytics.com");
        let records = env.authority.query(
            &ga,
            &netsim_dns::QueryContext::new(
                netsim_dns::ResolverId(0),
                netsim_dns::Vantage::Europe,
                Instant::EPOCH,
            ),
        );
        assert!(!records.is_empty());
        let ip = records[0].data.as_a().unwrap();
        assert_eq!(env.asn_for(ip).unwrap().name, "GOOGLE");
    }

    #[test]
    fn misc_third_parties_are_shared_between_sites() {
        let env = build_small(PopulationProfile::alexa(), 300, 21);
        let mut misc_domains: Vec<DomainName> = env
            .sites
            .iter()
            .flat_map(|s| s.contacted_domains())
            .filter(|d| d.as_str().contains("thirdparty-"))
            .collect();
        assert!(!misc_domains.is_empty());
        misc_domains.sort();
        let total = misc_domains.len();
        misc_domains.dedup();
        assert!(misc_domains.len() < total, "misc third parties should repeat across sites");
    }
}
