//! The third-party service catalog.
//!
//! Each [`ThirdPartyService`] models one of the embedded services the paper
//! traces redundancy to (§5.3, Tables 2, 4, 12): the requests it triggers
//! when a page embeds it, how its domains are spread across IP pools, how
//! those domains are grouped into certificates and who issues them, and which
//! autonomous system hosts the whole thing. The combination of *IP cluster*
//! and *certificate group* is what decides which of the paper's causes a
//! service can produce:
//!
//! | IP relation        | certificate relation | outcome                     |
//! |--------------------|----------------------|-----------------------------|
//! | same address       | shared certificate   | reuse works (or `CRED`)     |
//! | same address       | disjunct certificates| `CERT`                      |
//! | different address  | shared certificate   | `IP`                        |
//! | different address  | disjunct certificates| unavoidable third party     |

use netsim_asdb::{well_known, AutonomousSystem};
use netsim_fetch::RequestDestination;
use netsim_tls::Issuer;
use netsim_types::{DomainName, Mitigation, MitigationSet};
use serde::{Deserialize, Serialize};

/// One request a service triggers when embedded.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServiceRequest {
    /// Host serving the resource.
    pub domain: DomainName,
    /// Resource path (shared across every site embedding the service).
    pub path: std::sync::Arc<str>,
    /// Resource kind (fixes Fetch mode/credentials defaults).
    pub destination: RequestDestination,
    /// `true` if the request is made without credentials (anonymous CORS).
    pub anonymous: bool,
    /// Response body size in octets.
    pub body_size: u64,
    /// Index of the service request that triggers this one; `None` when the
    /// embedding document triggers it directly.
    pub initiated_by: Option<usize>,
    /// Probability that this request occurs on a given embedding (sampled per
    /// site by the population builder).
    pub probability: f64,
}

impl ServiceRequest {
    fn new(
        domain: &str,
        path: &str,
        destination: RequestDestination,
        initiated_by: Option<usize>,
        body_size: u64,
    ) -> Self {
        ServiceRequest {
            domain: DomainName::literal(domain),
            path: std::sync::Arc::from(path),
            destination,
            anonymous: false,
            body_size,
            initiated_by,
            probability: 1.0,
        }
    }

    fn anonymous(mut self) -> Self {
        self.anonymous = true;
        self
    }

    fn with_probability(mut self, probability: f64) -> Self {
        self.probability = probability;
        self
    }
}

/// How the domains of one IP cluster are mapped to addresses.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum DnsDeployment {
    /// Every domain of the cluster resolves to one shared static address.
    SingleHost,
    /// All domains draw from one shared pool, but each domain is balanced
    /// independently per resolver and epoch — the *unsynchronized* deployment
    /// behind the paper's `IP` cause.
    UnsynchronizedPool {
        /// Number of addresses in the shared pool (one /24 is carved up).
        pool_size: u8,
        /// Addresses returned per answer.
        answer_size: usize,
    },
    /// All domains draw from one pool with a selection that ignores the
    /// domain, so they always land on the same member — the deployment the
    /// paper recommends (shared CNAME / anycast).
    SynchronizedPool {
        /// Number of addresses in the shared pool.
        pool_size: u8,
        /// Addresses returned per answer.
        answer_size: usize,
    },
    /// Every domain gets its own static address in its own /24 — genuinely
    /// distributed infrastructure (the wp.com case), not interchangeable.
    DistinctNetworks,
}

/// A group of domains that share address infrastructure.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct IpCluster {
    /// Domains in the cluster.
    pub domains: Vec<DomainName>,
    /// How they are mapped to addresses.
    pub deployment: DnsDeployment,
}

/// Hosting description of a service.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServiceHosting {
    /// Operating party (used in reports only).
    pub operator: String,
    /// Autonomous system announcing the service's prefixes.
    pub autonomous_system: AutonomousSystem,
    /// CA issuing the service's certificates.
    pub issuer: Issuer,
    /// Address clusters.
    pub ip_clusters: Vec<IpCluster>,
    /// Domains listed together share one certificate; domains in separate
    /// groups get disjunct certificates.
    pub certificate_groups: Vec<Vec<DomainName>>,
}

/// A third-party service that sites can embed.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ThirdPartyService {
    /// Stable catalog name (referenced by population profiles).
    pub name: String,
    /// The request chain the embedding triggers.
    pub requests: Vec<ServiceRequest>,
    /// Hosting/PKI/DNS description.
    pub hosting: ServiceHosting,
}

impl ThirdPartyService {
    /// Every domain the service can be contacted on.
    pub fn domains(&self) -> Vec<DomainName> {
        let mut domains: Vec<DomainName> =
            self.hosting.ip_clusters.iter().flat_map(|c| c.domains.iter().cloned()).collect();
        domains.sort();
        domains.dedup();
        domains
    }
}

fn d(s: &str) -> DomainName {
    DomainName::literal(s)
}

fn ds(names: &[&str]) -> Vec<DomainName> {
    names.iter().map(|s| d(s)).collect()
}

/// The full catalog of modelled services.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServiceCatalog {
    services: Vec<ThirdPartyService>,
}

impl ServiceCatalog {
    /// The standard catalog mirroring the origins of Tables 2, 4 and 12.
    pub fn standard() -> Self {
        ServiceCatalog {
            services: vec![
                google_analytics(),
                facebook_pixel(),
                google_ads(),
                google_fonts(),
                google_platform(),
                youtube_embed(),
                hotjar(),
                klaviyo(),
                wordpress_stats(),
                squarespace_assets(),
                reddit_widget(),
                unruly_sync(),
            ],
        }
    }

    /// All services.
    pub fn services(&self) -> &[ThirdPartyService] {
        &self.services
    }

    /// Look a service up by its catalog name.
    pub fn get(&self, name: &str) -> Option<&ThirdPartyService> {
        self.services.iter().find(|s| s.name == name)
    }

    /// Number of services.
    pub fn len(&self) -> usize {
        self.services.len()
    }

    /// `true` if the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.services.is_empty()
    }

    /// A what-if variant of the catalog in which every provider has fixed its
    /// DNS the way the paper suggests (§5.3.1): all unsynchronized pools
    /// become synchronized (same CNAME / anycast-style), so co-hosted domains
    /// always resolve to the same address. Certificate grouping and request
    /// chains are unchanged.
    pub fn with_synchronized_dns(&self) -> ServiceCatalog {
        let services = self
            .services
            .iter()
            .cloned()
            .map(|mut service| {
                for cluster in &mut service.hosting.ip_clusters {
                    if let DnsDeployment::UnsynchronizedPool { pool_size, answer_size } = cluster.deployment {
                        cluster.deployment = DnsDeployment::SynchronizedPool { pool_size, answer_size };
                    }
                }
                service
            })
            .collect();
        ServiceCatalog { services }
    }

    /// A what-if variant in which every provider has coalesced its
    /// certificates: all certificate groups of a service merge into a single
    /// group, so one certificate covers every domain the service serves.
    /// DNS deployments and request chains are unchanged. This is the
    /// catalog-side half of [`Mitigation::CertificateCoalescing`].
    pub fn with_coalesced_certificates(&self) -> ServiceCatalog {
        let services = self
            .services
            .iter()
            .cloned()
            .map(|mut service| {
                let mut merged: Vec<DomainName> =
                    service.hosting.certificate_groups.drain(..).flatten().collect();
                merged.sort();
                merged.dedup();
                if !merged.is_empty() {
                    service.hosting.certificate_groups = vec![merged];
                }
                service
            })
            .collect();
        ServiceCatalog { services }
    }

    /// The catalog as deployed under `mitigations`: applies
    /// [`Mitigation::SynchronizedDns`] and
    /// [`Mitigation::CertificateCoalescing`] when present (the other two
    /// mitigations are client-side and do not change the catalog). The empty
    /// set returns the catalog unchanged.
    pub fn with_mitigations(&self, mitigations: MitigationSet) -> ServiceCatalog {
        let mut catalog = self.clone();
        if mitigations.contains(Mitigation::SynchronizedDns) {
            catalog = catalog.with_synchronized_dns();
        }
        if mitigations.contains(Mitigation::CertificateCoalescing) {
            catalog = catalog.with_coalesced_certificates();
        }
        catalog
    }
}

/// Google Tag Manager → Google Analytics: the paper's top `IP`-cause pair.
/// Both domains sit in one Google certificate but are load balanced
/// independently; the trailing `collect` beacon is credential-less and hits
/// the analytics domain again, producing the same-domain `CRED` case.
fn google_analytics() -> ThirdPartyService {
    ThirdPartyService {
        name: "google-analytics".to_string(),
        requests: vec![
            ServiceRequest::new(
                "www.googletagmanager.com",
                "/gtag/js",
                RequestDestination::Script,
                None,
                94_000,
            ),
            ServiceRequest::new(
                "www.google-analytics.com",
                "/analytics.js",
                RequestDestination::Script,
                Some(0),
                50_000,
            ),
            ServiceRequest::new(
                "www.google-analytics.com",
                "/j/collect",
                RequestDestination::Beacon,
                Some(1),
                35,
            )
            .anonymous()
            .with_probability(0.8),
            ServiceRequest::new(
                "www.google-analytics.com",
                "/collect",
                RequestDestination::Image,
                Some(1),
                35,
            )
            .with_probability(0.35),
            // gtag keeps talking to the tag manager after analytics loaded,
            // which keeps the first connection alive past the point where the
            // analytics connection is opened (matters for the paper's
            // "immediate" duration bound).
            ServiceRequest::new(
                "www.googletagmanager.com",
                "/gtag/destination",
                RequestDestination::Xhr,
                Some(1),
                2_300,
            )
            .with_probability(0.6),
        ],
        hosting: ServiceHosting {
            operator: "Google".to_string(),
            autonomous_system: well_known::google(),
            issuer: Issuer::google_trust_services(),
            ip_clusters: vec![IpCluster {
                domains: ds(&["www.googletagmanager.com", "www.google-analytics.com"]),
                deployment: DnsDeployment::UnsynchronizedPool { pool_size: 8, answer_size: 1 },
            }],
            certificate_groups: vec![ds(&["www.googletagmanager.com", "www.google-analytics.com"])],
        },
    }
}

/// The Facebook pixel: `connect.facebook.net` script loading a 1×1 GIF from
/// `www.facebook.com`; shared certificate, independently balanced addresses
/// in the same /24 (paper §5.3.1).
fn facebook_pixel() -> ThirdPartyService {
    ThirdPartyService {
        name: "facebook-pixel".to_string(),
        requests: vec![
            ServiceRequest::new(
                "connect.facebook.net",
                "/en_US/fbevents.js",
                RequestDestination::Script,
                None,
                104_000,
            ),
            ServiceRequest::new("www.facebook.com", "/tr/", RequestDestination::Image, Some(0), 44),
            ServiceRequest::new(
                "www.facebook.com",
                "/tr/?ev=PageView",
                RequestDestination::Image,
                Some(0),
                44,
            )
            .with_probability(0.4),
            ServiceRequest::new(
                "connect.facebook.net",
                "/signals/config/1234",
                RequestDestination::Script,
                Some(1),
                38_000,
            )
            .with_probability(0.5),
        ],
        hosting: ServiceHosting {
            operator: "Facebook".to_string(),
            autonomous_system: well_known::facebook(),
            issuer: Issuer::digicert(),
            ip_clusters: vec![IpCluster {
                domains: ds(&["connect.facebook.net", "www.facebook.com"]),
                deployment: DnsDeployment::UnsynchronizedPool { pool_size: 8, answer_size: 1 },
            }],
            certificate_groups: vec![ds(&["connect.facebook.net", "www.facebook.com"])],
        },
    }
}

/// The Google ads stack: the syndication/doubleclick domains share one
/// certificate but are balanced independently (`IP`), while
/// `adservice.google.*` and `www.googleadservices.com` carry their own GTS
/// certificates on the same pool (`CERT` whenever they land on an address an
/// earlier ads connection already uses).
fn google_ads() -> ThirdPartyService {
    ThirdPartyService {
        name: "google-ads".to_string(),
        requests: vec![
            ServiceRequest::new(
                "pagead2.googlesyndication.com",
                "/pagead/js/adsbygoogle.js",
                RequestDestination::Script,
                None,
                255_000,
            ),
            ServiceRequest::new(
                "www.googleadservices.com",
                "/pagead/conversion_async.js",
                RequestDestination::Script,
                Some(0),
                31_000,
            )
            .with_probability(0.45),
            ServiceRequest::new(
                "googleads.g.doubleclick.net",
                "/pagead/id",
                RequestDestination::Xhr,
                Some(0),
                1_200,
            )
            .with_probability(0.9),
            ServiceRequest::new(
                "adservice.google.com",
                "/adsid/integrator.js",
                RequestDestination::Script,
                Some(0),
                15_000,
            )
            .with_probability(0.5),
            ServiceRequest::new(
                "adservice.google.de",
                "/adsid/integrator.js",
                RequestDestination::Script,
                Some(0),
                15_000,
            )
            .with_probability(0.08),
            ServiceRequest::new(
                "tpc.googlesyndication.com",
                "/simgad/1234567890",
                RequestDestination::Image,
                Some(2),
                48_000,
            )
            .with_probability(0.7),
            ServiceRequest::new(
                "stats.g.doubleclick.net",
                "/j/collect",
                RequestDestination::Beacon,
                Some(2),
                35,
            )
            .anonymous()
            .with_probability(0.4),
            ServiceRequest::new(
                "www.googletagservices.com",
                "/tag/js/gpt.js",
                RequestDestination::Script,
                None,
                62_000,
            )
            .with_probability(0.45),
            ServiceRequest::new(
                "securepubads.g.doubleclick.net",
                "/gpt/pubads_impl.js",
                RequestDestination::Script,
                Some(7),
                210_000,
            )
            .with_probability(0.4),
            ServiceRequest::new(
                "partner.googleadservices.com",
                "/gampad/ads",
                RequestDestination::Xhr,
                Some(7),
                4_000,
            )
            .with_probability(0.3),
            ServiceRequest::new("cm.g.doubleclick.net", "/pixel", RequestDestination::Image, Some(2), 43)
                .with_probability(0.25),
            // Late ad refreshes keep the syndication connection in use after
            // the doubleclick connection exists.
            ServiceRequest::new(
                "pagead2.googlesyndication.com",
                "/pagead/js/r20210420/show_ads_impl.js",
                RequestDestination::Script,
                Some(2),
                120_000,
            )
            .with_probability(0.55),
        ],
        hosting: ServiceHosting {
            operator: "Google".to_string(),
            autonomous_system: well_known::google(),
            issuer: Issuer::google_trust_services(),
            ip_clusters: vec![IpCluster {
                domains: ds(&[
                    "pagead2.googlesyndication.com",
                    "googleads.g.doubleclick.net",
                    "tpc.googlesyndication.com",
                    "stats.g.doubleclick.net",
                    "securepubads.g.doubleclick.net",
                    "www.googletagservices.com",
                    "partner.googleadservices.com",
                    "www.googleadservices.com",
                    "adservice.google.com",
                    "adservice.google.de",
                    "cm.g.doubleclick.net",
                ]),
                deployment: DnsDeployment::UnsynchronizedPool { pool_size: 12, answer_size: 1 },
            }],
            certificate_groups: vec![
                ds(&[
                    "pagead2.googlesyndication.com",
                    "googleads.g.doubleclick.net",
                    "tpc.googlesyndication.com",
                    "stats.g.doubleclick.net",
                    "securepubads.g.doubleclick.net",
                    "www.googletagservices.com",
                    "partner.googleadservices.com",
                    "cm.g.doubleclick.net",
                ]),
                ds(&["www.googleadservices.com"]),
                ds(&["adservice.google.com"]),
                ds(&["adservice.google.de"]),
            ],
        },
    }
}

/// Google Fonts: the stylesheet is credentialed, the font files are
/// credential-less CORS fetches, and some sites additionally pull an icon
/// stylesheet anonymously — producing the same-domain `CRED` case the paper
/// reports for most CRED-affected sites.
fn google_fonts() -> ThirdPartyService {
    ThirdPartyService {
        name: "google-fonts".to_string(),
        requests: vec![
            ServiceRequest::new(
                "fonts.googleapis.com",
                "/css2?family=Roboto",
                RequestDestination::Style,
                None,
                1_800,
            ),
            ServiceRequest::new(
                "fonts.gstatic.com",
                "/s/roboto/v30/KFOmCnqEu92Fr1Mu4mxK.woff2",
                RequestDestination::Font,
                Some(0),
                15_000,
            ),
            ServiceRequest::new(
                "fonts.gstatic.com",
                "/s/roboto/v30/KFOlCnqEu92Fr1MmEU9fBBc4.woff2",
                RequestDestination::Font,
                Some(0),
                15_500,
            )
            .with_probability(0.7),
            ServiceRequest::new(
                "fonts.googleapis.com",
                "/icon?family=Material+Icons",
                RequestDestination::Style,
                None,
                900,
            )
            .anonymous()
            .with_probability(0.35),
            ServiceRequest::new(
                "ajax.googleapis.com",
                "/ajax/libs/webfont/1.6.26/webfont.js",
                RequestDestination::Script,
                None,
                18_000,
            )
            .with_probability(0.3),
            ServiceRequest::new(
                "maps.googleapis.com",
                "/maps/api/js",
                RequestDestination::Script,
                None,
                110_000,
            )
            .with_probability(0.15),
        ],
        hosting: ServiceHosting {
            operator: "Google".to_string(),
            autonomous_system: well_known::google(),
            issuer: Issuer::google_trust_services(),
            ip_clusters: vec![
                IpCluster {
                    domains: ds(&["fonts.googleapis.com", "ajax.googleapis.com", "maps.googleapis.com"]),
                    deployment: DnsDeployment::UnsynchronizedPool { pool_size: 6, answer_size: 1 },
                },
                IpCluster {
                    domains: ds(&["fonts.gstatic.com"]),
                    deployment: DnsDeployment::UnsynchronizedPool { pool_size: 6, answer_size: 1 },
                },
            ],
            certificate_groups: vec![
                ds(&["fonts.googleapis.com", "ajax.googleapis.com", "maps.googleapis.com"]),
                ds(&["fonts.gstatic.com"]),
            ],
        },
    }
}

/// Google platform widgets (`apis.google.com`, `ogs.google.com`) that ride on
/// `www.gstatic.com` assets — a visible `IP` pair in the Alexa measurement.
fn google_platform() -> ThirdPartyService {
    ThirdPartyService {
        name: "google-platform".to_string(),
        requests: vec![
            ServiceRequest::new(
                "www.gstatic.com",
                "/og/_/js/k=og.qtm.en_US.js",
                RequestDestination::Script,
                None,
                86_000,
            ),
            ServiceRequest::new(
                "apis.google.com",
                "/js/platform.js",
                RequestDestination::Script,
                Some(0),
                58_000,
            )
            .with_probability(0.8),
            ServiceRequest::new("ogs.google.com", "/widget/app", RequestDestination::Iframe, Some(0), 22_000)
                .with_probability(0.4),
            ServiceRequest::new(
                "www.google.com",
                "/recaptcha/api.js",
                RequestDestination::Script,
                None,
                1_200,
            )
            .with_probability(0.35),
        ],
        hosting: ServiceHosting {
            operator: "Google".to_string(),
            autonomous_system: well_known::google(),
            issuer: Issuer::google_trust_services(),
            ip_clusters: vec![IpCluster {
                domains: ds(&["www.gstatic.com", "apis.google.com", "ogs.google.com", "www.google.com"]),
                deployment: DnsDeployment::UnsynchronizedPool { pool_size: 8, answer_size: 1 },
            }],
            certificate_groups: vec![ds(&[
                "www.gstatic.com",
                "apis.google.com",
                "ogs.google.com",
                "www.google.com",
            ])],
        },
    }
}

/// An embedded YouTube player: iframe plus thumbnails and player assets.
fn youtube_embed() -> ThirdPartyService {
    ThirdPartyService {
        name: "youtube-embed".to_string(),
        requests: vec![
            ServiceRequest::new(
                "www.youtube.com",
                "/embed/dQw4w9WgXcQ",
                RequestDestination::Iframe,
                None,
                62_000,
            ),
            ServiceRequest::new(
                "i.ytimg.com",
                "/vi/dQw4w9WgXcQ/hqdefault.jpg",
                RequestDestination::Image,
                Some(0),
                28_000,
            ),
            ServiceRequest::new(
                "www.youtube.com",
                "/s/player/base.js",
                RequestDestination::Script,
                Some(0),
                1_100_000,
            )
            .with_probability(0.8),
            ServiceRequest::new(
                "i.ytimg.com",
                "/vi/dQw4w9WgXcQ/mqdefault.jpg",
                RequestDestination::Image,
                Some(0),
                12_000,
            )
            .with_probability(0.3),
        ],
        hosting: ServiceHosting {
            operator: "Google".to_string(),
            autonomous_system: well_known::google(),
            issuer: Issuer::google_trust_services(),
            ip_clusters: vec![IpCluster {
                domains: ds(&["www.youtube.com", "i.ytimg.com"]),
                deployment: DnsDeployment::UnsynchronizedPool { pool_size: 8, answer_size: 1 },
            }],
            certificate_groups: vec![ds(&["www.youtube.com", "i.ytimg.com"])],
        },
    }
}

/// hotjar web analytics: four subdomains behind CloudFront (AMAZON-02) with a
/// shared certificate but independently balanced addresses.
fn hotjar() -> ThirdPartyService {
    ThirdPartyService {
        name: "hotjar".to_string(),
        requests: vec![
            ServiceRequest::new(
                "static.hotjar.com",
                "/c/hotjar-1234.js",
                RequestDestination::Script,
                None,
                19_000,
            ),
            ServiceRequest::new(
                "script.hotjar.com",
                "/modules.96a24ce.js",
                RequestDestination::Script,
                Some(0),
                230_000,
            ),
            ServiceRequest::new("vars.hotjar.com", "/box-1234.html", RequestDestination::Xhr, Some(1), 2_400)
                .anonymous()
                .with_probability(0.8),
            ServiceRequest::new(
                "in.hotjar.com",
                "/api/v2/client/sites/1234",
                RequestDestination::Xhr,
                Some(1),
                600,
            )
            .with_probability(0.6),
        ],
        hosting: ServiceHosting {
            operator: "Hotjar".to_string(),
            autonomous_system: well_known::amazon_02(),
            issuer: Issuer::amazon(),
            ip_clusters: vec![IpCluster {
                domains: ds(&["static.hotjar.com", "script.hotjar.com", "vars.hotjar.com", "in.hotjar.com"]),
                deployment: DnsDeployment::UnsynchronizedPool { pool_size: 4, answer_size: 1 },
            }],
            certificate_groups: vec![ds(&[
                "static.hotjar.com",
                "script.hotjar.com",
                "vars.hotjar.com",
                "in.hotjar.com",
            ])],
        },
    }
}

/// Klaviyo onsite marketing: two subdomains on the same host with *separate*
/// Let's-Encrypt certificates — the paper's top `CERT` domain.
fn klaviyo() -> ThirdPartyService {
    ThirdPartyService {
        name: "klaviyo".to_string(),
        requests: vec![
            ServiceRequest::new(
                "static.klaviyo.com",
                "/onsite/js/klaviyo.js",
                RequestDestination::Script,
                None,
                65_000,
            ),
            ServiceRequest::new(
                "fast.a.klaviyo.com",
                "/media/js/onsite/onsite.js",
                RequestDestination::Script,
                Some(0),
                120_000,
            ),
        ],
        hosting: ServiceHosting {
            operator: "Klaviyo".to_string(),
            autonomous_system: well_known::amazon_02(),
            issuer: Issuer::lets_encrypt(),
            ip_clusters: vec![IpCluster {
                domains: ds(&["static.klaviyo.com", "fast.a.klaviyo.com"]),
                deployment: DnsDeployment::SingleHost,
            }],
            certificate_groups: vec![ds(&["static.klaviyo.com"]), ds(&["fast.a.klaviyo.com"])],
        },
    }
}

/// Wordpress.com statistics and asset CDN: shared certificate but genuinely
/// distinct networks, so the redundancy is real distribution rather than
/// load-balancing accident (paper §5.3.1 notes the IPs are not
/// interchangeable).
fn wordpress_stats() -> ThirdPartyService {
    ThirdPartyService {
        name: "wp-stats".to_string(),
        requests: vec![
            ServiceRequest::new(
                "c0.wp.com",
                "/c/5.7.2/wp-includes/js/jquery/jquery.min.js",
                RequestDestination::Script,
                None,
                98_000,
            ),
            ServiceRequest::new("stats.wp.com", "/e-202120.js", RequestDestination::Script, Some(0), 10_000),
            ServiceRequest::new("pixel.wp.com", "/g.gif", RequestDestination::Image, Some(1), 43)
                .with_probability(0.7),
        ],
        hosting: ServiceHosting {
            operator: "Automattic".to_string(),
            autonomous_system: well_known::automattic(),
            issuer: Issuer::lets_encrypt(),
            ip_clusters: vec![IpCluster {
                domains: ds(&["c0.wp.com", "stats.wp.com", "pixel.wp.com"]),
                deployment: DnsDeployment::DistinctNetworks,
            }],
            certificate_groups: vec![ds(&["c0.wp.com", "stats.wp.com", "pixel.wp.com"])],
        },
    }
}

/// Squarespace-hosted assets: static scripts and the image CDN share hosts
/// but carry separate DigiCert certificates (`CERT`, Table 4 rank 5).
fn squarespace_assets() -> ThirdPartyService {
    ThirdPartyService {
        name: "squarespace-assets".to_string(),
        requests: vec![
            ServiceRequest::new(
                "static1.squarespace.com",
                "/static/vta/site-bundle.js",
                RequestDestination::Script,
                None,
                310_000,
            ),
            ServiceRequest::new(
                "images.squarespace-cdn.com",
                "/content/v1/hero.jpg",
                RequestDestination::Image,
                Some(0),
                240_000,
            ),
            ServiceRequest::new(
                "images.squarespace-cdn.com",
                "/content/v1/gallery-1.jpg",
                RequestDestination::Image,
                Some(0),
                180_000,
            )
            .with_probability(0.6),
        ],
        hosting: ServiceHosting {
            operator: "Squarespace".to_string(),
            autonomous_system: well_known::fastly(),
            issuer: Issuer::digicert(),
            ip_clusters: vec![IpCluster {
                domains: ds(&["static1.squarespace.com", "images.squarespace-cdn.com"]),
                deployment: DnsDeployment::SingleHost,
            }],
            certificate_groups: vec![ds(&["static1.squarespace.com"]), ds(&["images.squarespace-cdn.com"])],
        },
    }
}

/// An embedded Reddit widget: static assets and the API load balancer share a
/// host but use disjunct certificates (Table 10's `alb.reddit.com`).
fn reddit_widget() -> ThirdPartyService {
    ThirdPartyService {
        name: "reddit-widget".to_string(),
        requests: vec![
            ServiceRequest::new(
                "www.redditstatic.com",
                "/desktop2x/js/ads.js",
                RequestDestination::Script,
                None,
                42_000,
            ),
            ServiceRequest::new("alb.reddit.com", "/rp.gif", RequestDestination::Image, Some(0), 43),
        ],
        hosting: ServiceHosting {
            operator: "Reddit".to_string(),
            autonomous_system: well_known::fastly(),
            issuer: Issuer::digicert(),
            ip_clusters: vec![IpCluster {
                domains: ds(&["www.redditstatic.com", "alb.reddit.com"]),
                deployment: DnsDeployment::SingleHost,
            }],
            certificate_groups: vec![ds(&["www.redditstatic.com"]), ds(&["alb.reddit.com"])],
        },
    }
}

/// Ad-tech cookie syncing between 1rx.io and unrulymedia.com: same host,
/// disjunct DigiCert certificates (Table 4 / Table 10, Alexa only).
fn unruly_sync() -> ThirdPartyService {
    ThirdPartyService {
        name: "unruly-sync".to_string(),
        requests: vec![
            ServiceRequest::new("sync.1rx.io", "/usync", RequestDestination::Image, None, 43),
            ServiceRequest::new(
                "sync.targeting.unrulymedia.com",
                "/match",
                RequestDestination::Image,
                Some(0),
                43,
            ),
        ],
        hosting: ServiceHosting {
            operator: "Unruly".to_string(),
            autonomous_system: well_known::amazon_aes(),
            issuer: Issuer::digicert(),
            ip_clusters: vec![IpCluster {
                domains: ds(&["sync.1rx.io", "sync.targeting.unrulymedia.com"]),
                deployment: DnsDeployment::SingleHost,
            }],
            certificate_groups: vec![ds(&["sync.1rx.io"]), ds(&["sync.targeting.unrulymedia.com"])],
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_contains_the_paper_headliners() {
        let catalog = ServiceCatalog::standard();
        assert!(!catalog.is_empty());
        assert!(catalog.len() >= 10);
        for name in [
            "google-analytics",
            "facebook-pixel",
            "google-ads",
            "google-fonts",
            "hotjar",
            "klaviyo",
            "wp-stats",
            "squarespace-assets",
        ] {
            assert!(catalog.get(name).is_some(), "missing service {name}");
        }
        assert!(catalog.get("does-not-exist").is_none());
    }

    #[test]
    fn request_chains_reference_earlier_requests_only() {
        for service in ServiceCatalog::standard().services() {
            for (index, request) in service.requests.iter().enumerate() {
                if let Some(parent) = request.initiated_by {
                    assert!(
                        parent < index,
                        "{}: request {index} references later parent {parent}",
                        service.name
                    );
                }
                assert!((0.0..=1.0).contains(&request.probability));
                assert!(request.body_size > 0);
            }
        }
    }

    #[test]
    fn each_domain_is_owned_by_exactly_one_service() {
        let catalog = ServiceCatalog::standard();
        let mut seen: std::collections::BTreeMap<DomainName, String> = std::collections::BTreeMap::new();
        for service in catalog.services() {
            for domain in service.domains() {
                if let Some(owner) = seen.insert(domain, service.name.clone()) {
                    panic!("domain {domain} owned by both {owner} and {}", service.name);
                }
            }
        }
    }

    #[test]
    fn every_request_domain_belongs_to_an_ip_cluster() {
        for service in ServiceCatalog::standard().services() {
            let domains = service.domains();
            for request in &service.requests {
                assert!(
                    domains.contains(&request.domain),
                    "{}: request domain {} missing from ip clusters",
                    service.name,
                    request.domain
                );
            }
        }
    }

    #[test]
    fn certificate_groups_cover_every_cluster_domain() {
        for service in ServiceCatalog::standard().services() {
            let covered: Vec<&DomainName> = service.hosting.certificate_groups.iter().flatten().collect();
            for domain in service.domains() {
                assert!(
                    covered.contains(&&domain),
                    "{}: domain {} not covered by any certificate group",
                    service.name,
                    domain
                );
            }
        }
    }

    #[test]
    fn analytics_pair_is_shared_cert_unsynchronized() {
        let catalog = ServiceCatalog::standard();
        let ga = catalog.get("google-analytics").unwrap();
        assert_eq!(ga.hosting.certificate_groups.len(), 1);
        assert!(matches!(ga.hosting.ip_clusters[0].deployment, DnsDeployment::UnsynchronizedPool { .. }));
    }

    #[test]
    fn klaviyo_pair_is_single_host_disjunct_certs() {
        let catalog = ServiceCatalog::standard();
        let klaviyo = catalog.get("klaviyo").unwrap();
        assert_eq!(klaviyo.hosting.certificate_groups.len(), 2);
        assert_eq!(klaviyo.hosting.ip_clusters[0].deployment, DnsDeployment::SingleHost);
        assert_eq!(klaviyo.hosting.issuer, Issuer::lets_encrypt());
    }

    #[test]
    fn synchronized_variant_replaces_unsynchronized_pools_only() {
        let standard = ServiceCatalog::standard();
        let synchronized = standard.with_synchronized_dns();
        assert_eq!(standard.len(), synchronized.len());
        for (original, fixed) in standard.services().iter().zip(synchronized.services()) {
            assert_eq!(original.requests, fixed.requests);
            assert_eq!(original.hosting.certificate_groups, fixed.hosting.certificate_groups);
            for (a, b) in original.hosting.ip_clusters.iter().zip(&fixed.hosting.ip_clusters) {
                match (&a.deployment, &b.deployment) {
                    (
                        DnsDeployment::UnsynchronizedPool { pool_size, answer_size },
                        DnsDeployment::SynchronizedPool { pool_size: p, answer_size: s },
                    ) => {
                        assert_eq!(pool_size, p);
                        assert_eq!(answer_size, s);
                    }
                    (other_a, other_b) => assert_eq!(other_a, other_b),
                }
            }
        }
    }

    #[test]
    fn coalesced_variant_merges_certificate_groups_only() {
        let standard = ServiceCatalog::standard();
        let coalesced = standard.with_coalesced_certificates();
        assert_eq!(standard.len(), coalesced.len());
        let mut some_service_merged = false;
        for (original, fixed) in standard.services().iter().zip(coalesced.services()) {
            assert_eq!(original.requests, fixed.requests);
            assert_eq!(original.hosting.ip_clusters, fixed.hosting.ip_clusters);
            assert!(fixed.hosting.certificate_groups.len() <= 1);
            // No domain is lost in the merge.
            let mut original_domains: Vec<DomainName> =
                original.hosting.certificate_groups.iter().flatten().cloned().collect();
            original_domains.sort();
            original_domains.dedup();
            let merged: Vec<DomainName> =
                fixed.hosting.certificate_groups.iter().flatten().cloned().collect();
            assert_eq!(original_domains, merged);
            if original.hosting.certificate_groups.len() > 1 {
                some_service_merged = true;
            }
        }
        assert!(some_service_merged, "the standard catalog should have a split-certificate service");
    }

    #[test]
    fn mitigated_catalog_composes_the_environment_side_fixes() {
        let standard = ServiceCatalog::standard();
        assert_eq!(standard.with_mitigations(MitigationSet::empty()).services(), standard.services());
        let both = standard.with_mitigations(
            MitigationSet::single(Mitigation::SynchronizedDns)
                .with(Mitigation::CertificateCoalescing)
                // Client-side mitigations must not change the catalog.
                .with(Mitigation::CredentialPooling)
                .with(Mitigation::OriginFrames),
        );
        let expected = standard.with_synchronized_dns().with_coalesced_certificates();
        assert_eq!(both.services(), expected.services());
    }

    #[test]
    fn analytics_chain_contains_anonymous_beacon() {
        let catalog = ServiceCatalog::standard();
        let ga = catalog.get("google-analytics").unwrap();
        assert!(ga.requests.iter().any(|r| r.anonymous && r.domain == d("www.google-analytics.com")));
    }
}
