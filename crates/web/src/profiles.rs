//! Population profiles: how generated sites differ between the HTTP-Archive
//! and Alexa-Top-100k datasets.
//!
//! The paper's two datasets diverge in composition — the Alexa top list
//! contains larger, more heavily instrumented sites (more analytics, more
//! ads, more fonts), which is one of the reasons its redundancy percentages
//! are higher (95 % vs. 76 % of sites). The two profiles below encode that
//! difference; the calibration constants sit next to the paper value they are
//! aimed at.

use serde::{Deserialize, Serialize};

/// Tunable description of a site population.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PopulationProfile {
    /// Profile name (used in report headings).
    pub name: String,
    /// Per-service embed probability, keyed by catalog name.
    pub service_embed_probability: Vec<(String, f64)>,
    /// Probability that a site still uses domain sharding.
    pub sharding_probability: f64,
    /// Range (inclusive) of shard hostnames a sharding site uses.
    pub shard_count_range: (usize, usize),
    /// Probability that a sharding site has one certificate per shard
    /// (instead of one shared-SAN certificate) — feeds the `CERT` long tail.
    pub per_domain_cert_probability: f64,
    /// Probability that a sharding site serves its shards from a
    /// multi-address CDN entry with unsynchronized balancing — feeds `IP`.
    pub multi_ip_cdn_probability: f64,
    /// Probability that the site (and its shards) are fronted by Cloudflare.
    pub cloudflare_probability: f64,
    /// Range of first-party sub-resources on the landing page.
    pub own_resource_range: (usize, usize),
    /// Range of unrelated ("unknown third party") domains contacted once.
    pub misc_third_party_range: (usize, usize),
    /// Size of the shared pool those unrelated third parties are drawn from.
    pub misc_third_party_pool: usize,
}

impl PopulationProfile {
    /// A profile shaped after the HTTP-Archive dataset: the broad web, lower
    /// third-party penetration, more small sites.
    pub fn archive() -> Self {
        PopulationProfile {
            name: "archive".to_string(),
            service_embed_probability: vec![
                // Targets: IP-cause sites ≈ 70 %, CRED ≈ 43 %, CERT ≈ 10 %
                // (Table 1, HAR endless, relative to HTTP/2 sites).
                ("google-analytics".to_string(), 0.42),
                ("google-fonts".to_string(), 0.40),
                ("facebook-pixel".to_string(), 0.27),
                ("google-ads".to_string(), 0.26),
                ("google-platform".to_string(), 0.10),
                ("youtube-embed".to_string(), 0.09),
                ("wp-stats".to_string(), 0.06),
                ("hotjar".to_string(), 0.05),
                ("squarespace-assets".to_string(), 0.02),
                ("klaviyo".to_string(), 0.02),
                ("reddit-widget".to_string(), 0.008),
                ("unruly-sync".to_string(), 0.005),
            ],
            sharding_probability: 0.30,
            shard_count_range: (1, 3),
            per_domain_cert_probability: 0.08,
            multi_ip_cdn_probability: 0.22,
            cloudflare_probability: 0.20,
            own_resource_range: (4, 22),
            misc_third_party_range: (0, 5),
            misc_third_party_pool: 1500,
        }
    }

    /// A profile shaped after the Alexa Top 100k: popular sites with heavier
    /// third-party instrumentation.
    pub fn alexa() -> Self {
        PopulationProfile {
            name: "alexa".to_string(),
            service_embed_probability: vec![
                // Targets: IP-cause sites ≈ 88 %, CRED ≈ 79 %, CERT ≈ 17 %
                // (Table 1, Alexa, relative to the 81.55 k measured sites).
                ("google-analytics".to_string(), 0.64),
                ("google-fonts".to_string(), 0.56),
                ("facebook-pixel".to_string(), 0.40),
                ("google-ads".to_string(), 0.38),
                ("google-platform".to_string(), 0.26),
                ("youtube-embed".to_string(), 0.16),
                ("wp-stats".to_string(), 0.04),
                ("hotjar".to_string(), 0.09),
                ("squarespace-assets".to_string(), 0.02),
                ("klaviyo".to_string(), 0.02),
                ("reddit-widget".to_string(), 0.012),
                ("unruly-sync".to_string(), 0.01),
            ],
            sharding_probability: 0.36,
            shard_count_range: (1, 4),
            per_domain_cert_probability: 0.08,
            multi_ip_cdn_probability: 0.30,
            cloudflare_probability: 0.22,
            own_resource_range: (8, 40),
            misc_third_party_range: (1, 9),
            misc_third_party_pool: 600,
        }
    }

    /// The embed probability for a catalog service (0 when unknown).
    pub fn embed_probability(&self, service: &str) -> f64 {
        self.service_embed_probability
            .iter()
            .find(|(name, _)| name == service)
            .map(|(_, p)| *p)
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_distinct_and_sane() {
        let archive = PopulationProfile::archive();
        let alexa = PopulationProfile::alexa();
        assert_ne!(archive, alexa);
        for profile in [&archive, &alexa] {
            for (name, p) in &profile.service_embed_probability {
                assert!((0.0..=1.0).contains(p), "{name} probability out of range");
            }
            assert!(profile.sharding_probability <= 1.0);
            assert!(profile.shard_count_range.0 <= profile.shard_count_range.1);
            assert!(profile.own_resource_range.0 <= profile.own_resource_range.1);
            assert!(profile.misc_third_party_pool > 0);
        }
    }

    #[test]
    fn alexa_sites_are_more_instrumented() {
        let archive = PopulationProfile::archive();
        let alexa = PopulationProfile::alexa();
        for service in ["google-analytics", "google-ads", "google-fonts", "facebook-pixel"] {
            assert!(
                alexa.embed_probability(service) > archive.embed_probability(service),
                "{service} should be more common on top sites"
            );
        }
        assert_eq!(archive.embed_probability("unknown-service"), 0.0);
    }
}
