//! Memoized service deployments: issue the third-party catalog's DNS zones,
//! certificates and prefix announcements **once** per mitigation set and
//! share them across population chunks.
//!
//! Generating a population installs two kinds of state into the environment:
//! the *shared* deployment of the third-party service catalog (zones,
//! certificates, AS prefixes — identical for every site) and the *per-site*
//! state (first-party zones/certificates, request plans). The atlas scale
//! scenario builds its population in hundreds of chunks, and before this
//! layer each chunk re-issued the entire catalog deployment. A
//! [`SharedDeployment`] is issued once per `(catalog, mitigation-set)` and
//! layered underneath every chunk's environment via the base-sharing support
//! in [`netsim_dns::Authority`], [`netsim_tls::CertificateStore`] and
//! [`netsim_asdb::AsRegistry`]; chunk generation is then O(sites in the
//! chunk) with the shared part O(distinct profiles), not O(sites).
//!
//! Observational equivalence with per-chunk issuance — same answers, same
//! certificates, same prefix allocation — is property-tested in
//! `crates/web/tests/deployment_equivalence.rs`.

use crate::population::install_service;
use crate::services::ServiceCatalog;
use netsim_asdb::AsRegistry;
use netsim_dns::Authority;
use netsim_tls::CertificateStore;
use netsim_types::MitigationSet;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// The immutable, shareable deployment of one service catalog under one
/// mitigation set.
#[derive(Debug)]
pub struct SharedDeployment {
    /// Authoritative zones of every catalog service.
    pub authority: Arc<Authority>,
    /// Certificates of every catalog service (ids `0..len`).
    pub certificates: Arc<CertificateStore>,
    /// Prefix announcements of every catalog service; the allocator of a
    /// layered registry continues after these.
    pub registry: Arc<AsRegistry>,
    /// The (already mitigated) catalog this deployment was issued from.
    pub catalog: ServiceCatalog,
    /// The mitigation set the deployment was issued under.
    pub mitigations: MitigationSet,
}

impl SharedDeployment {
    /// Issue the deployment: install every service of `catalog` (with
    /// `mitigations` applied) into fresh authority/certificate/registry
    /// structures, exactly as [`crate::PopulationBuilder::build`] would at
    /// the start of a monolithic build.
    pub fn issue(catalog: &ServiceCatalog, mitigations: MitigationSet) -> Arc<SharedDeployment> {
        let mitigated = catalog.with_mitigations(mitigations);
        let mut authority = Authority::new();
        let mut certificates = CertificateStore::new();
        let mut registry = AsRegistry::new();
        for service in mitigated.services() {
            install_service(&mut authority, &mut certificates, &mut registry, service);
        }
        Arc::new(SharedDeployment {
            authority: Arc::new(authority),
            certificates: Arc::new(certificates),
            registry: Arc::new(registry),
            catalog: mitigated,
            mitigations,
        })
    }
}

/// A concurrent memo of [`SharedDeployment`]s keyed by mitigation set, for
/// one service catalog. Issuing is O(catalog); every further request for the
/// same mitigation set is a map lookup plus an `Arc` clone, so generating a
/// population in N chunks issues the catalog once instead of N times.
#[derive(Debug)]
pub struct DeploymentCache {
    catalog: ServiceCatalog,
    cells: Mutex<HashMap<MitigationSet, Arc<SharedDeployment>>>,
}

impl DeploymentCache {
    /// A cache issuing deployments of `catalog`.
    pub fn new(catalog: ServiceCatalog) -> Self {
        DeploymentCache { catalog, cells: Mutex::new(HashMap::new()) }
    }

    /// A cache for the standard catalog (what every scenario uses).
    pub fn standard() -> Self {
        DeploymentCache::new(ServiceCatalog::standard())
    }

    /// The memoized deployment for `mitigations`, issuing it on first use.
    pub fn deployment(&self, mitigations: MitigationSet) -> Arc<SharedDeployment> {
        let mut cells = self.cells.lock().expect("deployment cache poisoned");
        Arc::clone(
            cells.entry(mitigations).or_insert_with(|| SharedDeployment::issue(&self.catalog, mitigations)),
        )
    }

    /// Number of distinct mitigation sets issued so far.
    pub fn issued(&self) -> usize {
        self.cells.lock().expect("deployment cache poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim_types::Mitigation;

    #[test]
    fn deployments_are_issued_once_per_mitigation_set() {
        let cache = DeploymentCache::standard();
        let a = cache.deployment(MitigationSet::empty());
        let b = cache.deployment(MitigationSet::empty());
        assert!(Arc::ptr_eq(&a, &b), "same mitigation set must share one deployment");
        assert_eq!(cache.issued(), 1);
        let c = cache.deployment(MitigationSet::single(Mitigation::SynchronizedDns));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.issued(), 2);
    }

    #[test]
    fn issued_deployment_contains_the_catalog_services() {
        let deployment = SharedDeployment::issue(&ServiceCatalog::standard(), MitigationSet::empty());
        assert!(deployment.authority.zone_count() > 0);
        assert!(!deployment.certificates.is_empty());
        let analytics = netsim_types::DomainName::literal("www.google-analytics.com");
        assert!(deployment.authority.knows(&analytics));
        assert!(deployment.certificates.has_coverage(&analytics));
    }
}
