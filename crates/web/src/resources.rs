//! Per-site fetch plans.
//!
//! A [`PlannedRequest`] is one resource the browser will fetch when loading a
//! site: which host serves it, what kind of resource it is (which fixes its
//! Fetch mode and credentials), which earlier request triggered it, and how
//! large the response body is. The browser substrate walks the plan in
//! dependency order, so chains like "document → tag-manager script →
//! analytics script → collect beacon" unfold exactly like the paper's
//! `googletagmanager.com` example.

use netsim_fetch::RequestDestination;
use netsim_types::DomainName;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The shared root-document path.
fn root_path() -> Arc<str> {
    static ROOT: std::sync::OnceLock<Arc<str>> = std::sync::OnceLock::new();
    Arc::clone(ROOT.get_or_init(|| Arc::from("/")))
}

/// One resource fetch in a site's load plan.
///
/// The path is an `Arc<str>`: the same handful of resource paths repeat
/// across a whole generated population, so plans share the string
/// allocations instead of cloning them per site (serde round-trips as a
/// plain string).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PlannedRequest {
    /// Host serving the resource.
    pub domain: DomainName,
    /// Path of the resource.
    pub path: Arc<str>,
    /// Resource kind, which determines Fetch mode / credentials defaults.
    pub destination: RequestDestination,
    /// `true` if the embedding element carries `crossorigin="anonymous"` (or
    /// the request is otherwise made without credentials).
    pub anonymous: bool,
    /// Index (within the plan) of the request that must complete before this
    /// one starts; `None` for the root document.
    pub depends_on: Option<usize>,
    /// Response body size in octets.
    pub body_size: u64,
}

impl PlannedRequest {
    /// The root document request for a landing page.
    pub fn document(domain: DomainName) -> Self {
        PlannedRequest {
            domain,
            path: root_path(),
            destination: RequestDestination::Document,
            anonymous: false,
            depends_on: None,
            body_size: 40_000,
        }
    }

    /// A sub-resource triggered by the request at index `parent`. Accepts a
    /// `&str` (allocates once) or a shared `Arc<str>` (allocation-free).
    pub fn subresource(
        domain: DomainName,
        path: impl Into<Arc<str>>,
        destination: RequestDestination,
        parent: usize,
        body_size: u64,
    ) -> Self {
        PlannedRequest {
            domain,
            path: path.into(),
            destination,
            anonymous: false,
            depends_on: Some(parent),
            body_size,
        }
    }

    /// Mark the request as credential-less (`crossorigin="anonymous"`,
    /// anonymous XHR, font fetch, …).
    pub fn anonymous(mut self) -> Self {
        self.anonymous = true;
        self
    }
}

/// Validate that a plan's dependencies are acyclic and reference earlier
/// entries only (the generator always emits parents before children; the
/// browser relies on it).
pub fn plan_is_well_formed(plan: &[PlannedRequest]) -> bool {
    if plan.is_empty() {
        return false;
    }
    if plan[0].depends_on.is_some() {
        return false;
    }
    plan.iter().enumerate().all(|(index, request)| match request.depends_on {
        None => index == 0,
        Some(parent) => parent < index,
    })
}

/// The maximum dependency depth of a plan (document = depth 0).
pub fn plan_depth(plan: &[PlannedRequest]) -> usize {
    let mut depths = vec![0usize; plan.len()];
    let mut max = 0;
    for (index, request) in plan.iter().enumerate() {
        if let Some(parent) = request.depends_on {
            if parent < index {
                depths[index] = depths[parent] + 1;
                max = max.max(depths[index]);
            }
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> DomainName {
        DomainName::literal(s)
    }

    fn sample_plan() -> Vec<PlannedRequest> {
        vec![
            PlannedRequest::document(d("example.com")),
            PlannedRequest::subresource(d("example.com"), "/style.css", RequestDestination::Style, 0, 8_000),
            PlannedRequest::subresource(
                d("www.googletagmanager.com"),
                "/gtag/js",
                RequestDestination::Script,
                0,
                90_000,
            ),
            PlannedRequest::subresource(
                d("www.google-analytics.com"),
                "/analytics.js",
                RequestDestination::Script,
                2,
                49_000,
            ),
            PlannedRequest::subresource(
                d("www.google-analytics.com"),
                "/collect",
                RequestDestination::Beacon,
                3,
                35,
            )
            .anonymous(),
        ]
    }

    #[test]
    fn plan_validation() {
        let plan = sample_plan();
        assert!(plan_is_well_formed(&plan));
        assert_eq!(plan_depth(&plan), 3);
        assert!(!plan_is_well_formed(&[]));
        // A child referencing a later index is rejected.
        let mut bad = sample_plan();
        bad[1].depends_on = Some(4);
        assert!(!plan_is_well_formed(&bad));
        // A non-root document is rejected.
        let mut bad_root = sample_plan();
        bad_root[0].depends_on = Some(1);
        assert!(!plan_is_well_formed(&bad_root));
    }

    #[test]
    fn anonymity_marker() {
        let plan = sample_plan();
        assert!(!plan[2].anonymous);
        assert!(plan[4].anonymous);
        assert_eq!(plan[4].destination, RequestDestination::Beacon);
    }

    #[test]
    fn document_constructor() {
        let doc = PlannedRequest::document(d("shop.example.org"));
        assert_eq!(doc.depends_on, None);
        assert_eq!(doc.destination, RequestDestination::Document);
        assert_eq!(&*doc.path, "/");
    }
}
